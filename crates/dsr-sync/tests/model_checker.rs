//! Self-tests for the model checker: exploration finds real interleaving
//! bugs, the vector-clock race detector distinguishes raced from locked
//! access, failing schedules replay deterministically, and deadlocks are
//! reported rather than hung on.
//!
//! Run with `RUSTFLAGS="--cfg dsr_model" cargo test -p dsr-sync` for real
//! exploration; in normal builds each body executes once as a smoke test.

use dsr_sync::model::{self, Model, RaceCell};
use dsr_sync::{thread, Arc, Mutex};

/// Two threads doing a non-atomic read-modify-write through separate lock
/// acquisitions: the classic lost update. The DFS must find the schedule
/// where both threads read 0 and the final value is 1.
fn lost_update() {
    let n = Arc::new(Mutex::new(0u32));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let n = Arc::clone(&n);
            thread::spawn(move || {
                let read = *dsr_sync::lock(&n);
                *dsr_sync::lock(&n) = read + 1;
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*dsr_sync::lock(&n), 2, "lost update");
}

#[test]
fn model_dfs_finds_lost_update() {
    if !model::is_model_build() {
        return; // single-run smoke can't observe the race
    }
    let failure = Model::new()
        .check(lost_update)
        .expect_err("DFS must find the lost-update interleaving");
    assert!(failure.message.contains("lost update"), "{failure}");
    assert!(!failure.schedule.is_empty());
}

#[test]
fn model_random_walk_finds_lost_update() {
    if !model::is_model_build() {
        return;
    }
    let failure = Model::new()
        .random(0xDEAD_BEEF, 256)
        .check(lost_update)
        .expect_err("random walk must find the lost-update interleaving");
    assert!(failure.message.contains("lost update"), "{failure}");
}

/// A correct version of the same program must survive full exploration.
#[test]
fn model_atomic_update_passes() {
    let report = Model::new()
        .check(|| {
            let n = Arc::new(Mutex::new(0u32));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        *dsr_sync::lock(&n) += 1; // one critical section
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*dsr_sync::lock(&n), 2);
        })
        .expect("atomic increments cannot lose updates");
    assert!(report.schedules_explored >= 1);
}

/// Vector-clock detector: two unsynchronized writers to a RaceCell race.
#[test]
fn model_race_detector_catches_true_race() {
    if !model::is_model_build() {
        return;
    }
    let failure = Model::new()
        .check(|| {
            let cell = Arc::new(RaceCell::new(0u32));
            let c2 = Arc::clone(&cell);
            let h = thread::spawn(move || c2.write(1));
            cell.write(2);
            h.join().unwrap();
        })
        .expect_err("unsynchronized writes must be reported as a race");
    assert!(failure.message.contains("data race"), "{failure}");
}

/// Same cell, but every access under one mutex: no race may be reported.
#[test]
fn model_race_detector_accepts_locked_access() {
    Model::new()
        .check(|| {
            let cell = Arc::new(RaceCell::new(0u32));
            let lock = Arc::new(Mutex::new(()));
            let (c2, l2) = (Arc::clone(&cell), Arc::clone(&lock));
            let h = thread::spawn(move || {
                let _g = dsr_sync::lock(&l2);
                let v = c2.read();
                c2.write(v + 1);
            });
            {
                let _g = dsr_sync::lock(&lock);
                let v = cell.read();
                cell.write(v + 1);
            }
            h.join().unwrap();
            assert_eq!(cell.read(), 2);
        })
        .expect("mutex-ordered access must not be flagged as a race");
}

/// Join itself is a happens-before edge: writes before a thread exits are
/// visible to the joiner without extra locking.
#[test]
fn model_join_is_happens_before() {
    Model::new()
        .check(|| {
            let cell = Arc::new(RaceCell::new(0u32));
            let c2 = Arc::clone(&cell);
            let h = thread::spawn(move || c2.write(7));
            h.join().unwrap();
            assert_eq!(cell.read(), 7);
        })
        .expect("join orders the child's writes before the parent's read");
}

/// A failing schedule string must reproduce the same interleaving: replay
/// fails again, with the same message and the same operation trace.
#[test]
fn model_replay_is_deterministic() {
    if !model::is_model_build() {
        return;
    }
    let first = Model::new()
        .check(lost_update)
        .expect_err("exploration must fail first");
    for round in 0..3 {
        let again = Model::new()
            .replay(&first.schedule, lost_update)
            .expect_err("replaying the failing schedule must fail again");
        assert_eq!(first.message, again.message, "round {round}");
        assert_eq!(first.trace, again.trace, "round {round}: diverging trace");
        assert_eq!(first.schedule, again.schedule, "round {round}");
    }
}

/// Classic ABBA deadlock: must be reported as a failure, not hang.
#[test]
fn model_detects_deadlock() {
    if !model::is_model_build() {
        return;
    }
    let failure = Model::new()
        .check(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let h = thread::spawn(move || {
                let _ga = dsr_sync::lock(&a2);
                let _gb = dsr_sync::lock(&b2);
            });
            let _gb = dsr_sync::lock(&b);
            let _ga = dsr_sync::lock(&a);
            drop((_ga, _gb));
            h.join().unwrap();
        })
        .expect_err("ABBA ordering must deadlock in some schedule");
    assert!(failure.message.contains("deadlock"), "{failure}");
}

/// Channels: send/recv carry happens-before, and exploration terminates.
#[test]
fn model_channel_send_recv() {
    Model::new()
        .check(|| {
            let (tx, rx) = dsr_sync::mpsc::channel();
            let cell = Arc::new(RaceCell::new(0u32));
            let c2 = Arc::clone(&cell);
            let h = thread::spawn(move || {
                c2.write(41);
                tx.send(1u32).unwrap();
            });
            let got = rx.recv().unwrap();
            assert_eq!(cell.read() + got, 42, "recv orders the sender's write");
            h.join().unwrap();
        })
        .expect("channel happens-before must order the write");
}

/// Condvar protocol: a waiter parked before the notify still wakes up.
#[test]
fn model_condvar_wakeup() {
    Model::new()
        .check(|| {
            let pair = Arc::new((Mutex::new(false), dsr_sync::Condvar::new()));
            let p2 = Arc::clone(&pair);
            let h = thread::spawn(move || {
                let (m, cv) = &*p2;
                let mut ready = dsr_sync::lock(m);
                while !*ready {
                    ready = dsr_sync::wait(cv, ready);
                }
            });
            let (m, cv) = &*pair;
            *dsr_sync::lock(m) = true;
            cv.notify_all();
            h.join().unwrap();
        })
        .expect("notified waiter must wake in every schedule");
}

/// Mutation registry: off by default, visible inside a mutated run.
#[test]
fn model_mutation_registry() {
    assert!(!model::mutation_enabled(
        model::MUTATION_CACHE_SKIP_GENERATION_RECHECK
    ));
    if !model::is_model_build() {
        return;
    }
    Model::new()
        .mutation(model::MUTATION_CACHE_SKIP_GENERATION_RECHECK)
        .check(|| {
            assert!(model::mutation_enabled(
                model::MUTATION_CACHE_SKIP_GENERATION_RECHECK
            ));
            assert!(!model::mutation_enabled(
                model::MUTATION_SNAPSHOT_WIDEN_SLOT_RACE
            ));
        })
        .expect("registry lookups must not fail");
}
