//! Instrumented sync primitives (compiled only under `--cfg dsr_model`).
//!
//! Each primitive wraps its `std` counterpart plus an [`ObjCore`]: a lazy
//! object id and a registered waker. When the calling thread has a model
//! context (it was spawned inside `Model::check`), operations go through
//! the scheduler ([`crate::engine::ExecShared::op`]); otherwise they pass
//! straight through to the inner `std` primitive, calling
//! [`ObjCore::wake`] after any state change that could unblock a parked
//! model thread. That hybrid rule lets model code interoperate with
//! ordinary threads (the process-global `SlavePool`, TCP reader threads)
//! in the same execution.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc as std_mpsc;
use std::sync::{
    Arc, Condvar as StdCondvar, LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard,
    OnceLock, PoisonError, Weak,
};
use std::time::Duration;

use crate::engine::{ctx, next_obj_id, Attempt, Ctx, CtxGuard, ExecShared, ModelAbort};

// ---------------------------------------------------------------------------
// ObjCore: identity + waker shared by every instrumented object
// ---------------------------------------------------------------------------

#[derive(Debug)]
pub(crate) struct ObjCore {
    id: OnceLock<u64>,
    waker: StdMutex<Option<Weak<ExecShared>>>,
}

impl ObjCore {
    pub(crate) const fn new() -> ObjCore {
        ObjCore {
            id: OnceLock::new(),
            waker: StdMutex::new(None),
        }
    }

    pub(crate) fn id(&self) -> u64 {
        *self.id.get_or_init(next_obj_id)
    }

    /// Remember which execution has threads parked on this object.
    pub(crate) fn register(&self, exec: &Arc<ExecShared>) {
        let mut w = self.waker.lock().unwrap_or_else(PoisonError::into_inner);
        *w = Some(Arc::downgrade(exec));
    }

    /// Wake model threads parked on this object (no-op outside a model run).
    pub(crate) fn wake(&self) {
        let weak = {
            let w = self.waker.lock().unwrap_or_else(PoisonError::into_inner);
            w.clone()
        };
        if let Some(exec) = weak.and_then(|w| w.upgrade()) {
            exec.wake_object(self.id());
        }
    }
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

pub struct Mutex<T> {
    core: ObjCore,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Mutex<T> {
        Mutex {
            core: ObjCore::new(),
            inner: StdMutex::new(t),
        }
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let Some(c) = ctx() {
            let obj = self.core.id();
            let exec = Arc::clone(&c.exec);
            let got = c.exec.op(c.tid, "mutex lock", false, |st| {
                match self.inner.try_lock() {
                    Ok(g) => {
                        st.hb_acquire(c.tid, obj);
                        Attempt::Done((g, false))
                    }
                    Err(std::sync::TryLockError::WouldBlock) => {
                        self.core.register(&exec);
                        Attempt::Block { obj }
                    }
                    Err(std::sync::TryLockError::Poisoned(e)) => {
                        st.hb_acquire(c.tid, obj);
                        Attempt::Done((e.into_inner(), true))
                    }
                }
            });
            let (inner, poisoned) = match got {
                Ok(v) => v,
                Err(_) => unreachable!("mutex lock is not timeoutable"),
            };
            let guard = MutexGuard {
                inner: Some(inner),
                lock: self,
                model: Some(c),
            };
            if poisoned {
                Err(PoisonError::new(guard))
            } else {
                Ok(guard)
            }
        } else {
            match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    inner: Some(g),
                    lock: self,
                    model: None,
                }),
                Err(e) => Err(PoisonError::new(MutexGuard {
                    inner: Some(e.into_inner()),
                    lock: self,
                    model: None,
                })),
            }
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

pub struct MutexGuard<'a, T> {
    inner: Option<StdMutexGuard<'a, T>>,
    lock: &'a Mutex<T>,
    model: Option<Ctx>,
}

impl<'a, T> MutexGuard<'a, T> {
    /// Take the pieces out without running the release protocol (used by
    /// `Condvar::wait`, which releases as part of its own scheduler op).
    fn dismantle(mut self) -> (StdMutexGuard<'a, T>, &'a Mutex<T>, Option<Ctx>) {
        let inner = self.inner.take().expect("guard already dismantled");
        let lock = self.lock;
        let model = self.model.take();
        std::mem::forget(self);
        (inner, lock, model)
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard dismantled")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard dismantled")
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let inner = match self.inner.take() {
            Some(g) => g,
            None => return,
        };
        match self.model.take() {
            Some(c) => {
                let obj = self.lock.core.id();
                {
                    let mut st = c.exec.st();
                    if !st.failed() {
                        st.hb_release(c.tid, obj);
                    }
                    drop(inner); // real unlock, still under the scheduler lock
                    st.wake(obj);
                }
                // A release is a visible op: give others a chance to grab
                // the lock before this thread proceeds. Skipped while
                // unwinding (a panic inside a scheduler op would abort).
                if !std::thread::panicking() {
                    c.exec.schedule_point(c.tid, "mutex unlock");
                } else {
                    c.exec.wake_object(obj);
                }
            }
            None => {
                drop(inner);
                self.lock.core.wake();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Our own result type: `std::sync::WaitTimeoutResult` cannot be
/// constructed outside std, and the model scheduler must fabricate one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[derive(Debug)]
pub struct Condvar {
    core: ObjCore,
    inner: StdCondvar,
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            core: ObjCore::new(),
            inner: StdCondvar::new(),
        }
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        self.wait_impl(guard, None).0
    }

    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let (res, timed_out) = self.wait_impl(guard, Some(dur));
        match res {
            Ok(g) => Ok((g, WaitTimeoutResult(timed_out))),
            Err(e) => Err(PoisonError::new((
                e.into_inner(),
                WaitTimeoutResult(timed_out),
            ))),
        }
    }

    fn wait_impl<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Option<Duration>,
    ) -> (LockResult<MutexGuard<'a, T>>, bool) {
        let is_model_guard = guard.model.is_some();
        match (is_model_guard, ctx()) {
            (true, Some(c)) => {
                let (inner, lock, _) = guard.dismantle();
                let cv_obj = self.core.id();
                let mutex_obj = lock.core.id();
                let exec = Arc::clone(&c.exec);
                let mut held: Option<StdMutexGuard<'a, T>> = Some(inner);
                let waited = c.exec.op(c.tid, "condvar wait", timeout.is_some(), |st| {
                    if let Some(g) = held.take() {
                        // First attempt: release the mutex and park.
                        st.hb_release(c.tid, mutex_obj);
                        drop(g);
                        st.wake(mutex_obj);
                        self.core.register(&exec);
                        lock.core.register(&exec);
                        Attempt::Block { obj: cv_obj }
                    } else {
                        st.hb_acquire(c.tid, cv_obj);
                        Attempt::Done(())
                    }
                });
                let timed_out = waited.is_err();
                (lock.lock(), timed_out)
            }
            _ => {
                // Non-model thread (or guard acquired outside the model):
                // pass through to the std condvar on the inner guard.
                let (inner, lock, model) = guard.dismantle();
                let reassemble = |g: StdMutexGuard<'a, T>, model: Option<Ctx>| MutexGuard {
                    inner: Some(g),
                    lock,
                    model,
                };
                if let Some(dur) = timeout {
                    match self.inner.wait_timeout(inner, dur) {
                        Ok((g, to)) => (Ok(reassemble(g, model)), to.timed_out()),
                        Err(e) => {
                            let (g, to) = e.into_inner();
                            (Err(PoisonError::new(reassemble(g, model))), to.timed_out())
                        }
                    }
                } else {
                    match self.inner.wait(inner) {
                        Ok(g) => (Ok(reassemble(g, model)), false),
                        Err(e) => (
                            Err(PoisonError::new(reassemble(e.into_inner(), model))),
                            false,
                        ),
                    }
                }
            }
        }
    }

    pub fn notify_one(&self) {
        self.notify(false)
    }

    pub fn notify_all(&self) {
        self.notify(true)
    }

    fn notify(&self, all: bool) {
        if let Some(c) = ctx() {
            let obj = self.core.id();
            let label = if all { "notify_all" } else { "notify_one" };
            let _ = c.exec.op(c.tid, label, false, |st| {
                st.hb_release(c.tid, obj);
                // Conservatively wake every parked model waiter; spurious
                // wakeups are within the condvar contract.
                st.wake(obj);
                Attempt::Done(())
            });
        } else {
            self.core.wake();
        }
        // Real waiters (non-model threads parked on the inner condvar).
        if all {
            self.inner.notify_all();
        } else {
            self.inner.notify_one();
        }
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

use std::sync::atomic::Ordering;

macro_rules! instrumented_atomic {
    ($Name:ident, $Std:ty, $T:ty) => {
        #[derive(Debug)]
        pub struct $Name {
            core: ObjCore,
            inner: $Std,
        }

        impl $Name {
            pub const fn new(v: $T) -> $Name {
                $Name {
                    core: ObjCore::new(),
                    inner: <$Std>::new(v),
                }
            }

            /// Non-`Relaxed` accesses are scheduling points carrying a
            /// full acquire+release happens-before edge (conservative).
            /// `Relaxed` accesses stay invisible to the scheduler so
            /// stats counters do not blow up the schedule space.
            fn sync_op<R>(&self, order: Ordering, label: &str, f: impl Fn() -> R) -> R {
                match (order, ctx()) {
                    (Ordering::Relaxed, _) | (_, None) => f(),
                    (_, Some(c)) => {
                        let obj = self.core.id();
                        let r = c.exec.op(c.tid, label, false, |st| {
                            st.hb_acquire(c.tid, obj);
                            st.hb_release(c.tid, obj);
                            Attempt::Done(f())
                        });
                        match r {
                            Ok(v) => v,
                            Err(_) => unreachable!("atomic ops are not timeoutable"),
                        }
                    }
                }
            }

            pub fn load(&self, order: Ordering) -> $T {
                self.sync_op(order, concat!(stringify!($Name), " load"), || {
                    self.inner.load(Ordering::SeqCst)
                })
            }

            pub fn store(&self, v: $T, order: Ordering) {
                self.sync_op(order, concat!(stringify!($Name), " store"), || {
                    self.inner.store(v, Ordering::SeqCst)
                })
            }

            pub fn swap(&self, v: $T, order: Ordering) -> $T {
                self.sync_op(order, concat!(stringify!($Name), " swap"), || {
                    self.inner.swap(v, Ordering::SeqCst)
                })
            }
        }
    };
}

macro_rules! instrumented_atomic_int {
    ($Name:ident, $Std:ty, $T:ty) => {
        instrumented_atomic!($Name, $Std, $T);

        impl $Name {
            pub fn fetch_add(&self, v: $T, order: Ordering) -> $T {
                self.sync_op(order, concat!(stringify!($Name), " fetch_add"), || {
                    self.inner.fetch_add(v, Ordering::SeqCst)
                })
            }

            pub fn fetch_sub(&self, v: $T, order: Ordering) -> $T {
                self.sync_op(order, concat!(stringify!($Name), " fetch_sub"), || {
                    self.inner.fetch_sub(v, Ordering::SeqCst)
                })
            }

            pub fn fetch_max(&self, v: $T, order: Ordering) -> $T {
                self.sync_op(order, concat!(stringify!($Name), " fetch_max"), || {
                    self.inner.fetch_max(v, Ordering::SeqCst)
                })
            }
        }

        impl Default for $Name {
            fn default() -> $Name {
                $Name::new(0)
            }
        }
    };
}

instrumented_atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);
instrumented_atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
instrumented_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);

impl Default for AtomicBool {
    fn default() -> AtomicBool {
        AtomicBool::new(false)
    }
}

// ---------------------------------------------------------------------------
// mpsc
// ---------------------------------------------------------------------------

pub mod mpsc {
    use super::*;
    use std_mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std_mpsc::channel();
        let core = Arc::new(ObjCore::new());
        (
            Sender {
                inner: Some(tx),
                core: Arc::clone(&core),
            },
            Receiver { inner: rx, core },
        )
    }

    #[derive(Debug)]
    pub struct Sender<T> {
        inner: Option<std_mpsc::Sender<T>>,
        core: Arc<ObjCore>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender {
                inner: self.inner.clone(),
                core: Arc::clone(&self.core),
            }
        }
    }

    impl<T> Sender<T> {
        fn tx(&self) -> &std_mpsc::Sender<T> {
            self.inner.as_ref().expect("sender dropped")
        }

        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            if let Some(c) = ctx() {
                let obj = self.core.id();
                let mut payload = Some(t);
                let r = c.exec.op(c.tid, "channel send", false, |st| {
                    st.hb_release(c.tid, obj);
                    let r = self.tx().send(payload.take().expect("send retried"));
                    st.wake(obj);
                    Attempt::Done(r)
                });
                match r {
                    Ok(v) => v,
                    Err(_) => unreachable!("send is not timeoutable"),
                }
            } else {
                let r = self.tx().send(t);
                self.core.wake();
                r
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            // Drop the inner sender first so a disconnect is visible to the
            // receiver before model threads parked on it are woken.
            self.inner.take();
            self.core.wake();
        }
    }

    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: std_mpsc::Receiver<T>,
        core: Arc<ObjCore>,
    }

    impl<T> Receiver<T> {
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            if let Some(c) = ctx() {
                let obj = self.core.id();
                let r = c.exec.op(c.tid, "channel try_recv", false, |st| {
                    let r = self.inner.try_recv();
                    if r.is_ok() {
                        st.hb_acquire(c.tid, obj);
                    }
                    Attempt::Done(r)
                });
                match r {
                    Ok(v) => v,
                    Err(_) => unreachable!("try_recv is not timeoutable"),
                }
            } else {
                self.inner.try_recv()
            }
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            match self.recv_model(false) {
                Some(r) => r.map_err(|_| RecvError),
                None => self.inner.recv(),
            }
        }

        pub fn recv_timeout(&self, dur: Duration) -> Result<T, RecvTimeoutError> {
            match self.recv_model(true) {
                Some(r) => r,
                None => self.inner.recv_timeout(dur),
            }
        }

        /// Shared model-path implementation; `None` means "no model
        /// context — caller should use the real blocking primitive".
        fn recv_model(&self, timeoutable: bool) -> Option<Result<T, RecvTimeoutError>> {
            let c = ctx()?;
            let obj = self.core.id();
            let exec = Arc::clone(&c.exec);
            let r = c.exec.op(c.tid, "channel recv", timeoutable, |st| {
                match self.inner.try_recv() {
                    Ok(v) => {
                        st.hb_acquire(c.tid, obj);
                        Attempt::Done(Ok(v))
                    }
                    Err(TryRecvError::Disconnected) => {
                        Attempt::Done(Err(RecvTimeoutError::Disconnected))
                    }
                    Err(TryRecvError::Empty) => {
                        self.core.register(&exec);
                        Attempt::Block { obj }
                    }
                }
            });
            Some(match r {
                Ok(v) => v,
                Err(_timed_out) => Err(RecvTimeoutError::Timeout),
            })
        }
    }
}

// ---------------------------------------------------------------------------
// thread
// ---------------------------------------------------------------------------

pub mod thread {
    use super::*;
    use crate::engine::payload_message;

    #[derive(Debug)]
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<T>,
        model: Option<(Arc<ExecShared>, usize)>,
    }

    impl<T> JoinHandle<T> {
        pub fn join(self) -> std::thread::Result<T> {
            if let (Some((exec, child)), Some(c)) = (self.model.as_ref(), ctx()) {
                debug_assert!(Arc::ptr_eq(exec, &c.exec));
                let child = *child;
                let r = c.exec.op(c.tid, "join", false, |st| {
                    if st.thread_finished(child) {
                        st.hb_acquire(c.tid, child as u64);
                        Attempt::Done(())
                    } else {
                        Attempt::Block { obj: child as u64 }
                    }
                });
                match r {
                    Ok(()) => {}
                    Err(_) => unreachable!("join is not timeoutable"),
                }
            }
            self.inner.join()
        }

        pub fn is_finished(&self) -> bool {
            self.inner.is_finished()
        }

        pub fn thread(&self) -> &std::thread::Thread {
            self.inner.thread()
        }
    }

    #[derive(Debug, Default)]
    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        pub fn new() -> Builder {
            Builder { name: None }
        }

        pub fn name(mut self, name: String) -> Builder {
            self.name = Some(name);
            self
        }

        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            let mut b = std::thread::Builder::new();
            if let Some(n) = &self.name {
                b = b.name(n.clone());
            }
            match ctx() {
                Some(c) => {
                    let child = c.exec.register_child(c.tid, self.name.clone());
                    let exec = Arc::clone(&c.exec);
                    let inner = b.spawn(move || {
                        let _ctx = CtxGuard::set(Ctx {
                            exec: Arc::clone(&exec),
                            tid: child,
                        });
                        let r = catch_unwind(AssertUnwindSafe(|| {
                            exec.wait_first(child);
                            f()
                        }));
                        let panic_msg = match &r {
                            Ok(_) => None,
                            Err(p) if p.is::<ModelAbort>() => None,
                            Err(p) => Some(payload_message(p.as_ref())),
                        };
                        exec.finish_thread(child, panic_msg);
                        match r {
                            Ok(v) => v,
                            Err(p) => resume_unwind(p),
                        }
                    })?;
                    // Spawning is itself a visible op: the child is now a
                    // scheduling option.
                    c.exec.schedule_point(c.tid, "spawn");
                    Ok(JoinHandle {
                        inner,
                        model: Some((c.exec, child)),
                    })
                }
                None => {
                    let inner = b.spawn(f)?;
                    Ok(JoinHandle { inner, model: None })
                }
            }
        }
    }

    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Builder::new().spawn(f).expect("failed to spawn thread")
    }

    pub fn sleep(dur: Duration) {
        if let Some(c) = ctx() {
            // Model time is abstract: sleeping is just a scheduling point.
            c.exec.schedule_point(c.tid, "sleep");
        } else {
            std::thread::sleep(dur);
        }
    }

    pub fn yield_now() {
        if let Some(c) = ctx() {
            c.exec.schedule_point(c.tid, "yield");
        } else {
            std::thread::yield_now();
        }
    }
}

// ---------------------------------------------------------------------------
// RaceCell (model-build implementation; see crate::model for the facade)
// ---------------------------------------------------------------------------

use crate::engine::VClock;

#[derive(Debug)]
struct CellInner<T> {
    value: T,
    last_write: Option<(usize, String, VClock)>,
    reads: Vec<(usize, String, VClock)>,
}

/// A plain data cell watched by the race detector: reads and writes are
/// *not* synchronized by the cell itself, so two accesses (at least one a
/// write) that are not ordered by happens-before are reported as a data
/// race with the offending schedule.
#[derive(Debug)]
pub struct RaceCell<T> {
    state: StdMutex<CellInner<T>>,
}

impl<T: Clone> RaceCell<T> {
    pub fn new(value: T) -> RaceCell<T> {
        RaceCell {
            state: StdMutex::new(CellInner {
                value,
                last_write: None,
                reads: Vec::new(),
            }),
        }
    }

    pub fn read(&self) -> T {
        match ctx() {
            Some(c) => {
                let r = c.exec.op(c.tid, "racecell read", false, |st| {
                    let mut inner = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                    let clock = st.clock_of(c.tid);
                    if let Some((wtid, wname, wclock)) = &inner.last_write {
                        if !wclock.le(&clock) {
                            st.fail(format!(
                                "data race on RaceCell: read by t{}({}) races with write by t{wtid}({wname})",
                                c.tid,
                                st.thread_name(c.tid),
                            ));
                        }
                    }
                    let name = st.thread_name(c.tid);
                    inner.reads.push((c.tid, name, clock));
                    Attempt::Done(inner.value.clone())
                });
                match r {
                    Ok(v) => v,
                    Err(_) => unreachable!("racecell read is not timeoutable"),
                }
            }
            None => {
                let inner = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                inner.value.clone()
            }
        }
    }

    pub fn write(&self, value: T) {
        match ctx() {
            Some(c) => {
                let mut payload = Some(value);
                let r = c.exec.op(c.tid, "racecell write", false, |st| {
                    let mut inner = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                    let clock = st.clock_of(c.tid);
                    if let Some((wtid, wname, wclock)) = &inner.last_write {
                        if !wclock.le(&clock) {
                            st.fail(format!(
                                "data race on RaceCell: write by t{}({}) races with write by t{wtid}({wname})",
                                c.tid,
                                st.thread_name(c.tid),
                            ));
                        }
                    }
                    for (rtid, rname, rclock) in &inner.reads {
                        if !rclock.le(&clock) {
                            st.fail(format!(
                                "data race on RaceCell: write by t{}({}) races with read by t{rtid}({rname})",
                                c.tid,
                                st.thread_name(c.tid),
                            ));
                        }
                    }
                    let name = st.thread_name(c.tid);
                    inner.value = payload.take().expect("write retried");
                    inner.last_write = Some((c.tid, name, clock));
                    inner.reads.clear();
                    Attempt::Done(())
                });
                match r {
                    Ok(()) => {}
                    Err(_) => unreachable!("racecell write is not timeoutable"),
                }
            }
            None => {
                let mut inner = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                inner.value = value;
            }
        }
    }
}
