//! # dsr-sync — the workspace's single import point for sync primitives
//!
//! Every crate in the workspace that names a synchronization primitive
//! (`Mutex`, `Condvar`, atomics, channels, `thread::spawn`, ...) imports it
//! from here instead of from `std::sync`/`std::thread`. The `dsr-lint` tool
//! enforces this at CI time.
//!
//! ## Two build modes
//!
//! * **Normal builds** (no extra cfg): everything in this crate is a
//!   zero-cost re-export of the corresponding `std` item. There is no
//!   wrapper type, no branch, no dependency — the facade compiles away
//!   entirely.
//!
//! * **Model builds** (`RUSTFLAGS="--cfg dsr_model"`): the same names
//!   resolve to *instrumented* primitives driven by a controlled scheduler
//!   (see [`model`]). Threads spawned inside [`model::Model::check`] become
//!   *model threads*: they are serialized so that at most one runs at a
//!   time, every visible operation (lock, unlock, condvar wait/notify,
//!   channel send/recv, non-`Relaxed` atomic access, spawn/join) is a
//!   scheduling point, and the scheduler systematically explores
//!   interleavings — exhaustive bounded-preemption DFS for small tests,
//!   seeded random walk for bigger ones. Vector clocks track
//!   happens-before so unsynchronized access to a [`model::RaceCell`] is
//!   reported as a data race. Every failure carries a replayable schedule
//!   string.
//!
//!   Threads that are *not* model threads (e.g. the process-global
//!   `SlavePool` workers) pass straight through to the underlying `std`
//!   primitive, so mixed workloads still run correctly — they are simply
//!   not scheduled by the explorer.
//!
//! ## Poisoned-lock policy
//!
//! The workspace recovers from lock poisoning instead of unwrapping it:
//! use [`lock`], [`wait`] and [`wait_timeout`] rather than
//! `.lock().unwrap()`. Rationale: a poisoned lock only means *some thread
//! panicked while holding it*. Every place that matters already propagates
//! that panic explicitly — the `SlavePool` rethrows worker panics to the
//! caller, and the batcher's `Drop` rethrows its scheduler thread's panic —
//! so the poison flag carries no extra information, while unwrapping it in
//! `Drop`/teardown paths converts one panic into a double-panic abort. The
//! protected data is kept consistent by the panicking code's own unwind
//! safety, which in this codebase means "fully written before the lock is
//! released" (no partially-applied states are ever left behind a lock).
//! `dsr-lint` flags `.unwrap()`/`.expect()` on lock results in non-test
//! code to keep this policy honest.

#![forbid(unsafe_code)]

pub mod model;

#[cfg(dsr_model)]
mod engine;
#[cfg(dsr_model)]
mod instrumented;

// ---------------------------------------------------------------------------
// Items identical in both build modes.
// ---------------------------------------------------------------------------

pub use std::sync::{Arc, LockResult, OnceLock, PoisonError, TryLockError, TryLockResult, Weak};

// ---------------------------------------------------------------------------
// Normal builds: pure std re-exports.
// ---------------------------------------------------------------------------

#[cfg(not(dsr_model))]
pub use std::sync::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

/// Atomic types. Normal builds re-export `std::sync::atomic`; model builds
/// swap in instrumented atomics (non-`Relaxed` accesses become scheduling
/// points and happens-before edges, `Relaxed` accesses stay invisible so
/// stats counters do not blow up the schedule space).
#[cfg(not(dsr_model))]
pub mod atomic {
    pub use std::sync::atomic::*;
}

/// Multi-producer single-consumer channels (instrumented under `dsr_model`).
#[cfg(not(dsr_model))]
pub mod mpsc {
    pub use std::sync::mpsc::*;
}

/// Thread spawning and management (instrumented under `dsr_model`).
#[cfg(not(dsr_model))]
pub mod thread {
    pub use std::thread::*;
}

// ---------------------------------------------------------------------------
// Model builds: instrumented primitives.
// ---------------------------------------------------------------------------

#[cfg(dsr_model)]
pub use instrumented::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

// `RwLock` has no worksite user today; under `dsr_model` it stays a std
// passthrough (unscheduled) until a protocol actually needs it modeled.
#[cfg(dsr_model)]
pub use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(dsr_model)]
pub mod atomic {
    pub use crate::instrumented::{AtomicBool, AtomicU64, AtomicUsize};
    pub use std::sync::atomic::Ordering;
}

#[cfg(dsr_model)]
pub mod mpsc {
    pub use crate::instrumented::mpsc::{channel, Receiver, Sender};
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};
}

#[cfg(dsr_model)]
pub mod thread {
    pub use crate::instrumented::thread::{sleep, spawn, yield_now, Builder, JoinHandle};
    pub use std::thread::{
        available_parallelism, current, panicking, scope, Scope, ScopedJoinHandle, Thread, ThreadId,
    };
}

// ---------------------------------------------------------------------------
// Poisoned-lock policy helpers.
// ---------------------------------------------------------------------------

/// Acquire `m`, recovering from poisoning (see the crate-level policy).
///
/// This is the workspace-standard way to lock a mutex in non-test code;
/// `dsr-lint` flags `.lock().unwrap()` / `.lock().expect(..)` instead.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Block on `cv` releasing `guard`, recovering from poisoning on wakeup.
pub fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Block on `cv` with a timeout, recovering from poisoning on wakeup.
///
/// Under `dsr_model` the duration is advisory: model time is abstract, so a
/// timed wait fires only when no model thread can otherwise make progress.
pub fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: std::time::Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, dur)
        .unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn lock_helper_basic() {
        let m = Mutex::new(7);
        *lock(&m) += 1;
        assert_eq!(*lock(&m), 8);
    }

    #[test]
    fn wait_timeout_helper_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let g = lock(&m);
        let (_g, res) = wait_timeout(&cv, g, Duration::from_millis(1));
        assert!(res.timed_out());
    }

    #[cfg(not(dsr_model))]
    #[test]
    fn lock_helper_recovers_from_poison() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.lock().is_err(), "mutex should be poisoned");
        assert_eq!(*lock(&m), 1, "helper recovers the inner value");
    }
}
