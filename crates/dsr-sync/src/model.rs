//! Public surface of the concurrency model checker.
//!
//! In normal builds every entry point degrades to a cheap single-execution
//! smoke run (and [`mutation_enabled`] is a compile-time `false`), so model
//! tests still compile and execute once under `cargo test`. Under
//! `RUSTFLAGS="--cfg dsr_model"` the same tests drive the schedule
//! explorer in the crate-private `engine` module.
//!
//! # Quick start
//!
//! ```no_run
//! use dsr_sync::model::{self, Model};
//! use dsr_sync::{Arc, Mutex};
//!
//! let report = Model::new()
//!     .check(|| {
//!         let m = Arc::new(Mutex::new(0u32));
//!         let m2 = Arc::clone(&m);
//!         let h = dsr_sync::thread::spawn(move || *dsr_sync::lock(&m2) += 1);
//!         *dsr_sync::lock(&m) += 1;
//!         h.join().unwrap();
//!         assert_eq!(*dsr_sync::lock(&m), 2);
//!     })
//!     .expect("no interleaving violates the invariant");
//! println!("explored {} schedules", report.schedules_explored);
//! ```
//!
//! A failure carries a *schedule string*; feed it to [`Model::replay`] to
//! re-run exactly the failing interleaving under a debugger or with extra
//! logging:
//!
//! ```text
//! model failure: assertion failed: ...
//!   schedule: 1.0.2.0.1   (replay with Model::new().replay("1.0.2.0.1", f))
//! ```

#[cfg(dsr_model)]
use crate::engine;

/// Names of the seeded mutation bugs used to prove the checker's detection
/// power (see the `model_mutation_*` tests in dsr-service). Production code
/// consults [`mutation_enabled`] at the mutation site; in normal builds
/// that is a const `false` and the code is unchanged.
pub const MUTATION_CACHE_SKIP_GENERATION_RECHECK: &str = "cache_skip_generation_recheck";
/// See [`MUTATION_CACHE_SKIP_GENERATION_RECHECK`].
pub const MUTATION_BATCHER_RELEASE_BEFORE_PUBLISH: &str = "batcher_release_before_publish";
/// See [`MUTATION_CACHE_SKIP_GENERATION_RECHECK`].
pub const MUTATION_SNAPSHOT_WIDEN_SLOT_RACE: &str = "snapshot_widen_slot_race";

/// True when compiled with `--cfg dsr_model` (exploration available).
#[inline(always)]
pub const fn is_model_build() -> bool {
    cfg!(dsr_model)
}

/// Index of the current model thread within its execution (0 = the thread
/// that called [`Model::check`]), or `None` outside a model run. Used by
/// code that wants per-thread slot assignment to be deterministic across
/// explored schedules (e.g. `SnapshotHolder::my_slot`).
#[cfg(dsr_model)]
pub fn thread_index() -> Option<usize> {
    engine::ctx().map(|c| c.tid)
}

/// See the `dsr_model` variant; always `None` in normal builds.
#[cfg(not(dsr_model))]
#[inline(always)]
pub fn thread_index() -> Option<usize> {
    None
}

/// Runs `f` with the model context cleared: primitives touched inside —
/// and, crucially, threads spawned inside — behave as non-model even when
/// the caller is a model thread. This is the escape hatch for
/// *process-global* services (e.g. the lazily created `SlavePool` in
/// dsr-cluster) whose threads must outlive any single model execution: if
/// such a thread were registered as a model thread, the execution could
/// never finish waiting for it. In normal builds this is just `f()`.
#[cfg(dsr_model)]
pub fn without_model<R>(f: impl FnOnce() -> R) -> R {
    engine::with_cleared_ctx(f)
}

/// See the `dsr_model` variant; a plain call in normal builds.
#[cfg(not(dsr_model))]
#[inline(always)]
pub fn without_model<R>(f: impl FnOnce() -> R) -> R {
    f()
}

/// Whether the named seeded bug is active in the current model execution.
#[cfg(dsr_model)]
pub fn mutation_enabled(name: &str) -> bool {
    match engine::ctx() {
        Some(c) => c.exec.st().mutation_enabled(name),
        None => false,
    }
}

/// Compile-time `false` in normal builds: mutation sites cost nothing.
#[cfg(not(dsr_model))]
#[inline(always)]
pub fn mutation_enabled(_name: &str) -> bool {
    false
}

/// Outcome of a successful exploration.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Number of schedules executed.
    pub schedules_explored: u64,
    /// True if exploration stopped at `max_schedules` before exhausting
    /// the schedule space.
    pub truncated: bool,
}

/// A failing interleaving: what went wrong, where, and how to re-run it.
#[derive(Debug, Clone)]
pub struct ModelFailure {
    /// Panic/assertion/deadlock/race message from the failing execution.
    pub message: String,
    /// Replayable schedule string (pass to [`Model::replay`]).
    pub schedule: String,
    /// Tail of the per-thread operation trace at the point of failure.
    pub trace: Vec<String>,
    /// How many schedules ran before this one failed.
    pub schedules_explored: u64,
}

impl std::fmt::Display for ModelFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "model failure: {}", self.message)?;
        writeln!(
            f,
            "  schedule: {:?}  (replay with Model::new().replay(schedule, f))",
            self.schedule
        )?;
        writeln!(
            f,
            "  after {} schedule(s); trace tail:",
            self.schedules_explored
        )?;
        for line in self.trace.iter().rev().take(30).rev() {
            writeln!(f, "    {line}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ModelFailure {}

/// Builder for one exploration run. See the module docs for an example.
#[derive(Debug, Clone)]
// In normal builds check() runs the closure once and most knobs are unread.
#[cfg_attr(not(dsr_model), allow(dead_code))]
pub struct Model {
    preemption_bound: u32,
    max_schedules: u64,
    max_steps: u64,
    trace_cap: usize,
    random: Option<(u64, u64)>,
    mutations: Vec<&'static str>,
}

impl Default for Model {
    fn default() -> Model {
        Model::new()
    }
}

impl Model {
    pub fn new() -> Model {
        Model {
            preemption_bound: 2,
            max_schedules: 4096,
            max_steps: 50_000,
            trace_cap: 200,
            random: None,
            mutations: Vec::new(),
        }
    }

    /// Max forced context switches away from a runnable thread per
    /// schedule (DFS mode). Most real bugs need very few preemptions;
    /// 2–3 keeps small tests exhaustive and fast.
    pub fn preemption_bound(mut self, bound: u32) -> Model {
        self.preemption_bound = bound;
        self
    }

    /// Stop after this many schedules even if the DFS is not exhausted
    /// (the report is then marked `truncated`).
    pub fn max_schedules(mut self, n: u64) -> Model {
        self.max_schedules = n;
        self
    }

    /// Per-schedule step budget (guards against unbounded spinning).
    pub fn max_steps(mut self, n: u64) -> Model {
        self.max_steps = n;
        self
    }

    /// Use seeded random-walk exploration (`iters` schedules from `seed`)
    /// instead of exhaustive DFS — for state spaces too big to enumerate.
    pub fn random(mut self, seed: u64, iters: u64) -> Model {
        self.random = Some((seed, iters));
        self
    }

    /// Enable a seeded mutation bug for this run (see the `MUTATION_*`
    /// constants).
    pub fn mutation(mut self, name: &'static str) -> Model {
        self.mutations.push(name);
        self
    }

    /// Explore interleavings of `f`. `Err` carries the first failing
    /// schedule. In normal (non-`dsr_model`) builds this runs `f` once.
    #[cfg(dsr_model)]
    pub fn check(&self, f: impl Fn()) -> Result<ModelReport, ModelFailure> {
        let mode = match self.random {
            Some((seed, iters)) => engine::StartMode::Random { seed, iters },
            None => engine::StartMode::Dfs,
        };
        engine::run(self.run_cfg(mode), &f)
    }

    /// Single smoke execution (normal build).
    #[cfg(not(dsr_model))]
    pub fn check(&self, f: impl Fn()) -> Result<ModelReport, ModelFailure> {
        f();
        Ok(ModelReport {
            schedules_explored: 1,
            truncated: false,
        })
    }

    /// Re-run exactly one recorded schedule (from [`ModelFailure::schedule`]).
    #[cfg(dsr_model)]
    pub fn replay(&self, schedule: &str, f: impl Fn()) -> Result<ModelReport, ModelFailure> {
        let script = engine::decode_schedule(schedule);
        engine::run(self.run_cfg(engine::StartMode::Replay(script)), &f)
    }

    /// Single smoke execution (normal build; the schedule is ignored).
    #[cfg(not(dsr_model))]
    pub fn replay(&self, _schedule: &str, f: impl Fn()) -> Result<ModelReport, ModelFailure> {
        self.check(f)
    }

    #[cfg(dsr_model)]
    fn run_cfg(&self, mode: engine::StartMode) -> engine::RunCfg {
        engine::RunCfg {
            preemption_bound: self.preemption_bound,
            max_schedules: self.max_schedules,
            max_steps: self.max_steps,
            trace_cap: self.trace_cap,
            mutations: self.mutations.clone(),
            mode,
        }
    }
}

/// Convenience wrapper: explore with defaults, panic (with the replayable
/// schedule) on the first failing interleaving.
pub fn explore(f: impl Fn()) {
    if let Err(failure) = Model::new().check(f) {
        panic!("{failure}");
    }
}

// ---------------------------------------------------------------------------
// RaceCell facade
// ---------------------------------------------------------------------------

#[cfg(dsr_model)]
pub use crate::instrumented::RaceCell;

/// Normal-build `RaceCell`: a plain mutex-protected cell (no detection).
#[cfg(not(dsr_model))]
#[derive(Debug)]
pub struct RaceCell<T> {
    value: std::sync::Mutex<T>,
}

#[cfg(not(dsr_model))]
impl<T: Clone> RaceCell<T> {
    pub fn new(value: T) -> RaceCell<T> {
        RaceCell {
            value: std::sync::Mutex::new(value),
        }
    }

    pub fn read(&self) -> T {
        self.value
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    pub fn write(&self, value: T) {
        *self
            .value
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = value;
    }
}
