//! The controlled scheduler behind `--cfg dsr_model`.
//!
//! ## How exploration works
//!
//! [`run`] executes the test closure repeatedly. Within one execution, all
//! *model threads* (the calling thread plus everything spawned through
//! `dsr_sync::thread` while a model context is active) are serialized: a
//! single `active` token decides who runs, and everyone else parks on a
//! condvar. Every visible operation calls [`ExecShared::op`], which
//!
//! 1. takes a **scheduling choice**: if more than one thread is runnable
//!    (and the preemption budget is not exhausted) the controller picks who
//!    runs next — this is where interleavings branch;
//! 2. runs the operation's *attempt* under the scheduler lock. An attempt
//!    either completes ([`Attempt::Done`]) or reports that it must block on
//!    an object ([`Attempt::Block`]), in which case the thread is parked
//!    until [`ExecState::wake`] marks it runnable and the scheduler grants
//!    it the token again, then the attempt is retried.
//!
//! The controller is either an exhaustive DFS over choice points with a
//! preemption bound (complete for small tests), a seeded random walk
//! (PCT-style, for bigger state spaces), or a replay of a recorded
//! schedule. The sequence of choice indices *is* the schedule: it is
//! attached to every failure and can be fed back via `Model::replay`.
//!
//! ## Hybrid executions
//!
//! Threads without a model context (e.g. the process-global `SlavePool`
//! workers) are not scheduled; they run on real OS time and interact with
//! instrumented primitives through their `std` internals. When such a
//! thread unblocks a parked model thread it does so through the object's
//! registered waker ([`ExecShared::wake_object`]). When no model thread is
//! runnable the scheduler polls briefly for such external progress before
//! firing timeouts or declaring a deadlock. Purely-model executions stay
//! fully deterministic; hybrid ones remain correct but the DFS may observe
//! divergent schedules (it clamps and keeps exploring).
//!
//! ## Vector clocks
//!
//! Each thread carries a vector clock. Release-style operations join the
//! thread's clock into the object's clock; acquire-style operations join
//! the object's clock into the thread's. `RaceCell` accesses compare these
//! clocks: a write must happen-after every prior access, a read must
//! happen-after the last write — anything else is reported as a data race
//! with the two thread names involved.

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::time::Duration;

use crate::model::{ModelFailure, ModelReport};

/// Sentinel for "no thread holds the token" (someone must be elected).
const NO_ACTIVE: usize = usize::MAX;
/// Idle milliseconds of real time before a timed wait is allowed to fire.
const GRACE_MS: u64 = 3;
/// Idle milliseconds of real time before declaring a model deadlock.
const DEADLOCK_MS: u64 = 1000;
/// Milliseconds to keep pumping teardown after a failure before giving up.
const TEARDOWN_MS: u64 = 10_000;

/// Object ids: thread-join objects are the tid itself; everything else
/// (mutexes, condvars, channels, cells) allocates above `OBJ_BASE`.
const OBJ_BASE: u64 = 1 << 32;

static NEXT_OBJ: StdAtomicU64 = StdAtomicU64::new(OBJ_BASE);

pub(crate) fn next_obj_id() -> u64 {
    NEXT_OBJ.fetch_add(1, Ordering::Relaxed)
}

fn thread_obj(tid: usize) -> u64 {
    tid as u64
}

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    pub(crate) fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (s, o) in self.0.iter_mut().zip(other.0.iter()) {
            *s = (*s).max(*o);
        }
    }

    /// `self` happens-before-or-equals `other`.
    pub(crate) fn le(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.0.get(i).copied().unwrap_or(0))
    }
}

// ---------------------------------------------------------------------------
// Controller (exploration strategy)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub(crate) struct PathEntry {
    chosen: u32,
    options: u32,
}

#[derive(Debug)]
pub(crate) enum Mode {
    Dfs { path: Vec<PathEntry>, pos: usize },
    Random { rng: u64, iters: u64, done: u64 },
    Replay { script: Vec<u32>, pos: usize },
}

pub(crate) enum StartMode {
    Dfs,
    Random { seed: u64, iters: u64 },
    Replay(Vec<u32>),
}

impl Mode {
    fn new(start: &StartMode) -> Mode {
        match start {
            StartMode::Dfs => Mode::Dfs {
                path: Vec::new(),
                pos: 0,
            },
            StartMode::Random { seed, iters } => Mode::Random {
                // xorshift state must be nonzero.
                rng: seed | 1,
                iters: (*iters).max(1),
                done: 0,
            },
            StartMode::Replay(script) => Mode::Replay {
                script: script.clone(),
                pos: 0,
            },
        }
    }

    fn choose(&mut self, options: u32) -> u32 {
        match self {
            Mode::Dfs { path, pos } => {
                let c = if *pos < path.len() {
                    // Re-walking a recorded prefix. Hybrid executions can
                    // diverge (external timing); clamp and keep going.
                    let e = &mut path[*pos];
                    e.options = options;
                    e.chosen.min(options - 1)
                } else {
                    path.push(PathEntry { chosen: 0, options });
                    0
                };
                *pos += 1;
                c
            }
            Mode::Random { rng, .. } => {
                // xorshift64* — deterministic, dependency-free.
                let mut x = *rng;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *rng = x;
                (x.wrapping_mul(0x2545_F491_4F6C_DD1D) % options as u64) as u32
            }
            Mode::Replay { script, pos } => {
                let c = script.get(*pos).copied().unwrap_or(0).min(options - 1);
                *pos += 1;
                c
            }
        }
    }

    /// Prepare the next execution. Returns false when exploration is done.
    fn advance(&mut self) -> bool {
        match self {
            Mode::Dfs { path, pos } => {
                *pos = 0;
                while let Some(last) = path.last_mut() {
                    if last.chosen + 1 < last.options {
                        last.chosen += 1;
                        return true;
                    }
                    path.pop();
                }
                false
            }
            Mode::Random { iters, done, .. } => {
                *done += 1;
                done < iters
            }
            Mode::Replay { .. } => false,
        }
    }
}

// ---------------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Status {
    Runnable,
    Blocked { obj: u64, timeoutable: bool },
    Finished,
}

#[derive(Debug)]
struct ThreadState {
    status: Status,
    clock: VClock,
    name: String,
    timed_out: bool,
}

pub(crate) struct ExecState {
    threads: Vec<ThreadState>,
    active: usize,
    mode: Mode,
    /// Choice indices taken so far this execution (the schedule).
    choices: Vec<u32>,
    trace: Vec<String>,
    trace_cap: usize,
    objects: HashMap<u64, VClock>,
    failure: Option<(String, String, Vec<String>)>, // (message, schedule, trace)
    mutations: Vec<&'static str>,
    preemptions: u32,
    preemption_bound: u32,
    steps: u64,
    max_steps: u64,
}

impl ExecState {
    fn runnable(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect()
    }

    fn note(&mut self, tid: usize, label: &str) {
        if self.trace.len() >= 2 * self.trace_cap {
            self.trace.drain(..self.trace_cap);
        }
        let name = &self.threads[tid].name;
        self.trace.push(format!("t{tid}({name}) {label}"));
    }

    /// Record the first failure; later ones are teardown noise.
    pub(crate) fn fail(&mut self, message: String) {
        if self.failure.is_none() {
            let schedule = encode_schedule(&self.choices);
            self.failure = Some((message, schedule, self.trace.clone()));
        }
    }

    pub(crate) fn failed(&self) -> bool {
        self.failure.is_some()
    }

    /// Mark every model thread blocked on `obj` runnable.
    pub(crate) fn wake(&mut self, obj: u64) {
        for t in &mut self.threads {
            if matches!(t.status, Status::Blocked { obj: o, .. } if o == obj) {
                t.status = Status::Runnable;
            }
        }
    }

    pub(crate) fn mutation_enabled(&self, name: &str) -> bool {
        self.mutations.contains(&name)
    }

    pub(crate) fn thread_finished(&self, tid: usize) -> bool {
        self.threads[tid].status == Status::Finished
    }

    // --- happens-before bookkeeping -------------------------------------

    /// Acquire edge: object clock flows into the thread.
    pub(crate) fn hb_acquire(&mut self, tid: usize, obj: u64) {
        let oc = self.objects.entry(obj).or_default().clone();
        self.threads[tid].clock.join(&oc);
    }

    /// Release edge: thread clock flows into the object.
    pub(crate) fn hb_release(&mut self, tid: usize, obj: u64) {
        let tc = self.threads[tid].clock.clone();
        self.objects.entry(obj).or_default().join(&tc);
        self.threads[tid].clock.tick(tid);
    }

    pub(crate) fn clock_of(&self, tid: usize) -> VClock {
        self.threads[tid].clock.clone()
    }

    pub(crate) fn thread_name(&self, tid: usize) -> String {
        self.threads[tid].name.clone()
    }

    fn choose(&mut self, options: u32) -> u32 {
        let c = self.mode.choose(options);
        self.choices.push(c);
        c
    }
}

// ---------------------------------------------------------------------------
// Shared execution handle
// ---------------------------------------------------------------------------

pub(crate) struct ExecShared {
    state: StdMutex<ExecState>,
    cv: StdCondvar,
}

impl std::fmt::Debug for ExecShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecShared").finish_non_exhaustive()
    }
}

/// Result of one attempt at a visible operation.
pub(crate) enum Attempt<R> {
    Done(R),
    Block { obj: u64 },
}

/// Marker: a timed operation gave up because nothing else could run.
pub(crate) struct TimedOut;

/// Panic payload used to tear down model threads after a failure.
pub(crate) struct ModelAbort;

type Guard<'a> = StdMutexGuard<'a, ExecState>;

impl ExecShared {
    fn new(state: ExecState) -> Arc<Self> {
        Arc::new(ExecShared {
            state: StdMutex::new(state),
            cv: StdCondvar::new(),
        })
    }

    pub(crate) fn st(&self) -> Guard<'_> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn abort_if_failed(&self, st: &Guard<'_>) {
        if st.failure.is_some() {
            self.cv.notify_all();
            panic::panic_any(ModelAbort);
        }
    }

    /// One visible operation of model thread `tid`. See module docs.
    pub(crate) fn op<R>(
        &self,
        tid: usize,
        label: &str,
        timeoutable: bool,
        mut attempt: impl FnMut(&mut ExecState) -> Attempt<R>,
    ) -> Result<R, TimedOut> {
        let mut st = self.st();
        self.abort_if_failed(&st);
        st.steps += 1;
        if st.steps > st.max_steps {
            let budget = st.max_steps;
            st.fail(format!(
                "step budget ({budget}) exceeded at `{label}` — raise Model::max_steps or shrink the test"
            ));
            self.abort_if_failed(&st);
        }
        st.note(tid, label);
        st = self.yield_choice(st, tid);
        loop {
            self.abort_if_failed(&st);
            match attempt(&mut st) {
                Attempt::Done(r) => {
                    self.abort_if_failed(&st);
                    self.cv.notify_all();
                    return Ok(r);
                }
                Attempt::Block { obj } => {
                    st.threads[tid].status = Status::Blocked { obj, timeoutable };
                    st.threads[tid].timed_out = false;
                    st.active = NO_ACTIVE;
                    self.cv.notify_all();
                    st = self.wait_active(st, tid);
                    if st.threads[tid].timed_out {
                        st.threads[tid].timed_out = false;
                        self.cv.notify_all();
                        return Err(TimedOut);
                    }
                }
            }
        }
    }

    /// A pure scheduling point (no state change): lets other threads run.
    pub(crate) fn schedule_point(&self, tid: usize, label: &str) {
        let _ = self.op(tid, label, false, |_| Attempt::<()>::Done(()));
    }

    /// The branch point: possibly hand the token to another runnable thread.
    fn yield_choice<'a>(&'a self, mut st: Guard<'a>, tid: usize) -> Guard<'a> {
        let runnable = st.runnable();
        if runnable.len() > 1 {
            let can_preempt = st.preemptions < st.preemption_bound;
            if can_preempt {
                let idx = st.choose(runnable.len() as u32) as usize;
                let chosen = runnable[idx];
                if chosen != tid {
                    st.preemptions += 1;
                    st.active = chosen;
                    self.cv.notify_all();
                    st = self.wait_active(st, tid);
                }
            }
        }
        st
    }

    /// Park until this thread is runnable and holds the token. Performs
    /// elections, timeout firing and deadlock detection while parked.
    fn wait_active<'a>(&'a self, mut st: Guard<'a>, tid: usize) -> Guard<'a> {
        let mut idle_ms: u64 = 0;
        loop {
            self.abort_if_failed(&st);
            if st.threads[tid].status == Status::Runnable && st.active == tid {
                return st;
            }
            if st.active == NO_ACTIVE {
                let runnable = st.runnable();
                if !runnable.is_empty() {
                    let idx = if runnable.len() == 1 {
                        0
                    } else {
                        st.choose(runnable.len() as u32) as usize
                    };
                    st.active = runnable[idx];
                    self.cv.notify_all();
                    idle_ms = 0;
                    continue;
                }
                // No model thread can run. Give external (non-model)
                // threads a moment, then fire a timed wait, then deadlock.
                if idle_ms >= GRACE_MS {
                    if let Some(t) = lowest_timeoutable(&st) {
                        st.threads[t].status = Status::Runnable;
                        st.threads[t].timed_out = true;
                        st.active = t;
                        self.cv.notify_all();
                        idle_ms = 0;
                        continue;
                    }
                }
                if idle_ms >= DEADLOCK_MS && lowest_blocked(&st) == Some(tid) {
                    let detail = blocked_summary(&st);
                    st.fail(format!(
                        "deadlock: every model thread is blocked ({detail})"
                    ));
                    self.cv.notify_all();
                    continue;
                }
            }
            let (g, to) = self
                .cv
                .wait_timeout(st, Duration::from_millis(1))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st = g;
            if to.timed_out() && st.active == NO_ACTIVE {
                idle_ms += 1;
            }
        }
    }

    /// External wake: a (possibly non-model) thread changed an object's
    /// state in a way that may unblock parked model threads.
    pub(crate) fn wake_object(&self, obj: u64) {
        let mut st = self.st();
        st.wake(obj);
        self.cv.notify_all();
    }

    // --- thread lifecycle -----------------------------------------------

    pub(crate) fn register_child(&self, parent: usize, name: Option<String>) -> usize {
        let mut st = self.st();
        let clock = st.threads[parent].clock.clone();
        st.threads[parent].clock.tick(parent);
        let tid = st.threads.len();
        st.threads.push(ThreadState {
            status: Status::Runnable,
            clock,
            name: name.unwrap_or_else(|| format!("thread-{tid}")),
            timed_out: false,
        });
        st.note(parent, &format!("spawn t{tid}"));
        tid
    }

    /// Park a fresh child until the scheduler grants it the token.
    pub(crate) fn wait_first(&self, tid: usize) {
        let st = self.st();
        drop(self.wait_active(st, tid));
    }

    pub(crate) fn finish_thread(&self, tid: usize, panic_msg: Option<String>) {
        let mut st = self.st();
        st.note(tid, "exit");
        let clk = st.threads[tid].clock.clone();
        st.objects.entry(thread_obj(tid)).or_default().join(&clk);
        st.threads[tid].status = Status::Finished;
        if st.active == tid {
            st.active = NO_ACTIVE;
        }
        if let Some(msg) = panic_msg {
            st.fail(msg);
        }
        st.wake(thread_obj(tid));
        self.cv.notify_all();
    }

    /// Run the execution to completion after the root closure returned:
    /// keep electing/waking until every model thread has finished.
    fn pump(&self) {
        let mut st = self.st();
        let mut idle_ms: u64 = 0;
        let mut teardown_ms: u64 = 0;
        loop {
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                return;
            }
            if st.failure.is_some() {
                teardown_ms += 1;
                if teardown_ms > TEARDOWN_MS {
                    // Leak the stuck threads rather than hang the suite;
                    // the failure is already recorded.
                    return;
                }
            }
            if st.active == NO_ACTIVE {
                let runnable = st.runnable();
                if !runnable.is_empty() {
                    // After a failure the choice is irrelevant (threads
                    // abort at their next op) — grant in tid order.
                    let idx = if runnable.len() == 1 || st.failure.is_some() {
                        0
                    } else {
                        st.choose(runnable.len() as u32) as usize
                    };
                    st.active = runnable[idx];
                    self.cv.notify_all();
                    idle_ms = 0;
                } else if st.failure.is_none() {
                    if idle_ms >= GRACE_MS {
                        if let Some(t) = lowest_timeoutable(&st) {
                            st.threads[t].status = Status::Runnable;
                            st.threads[t].timed_out = true;
                            st.active = t;
                            self.cv.notify_all();
                            idle_ms = 0;
                            continue;
                        }
                    }
                    if idle_ms >= DEADLOCK_MS {
                        let detail = blocked_summary(&st);
                        st.fail(format!(
                            "deadlock after main returned: model threads still blocked ({detail})"
                        ));
                        self.cv.notify_all();
                        continue;
                    }
                }
            }
            let (g, to) = self
                .cv
                .wait_timeout(st, Duration::from_millis(1))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st = g;
            if to.timed_out() {
                idle_ms += 1;
                if st.failure.is_some() {
                    // Parked threads re-check the failure flag on wakeups.
                    self.cv.notify_all();
                }
            }
        }
    }
}

fn lowest_timeoutable(st: &ExecState) -> Option<usize> {
    st.threads.iter().enumerate().find_map(|(i, t)| {
        matches!(
            t.status,
            Status::Blocked {
                timeoutable: true,
                ..
            }
        )
        .then_some(i)
    })
}

fn lowest_blocked(st: &ExecState) -> Option<usize> {
    st.threads
        .iter()
        .enumerate()
        .find_map(|(i, t)| matches!(t.status, Status::Blocked { .. }).then_some(i))
}

fn blocked_summary(st: &ExecState) -> String {
    let parts: Vec<String> = st
        .threads
        .iter()
        .enumerate()
        .filter_map(|(i, t)| match t.status {
            Status::Blocked { obj, .. } => Some(format!("t{i}({}) on obj {obj}", t.name)),
            _ => None,
        })
        .collect();
    parts.join(", ")
}

// ---------------------------------------------------------------------------
// Thread-local model context
// ---------------------------------------------------------------------------

#[derive(Clone)]
pub(crate) struct Ctx {
    pub exec: Arc<ExecShared>,
    pub tid: usize,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

pub(crate) fn ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// Runs `f` with the model context cleared: primitives touched inside (and
/// threads spawned inside) behave as non-model. Backs
/// [`crate::model::without_model`] — the escape hatch for process-global
/// services whose threads must outlive any single model execution.
pub(crate) fn with_cleared_ctx<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Ctx>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let saved = self.0.take();
            CTX.with(|c| *c.borrow_mut() = saved);
        }
    }
    let _restore = Restore(CTX.with(|c| c.borrow_mut().take()));
    f()
}

pub(crate) struct CtxGuard;

impl CtxGuard {
    pub(crate) fn set(ctx: Ctx) -> CtxGuard {
        CTX.with(|c| *c.borrow_mut() = Some(ctx));
        CtxGuard
    }
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CTX.with(|c| *c.borrow_mut() = None);
    }
}

// ---------------------------------------------------------------------------
// Schedule encoding
// ---------------------------------------------------------------------------

fn encode_schedule(choices: &[u32]) -> String {
    let body: Vec<String> = choices.iter().map(|c| c.to_string()).collect();
    body.join(".")
}

pub(crate) fn decode_schedule(s: &str) -> Vec<u32> {
    s.split('.')
        .filter(|p| !p.is_empty())
        .filter_map(|p| p.trim().parse().ok())
        .collect()
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

pub(crate) struct RunCfg {
    pub preemption_bound: u32,
    pub max_schedules: u64,
    pub max_steps: u64,
    pub trace_cap: usize,
    pub mutations: Vec<&'static str>,
    pub mode: StartMode,
}

/// Suppress panic output from model threads: their panics are captured and
/// reported through `ModelFailure` instead (and abort cascades would spam).
fn install_panic_hook() {
    use std::sync::OnceLock;
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if ctx().is_none() {
                prev(info);
            }
        }));
    });
}

pub(crate) fn payload_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

pub(crate) fn run(cfg: RunCfg, f: &dyn Fn()) -> Result<ModelReport, ModelFailure> {
    install_panic_hook();
    let mut mode = Mode::new(&cfg.mode);
    let mut schedules: u64 = 0;
    loop {
        schedules += 1;
        let state = ExecState {
            threads: vec![ThreadState {
                status: Status::Runnable,
                clock: VClock::default(),
                name: "main".to_string(),
                timed_out: false,
            }],
            active: 0,
            mode,
            choices: Vec::new(),
            trace: Vec::new(),
            trace_cap: cfg.trace_cap,
            objects: HashMap::new(),
            failure: None,
            mutations: cfg.mutations.clone(),
            preemptions: 0,
            preemption_bound: cfg.preemption_bound,
            steps: 0,
            max_steps: cfg.max_steps,
        };
        let shared = ExecShared::new(state);

        {
            let _ctx = CtxGuard::set(Ctx {
                exec: Arc::clone(&shared),
                tid: 0,
            });
            let result = panic::catch_unwind(AssertUnwindSafe(f));
            if let Err(p) = result {
                if !p.is::<ModelAbort>() {
                    shared.st().fail(payload_message(p.as_ref()));
                }
            }
            shared.finish_thread(0, None);
            shared.pump();
        }

        let (failure, next_mode) = {
            let mut st = shared.st();
            let failure = st.failure.take();
            let next_mode = std::mem::replace(
                &mut st.mode,
                Mode::Replay {
                    script: Vec::new(),
                    pos: 0,
                },
            );
            (failure, next_mode)
        };
        mode = next_mode;

        if let Some((message, schedule, trace)) = failure {
            return Err(ModelFailure {
                message,
                schedule,
                trace,
                schedules_explored: schedules,
            });
        }
        if schedules >= cfg.max_schedules {
            return Ok(ModelReport {
                schedules_explored: schedules,
                truncated: true,
            });
        }
        if !mode.advance() {
            return Ok(ModelReport {
                schedules_explored: schedules,
                truncated: false,
            });
        }
    }
}
