//! Criterion bench backing Table 7: community detection plus DSR queries
//! between community representatives.

use criterion::{criterion_group, criterion_main, Criterion};
use dsr_community::louvain;
use dsr_core::{DsrEngine, DsrIndex};
use dsr_datagen::social_network;
use dsr_partition::{MultilevelPartitioner, Partitioner};
use dsr_reach::LocalIndexKind;

fn bench_communities(c: &mut Criterion) {
    let social = social_network(2_000, 16, 10.0, 0.9, 0x77);
    let assignment = louvain(&social.graph, 1e-6);
    let by_size = assignment.by_size();
    let sources = assignment.members(by_size[0]);
    let targets = assignment.members(by_size[1]);
    let sources = &sources[..sources.len().min(100)];
    let targets = &targets[..targets.len().min(100)];
    let index = DsrIndex::build(
        &social.graph,
        MultilevelPartitioner::default().partition(&social.graph, 5),
        LocalIndexKind::Dfs,
    );

    let mut group = c.benchmark_group("table7_communities");
    group.sample_size(10);
    group.bench_function("louvain_detection", |b| {
        b.iter(|| louvain(&social.graph, 1e-6))
    });
    group.bench_function("community_pairs_100x100", |b| {
        let engine = DsrEngine::new(&index);
        b.iter(|| engine.set_reachability(sources, targets))
    });
    group.finish();
}

criterion_group!(benches, bench_communities);
criterion_main!(benches);
