//! Criterion bench backing Table 3: query latency of DSR vs. the Giraph
//! variants and the DSR-Fan baseline on a small-graph analogue.

use criterion::{criterion_group, criterion_main, Criterion};
use dsr_core::baselines::FanBaseline;
use dsr_core::{DsrEngine, DsrIndex};
use dsr_datagen::{dataset_by_name, random_query};
use dsr_giraph::{giraph_pp_set_reachability, giraph_set_reachability, GraphCentricVariant};
use dsr_partition::{MultilevelPartitioner, Partitioner};
use dsr_reach::LocalIndexKind;

fn bench_query_times(c: &mut Criterion) {
    let graph = dataset_by_name("NotreDame").unwrap().graph;
    let partitioning = MultilevelPartitioner::default().partition(&graph, 5);
    let query = random_query(&graph, 10, 10, 0x33);
    let index = DsrIndex::build(&graph, partitioning.clone(), LocalIndexKind::Dfs);
    let fan = FanBaseline::new(&graph, partitioning.clone());

    let mut group = c.benchmark_group("table3_efficiency");
    group.sample_size(10);
    group.bench_function("dsr_query_10x10", |b| {
        let engine = DsrEngine::new(&index);
        b.iter(|| engine.set_reachability(&query.sources, &query.targets))
    });
    group.bench_function("giraph_pp_query_10x10", |b| {
        b.iter(|| {
            giraph_pp_set_reachability(
                &graph,
                &partitioning,
                &query.sources,
                &query.targets,
                GraphCentricVariant::GiraphPlusPlus,
            )
        })
    });
    group.bench_function("giraph_query_10x10", |b| {
        b.iter(|| giraph_set_reachability(&graph, &partitioning, &query.sources, &query.targets))
    });
    group.bench_function("dsr_fan_query_10x10", |b| {
        b.iter(|| fan.set_reachability(&query.sources, &query.targets))
    });
    group.finish();
}

criterion_group!(benches, bench_query_times);
criterion_main!(benches);
