//! Criterion bench backing Figure 8: Giraph++ with and without the
//! equivalence-set optimization, plus plain Giraph.

use criterion::{criterion_group, criterion_main, Criterion};
use dsr_datagen::{dataset_by_name, random_query};
use dsr_giraph::{giraph_pp_set_reachability, giraph_set_reachability, GraphCentricVariant};
use dsr_partition::{MultilevelPartitioner, Partitioner};

fn bench_giraph_eq(c: &mut Criterion) {
    let graph = dataset_by_name("Stanford").unwrap().graph;
    let partitioning = MultilevelPartitioner::default().partition(&graph, 5);
    let query = random_query(&graph, 10, 10, 0x88);

    let mut group = c.benchmark_group("figure8_giraph_eq");
    group.sample_size(10);
    group.bench_function("giraph_pp", |b| {
        b.iter(|| {
            giraph_pp_set_reachability(
                &graph,
                &partitioning,
                &query.sources,
                &query.targets,
                GraphCentricVariant::GiraphPlusPlus,
            )
        })
    });
    group.bench_function("giraph_pp_weq", |b| {
        b.iter(|| {
            giraph_pp_set_reachability(
                &graph,
                &partitioning,
                &query.sources,
                &query.targets,
                GraphCentricVariant::GiraphPlusPlusWithEquivalence,
            )
        })
    });
    group.bench_function("giraph", |b| {
        b.iter(|| giraph_set_reachability(&graph, &partitioning, &query.sources, &query.targets))
    });
    group.finish();
}

criterion_group!(benches, bench_giraph_eq);
criterion_main!(benches);
