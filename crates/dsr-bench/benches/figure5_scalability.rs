//! Criterion bench backing Figure 5: DSR query latency as the number of
//! slaves grows (strong scaling) on the LiveJournal analogue.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsr_core::{DsrEngine, DsrIndex};
use dsr_datagen::{dataset_by_name, random_query};
use dsr_partition::{MultilevelPartitioner, Partitioner};
use dsr_reach::LocalIndexKind;

fn bench_strong_scaling(c: &mut Criterion) {
    let graph = dataset_by_name("LiveJ-68M").unwrap().graph;
    let query = random_query(&graph, 10, 10, 0xF5);
    let mut group = c.benchmark_group("figure5_scalability");
    group.sample_size(10);
    for slaves in [2usize, 4, 8] {
        let partitioning = MultilevelPartitioner::default().partition(&graph, slaves);
        let index = DsrIndex::build(&graph, partitioning, LocalIndexKind::Dfs);
        group.bench_with_input(
            BenchmarkId::new("dsr_query_10x10_slaves", slaves),
            &slaves,
            |b, _| {
                let engine = DsrEngine::new(&index);
                b.iter(|| engine.set_reachability(&query.sources, &query.targets))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_strong_scaling);
criterion_main!(benches);
