//! Criterion bench for the serving layer: batched vs. per-query execution
//! of a 10k-query Zipf-skewed stream, plus the cached `QueryService` paths.
//!
//! The comparison backing the batching claim: `batched_256` executes the
//! same 10,000 queries as `per_query` but amortizes the
//! scatter/exchange/gather protocol over 256-query chunks (and fuses the
//! per-slave local evaluation), so its wall-clock time and communication
//! volume drop correspondingly.

use dsr_sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dsr_core::{DsrEngine, DsrIndex, SetQuery};
use dsr_datagen::{query_stream, web_graph, ArrivalPattern, StreamConfig};
use dsr_partition::{MultilevelPartitioner, Partitioner};
use dsr_reach::LocalIndexKind;
use dsr_service::QueryService;

const NUM_QUERIES: usize = 10_000;
const BATCH: usize = 256;

fn bench_service_throughput(c: &mut Criterion) {
    let graph = web_graph(600, 4.0, 12, 0.7, 0xBE);
    let partitioning = MultilevelPartitioner::default().partition(&graph, 4);
    let index = Arc::new(DsrIndex::build(&graph, partitioning, LocalIndexKind::Dfs));
    let stream = query_stream(
        &graph,
        &StreamConfig {
            num_queries: NUM_QUERIES,
            num_sources: 10,
            num_targets: 10,
            distinct: 64,
            skew: 0.99,
            pattern: ArrivalPattern::ClosedLoop,
            seed: 0x7B,
        },
    );
    let queries: Vec<SetQuery> = stream
        .queries()
        .map(|q| SetQuery::new(q.sources.clone(), q.targets.clone()))
        .collect();

    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(3);
    group.bench_function("per_query_10k", |b| {
        let engine = DsrEngine::new(&index);
        b.iter(|| {
            for q in &queries {
                black_box(engine.set_reachability(&q.sources, &q.targets));
            }
        })
    });
    group.bench_function("batched_256_10k", |b| {
        let engine = DsrEngine::new(&index);
        b.iter(|| {
            for chunk in queries.chunks(BATCH) {
                black_box(engine.set_reachability_batch(chunk).expect("in-process"));
            }
        })
    });
    group.bench_function("service_cached_10k", |b| {
        // A fresh service per sample so every sample pays the same cold
        // misses; steady-state is all hits and would measure the hash map.
        b.iter_with_setup(
            || QueryService::new(Arc::clone(&index)),
            |service| {
                for q in &queries {
                    black_box(service.query(&q.sources, &q.targets));
                }
                service
            },
        )
    });
    group.bench_function("service_8_clients_10k", |b| {
        b.iter_with_setup(
            || QueryService::new(Arc::clone(&index)),
            |service| {
                dsr_sync::thread::scope(|scope| {
                    for client in 0..8 {
                        let service = &service;
                        let queries = &queries;
                        scope.spawn(move || {
                            for q in queries.iter().skip(client).step_by(8) {
                                black_box(service.query(&q.sources, &q.targets));
                            }
                        });
                    }
                });
                service
            },
        )
    });
    group.finish();
}

criterion_group!(benches, bench_service_throughput);
criterion_main!(benches);
