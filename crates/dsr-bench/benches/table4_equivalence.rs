//! Criterion bench backing Table 4: DSR query latency with and without the
//! equivalence-set optimization.

use criterion::{criterion_group, criterion_main, Criterion};
use dsr_core::{DsrEngine, DsrIndex};
use dsr_datagen::{dataset_by_name, random_query};
use dsr_partition::{MultilevelPartitioner, Partitioner};
use dsr_reach::LocalIndexKind;

fn bench_equivalence(c: &mut Criterion) {
    let graph = dataset_by_name("Stanford").unwrap().graph;
    let partitioning = MultilevelPartitioner::default().partition(&graph, 5);
    let query = random_query(&graph, 10, 10, 0x44);
    let opt = DsrIndex::build_with_options(&graph, partitioning.clone(), LocalIndexKind::Dfs, true);
    let non_opt = DsrIndex::build_with_options(&graph, partitioning, LocalIndexKind::Dfs, false);

    let mut group = c.benchmark_group("table4_equivalence");
    group.sample_size(10);
    group.bench_function("query_with_equivalence", |b| {
        let engine = DsrEngine::new(&opt);
        b.iter(|| engine.set_reachability(&query.sources, &query.targets))
    });
    group.bench_function("query_without_equivalence", |b| {
        let engine = DsrEngine::new(&non_opt);
        b.iter(|| engine.set_reachability(&query.sources, &query.targets))
    });
    group.finish();
}

criterion_group!(benches, bench_equivalence);
criterion_main!(benches);
