//! Criterion bench backing Figure 7: DSR query latency with the three local
//! reachability strategies (DFS, FERRARI, MS-BFS).

use criterion::{criterion_group, criterion_main, Criterion};
use dsr_core::{DsrEngine, DsrIndex};
use dsr_datagen::{dataset_by_name, random_query};
use dsr_partition::{MultilevelPartitioner, Partitioner};
use dsr_reach::LocalIndexKind;

fn bench_local_indexes(c: &mut Criterion) {
    let graph = dataset_by_name("LiveJ-68M").unwrap().graph;
    let partitioning = MultilevelPartitioner::default().partition(&graph, 5);
    let query = random_query(&graph, 100, 100, 0xF7);

    let mut group = c.benchmark_group("figure7_local_indexes");
    group.sample_size(10);
    for kind in [
        LocalIndexKind::Dfs,
        LocalIndexKind::Ferrari,
        LocalIndexKind::MsBfs,
    ] {
        let index = DsrIndex::build(&graph, partitioning.clone(), kind);
        group.bench_function(format!("query_100x100_{}", kind.name()), |b| {
            let engine = DsrEngine::new(&index);
            b.iter(|| engine.set_reachability(&query.sources, &query.targets))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_local_indexes);
criterion_main!(benches);
