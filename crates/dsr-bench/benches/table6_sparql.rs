//! Criterion bench backing Table 6: property-path query evaluation with the
//! DSR-backed resolver vs. the online-BFS baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use dsr_rdf::{
    datasets::path_predicates, evaluate, lubm_like_store, named_query, BfsPathResolver,
    DsrPathResolver,
};

fn bench_sparql(c: &mut Criterion) {
    let store = lubm_like_store(8, 0x61);
    let predicates = path_predicates(&store);
    let dsr = DsrPathResolver::new(&store, &predicates, 5);
    let bfs = BfsPathResolver::new(&store, &predicates);
    let l1 = named_query("L1").unwrap();

    let mut group = c.benchmark_group("table6_sparql");
    group.sample_size(10);
    group.bench_function("l1_with_dsr_paths", |b| {
        b.iter(|| evaluate(&store, &l1, &dsr))
    });
    group.bench_function("l1_with_bfs_paths", |b| {
        b.iter(|| evaluate(&store, &l1, &bfs))
    });
    group.finish();
}

criterion_group!(benches, bench_sparql);
criterion_main!(benches);
