//! Criterion bench backing Table 5: DSR query latency under hash vs.
//! multilevel (METIS-like) partitioning.

use criterion::{criterion_group, criterion_main, Criterion};
use dsr_core::{DsrEngine, DsrIndex};
use dsr_datagen::{dataset_by_name, random_query};
use dsr_partition::{HashPartitioner, MultilevelPartitioner, Partitioner};
use dsr_reach::LocalIndexKind;

fn bench_partitioning(c: &mut Criterion) {
    let graph = dataset_by_name("NotreDame").unwrap().graph;
    let query = random_query(&graph, 10, 10, 0x55);
    let hash_index = DsrIndex::build(
        &graph,
        HashPartitioner::default().partition(&graph, 5),
        LocalIndexKind::Dfs,
    );
    let ml_index = DsrIndex::build(
        &graph,
        MultilevelPartitioner::default().partition(&graph, 5),
        LocalIndexKind::Dfs,
    );

    let mut group = c.benchmark_group("table5_partitioning");
    group.sample_size(10);
    group.bench_function("query_hash_partitioning", |b| {
        let engine = DsrEngine::new(&hash_index);
        b.iter(|| engine.set_reachability(&query.sources, &query.targets))
    });
    group.bench_function("query_multilevel_partitioning", |b| {
        let engine = DsrEngine::new(&ml_index);
        b.iter(|| engine.set_reachability(&query.sources, &query.targets))
    });
    group.finish();
}

criterion_group!(benches, bench_partitioning);
criterion_main!(benches);
