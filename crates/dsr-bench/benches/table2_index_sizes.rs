//! Criterion bench backing Table 2: DSR index construction (the operation
//! whose output sizes the table reports) on a small-graph analogue.

use criterion::{criterion_group, criterion_main, Criterion};
use dsr_core::DsrIndex;
use dsr_datagen::dataset_by_name;
use dsr_partition::{MultilevelPartitioner, Partitioner};
use dsr_reach::LocalIndexKind;

fn bench_index_build(c: &mut Criterion) {
    let graph = dataset_by_name("Stanford").unwrap().graph;
    let partitioning = MultilevelPartitioner::default().partition(&graph, 5);
    let mut group = c.benchmark_group("table2_index_sizes");
    group.sample_size(10);
    group.bench_function("dsr_index_build_stanford_k5", |b| {
        b.iter(|| DsrIndex::build(&graph, partitioning.clone(), LocalIndexKind::Dfs))
    });
    group.finish();
}

criterion_group!(benches, bench_index_build);
criterion_main!(benches);
