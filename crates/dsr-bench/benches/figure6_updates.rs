//! Criterion bench backing Figure 6: the cost of an incremental 5% edge
//! insertion batch versus rebuilding the index from scratch.

use criterion::{criterion_group, criterion_main, Criterion};
use dsr_core::DsrIndex;
use dsr_datagen::dataset_by_name;
use dsr_graph::DiGraph;
use dsr_partition::{MultilevelPartitioner, Partitioner};
use dsr_reach::LocalIndexKind;

fn bench_updates(c: &mut Criterion) {
    let graph = dataset_by_name("Stanford").unwrap().graph;
    let edges = graph.edge_vec();
    let keep = (edges.len() as f64 * 0.95) as usize;
    let base = DiGraph::from_edges(graph.num_vertices(), &edges[..keep]);
    let partitioning = MultilevelPartitioner::default().partition(&graph, 5);
    let batch = edges[keep..].to_vec();

    let mut group = c.benchmark_group("figure6_updates");
    group.sample_size(10);
    group.bench_function("insert_5_percent_batch", |b| {
        b.iter_with_setup(
            || DsrIndex::build(&base, partitioning.clone(), LocalIndexKind::Dfs),
            |mut index| index.insert_edges(&batch),
        )
    });
    group.bench_function("full_rebuild", |b| {
        b.iter(|| DsrIndex::build(&graph, partitioning.clone(), LocalIndexKind::Dfs))
    });
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
