//! Plain-text table formatting for experiment output.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; the number of cells should match the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let columns = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < columns {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i >= widths.len() {
                    break;
                }
                line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("Demo", &["Graph", "Time (s)"]);
        t.row(vec!["Amazon".into(), "0.008".into()]);
        t.row(vec!["BerkStan-long-name".into(), "12.5".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("Amazon"));
        assert!(s.contains("BerkStan-long-name"));
        assert_eq!(t.num_rows(), 2);
        // Header and rows share alignment: every line containing data starts
        // at column 0 and the second column starts at the same offset.
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines.len() >= 4);
    }

    #[test]
    fn tolerates_ragged_rows() {
        let mut t = Table::new("Ragged", &["a", "b"]);
        t.row(vec!["only-one".into()]);
        let s = t.render();
        assert!(s.contains("only-one"));
    }
}
