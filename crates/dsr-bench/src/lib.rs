//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (Section 4).
//!
//! Each experiment lives in its own module under [`experiments`] and
//! exposes `run(fast) -> String`, returning the formatted table/series that
//! corresponds to the paper's artifact. The `experiments` binary drives
//! them from the command line:
//!
//! ```text
//! cargo run -p dsr-bench --release --bin experiments -- all
//! cargo run -p dsr-bench --release --bin experiments -- table3 figure5
//! cargo run -p dsr-bench --release --bin experiments -- --fast all
//! ```
//!
//! The Criterion benchmarks under `benches/` measure the latency-critical
//! kernel of each experiment (index build, query evaluation, update step)
//! so regressions show up in `cargo bench`.
//!
//! Absolute numbers differ from the paper (the substrate is a simulated
//! cluster on synthetic analogues, see DESIGN.md); the comparisons within
//! each table — who wins, by roughly what factor, where the crossovers are
//! — are the reproduction target, and EXPERIMENTS.md records them.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod json;
pub mod table;

use std::time::{Duration, Instant};

pub use table::Table;

/// Times a closure, returning its result and the elapsed wall-clock time.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Formats a duration in seconds with millisecond resolution, the unit the
/// paper's tables use.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a byte count in megabytes.
pub fn megabytes(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

/// Geometric mean of a slice of durations (used by Table 6).
pub fn geometric_mean(durations: &[Duration]) -> f64 {
    if durations.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = durations
        .iter()
        .map(|d| d.as_secs_f64().max(1e-9).ln())
        .sum();
    (log_sum / durations.len() as f64).exp()
}

/// The experiment identifiers accepted by the binary, in paper order,
/// followed by the beyond-the-paper serving experiments.
pub const EXPERIMENT_IDS: [&str; 13] = [
    "table2",
    "table3",
    "figure5",
    "figure6",
    "figure7",
    "table4",
    "figure8",
    "table5",
    "table6",
    "table7",
    "throughput",
    "updates",
    "mixed",
];

/// Runs one experiment by id. `fast` shrinks datasets/steps so the whole
/// suite finishes in roughly a minute (used by tests and CI).
pub fn run_experiment(id: &str, fast: bool) -> Option<String> {
    let out = match id {
        "table2" => experiments::table2::run(fast),
        "table3" => experiments::table3::run(fast),
        "table4" => experiments::table4::run(fast),
        "table5" => experiments::table5::run(fast),
        "table6" => experiments::table6::run(fast),
        "table7" => experiments::table7::run(fast),
        "figure5" => experiments::figure5::run(fast),
        "figure6" => experiments::figure6::run(fast),
        "figure7" => experiments::figure7::run(fast),
        "figure8" => experiments::figure8::run(fast),
        "throughput" => experiments::throughput::run(fast),
        "updates" => experiments::updates::run(fast),
        "mixed" => experiments::mixed::run(fast),
        _ => return None,
    };
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers() {
        let (v, d) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
        assert_eq!(secs(Duration::from_millis(1500)), "1.500");
        assert_eq!(megabytes(1024 * 1024), "1.0");
        let gm = geometric_mean(&[Duration::from_secs(1), Duration::from_secs(4)]);
        assert!((gm - 2.0).abs() < 1e-6);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run_experiment("table99", true).is_none());
    }
}
