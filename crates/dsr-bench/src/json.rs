//! Minimal JSON value parser for the bench-regression gate.
//!
//! The `BENCH_*.json` artifacts are written by hand-rolled formatters (the
//! build container has no serde_json), so the comparison side needs its
//! own reader. This is a small strict recursive-descent parser covering
//! exactly the JSON subset those files use: objects, arrays, strings with
//! `\"`-style escapes, numbers, booleans and null.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`; the counters we compare are integers
    /// well inside the exact range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order is irrelevant for comparison, so a map).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.get(key),
            _ => None,
        }
    }

    /// The string value of the `"name"` member, if any — the identity used
    /// to match array elements across two files.
    pub fn name(&self) -> Option<&str> {
        match self.get("name") {
            Some(Json::Str(name)) => Some(name),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at offset {}, found {:?}",
            byte as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at offset {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    other => return Err(format!("unsupported escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the files are valid UTF-8).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected ',' or ']', found {other:?}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_shape() {
        let doc = parse(
            r#"{
            "experiment": "throughput",
            "fast": true,
            "graph": {"name": "web-3k", "vertices": 800},
            "speedup": {"batched_vs_per_query": 1.285},
            "modes": [
                {"name": "per_query", "rounds": 1536, "bytes": 1250172},
                {"name": "batched", "rounds": 24, "bytes": 1244124.0}
            ]
        }"#,
        )
        .expect("parses");
        assert_eq!(doc.get("experiment"), Some(&Json::Str("throughput".into())));
        assert_eq!(doc.get("fast"), Some(&Json::Bool(true)));
        let modes = match doc.get("modes") {
            Some(Json::Arr(modes)) => modes,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(modes[0].name(), Some("per_query"));
        assert_eq!(modes[1].get("rounds"), Some(&Json::Num(24.0)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn strings_with_escapes() {
        let doc = parse(r#"{"k": "a\"b\\c\nd"}"#).expect("parses");
        assert_eq!(doc.get("k"), Some(&Json::Str("a\"b\\c\nd".to_string())));
    }
}
