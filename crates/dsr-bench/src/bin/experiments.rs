//! Command-line driver that regenerates every table and figure of the
//! paper's evaluation.
//!
//! ```text
//! experiments [--fast] all
//! experiments [--fast] table2 table3 figure5 ...
//! experiments --list
//! ```

use std::process::ExitCode;

use dsr_bench::{run_experiment, EXPERIMENT_IDS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }

    let mut fast = false;
    let mut requested: Vec<String> = Vec::new();
    for arg in &args {
        match arg.as_str() {
            "--fast" => fast = true,
            "--list" => {
                for id in EXPERIMENT_IDS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            "all" => requested.extend(EXPERIMENT_IDS.iter().map(|s| s.to_string())),
            other => requested.push(other.to_string()),
        }
    }
    if requested.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }

    for id in requested {
        match run_experiment(&id, fast) {
            Some(output) => {
                println!("{output}");
            }
            None => {
                eprintln!("unknown experiment '{id}'; use --list to see valid ids");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn print_usage() {
    eprintln!("usage: experiments [--fast] (all | <experiment id>...)");
    eprintln!("       experiments --list");
    eprintln!();
    eprintln!("experiment ids: {}", EXPERIMENT_IDS.join(", "));
}
