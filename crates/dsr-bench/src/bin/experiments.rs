//! Command-line driver that regenerates every table and figure of the
//! paper's evaluation.
//!
//! ```text
//! experiments [--fast] all
//! experiments [--fast] table2 table3 figure5 ...
//! experiments --list
//! ```
//!
//! Each experiment runs under `catch_unwind`: a failed internal assertion
//! (e.g. a cross-backend byte-identity check) is reported, the remaining
//! experiments still run, and the process **exits nonzero** — so CI can
//! never upload artifacts from a run whose invariants did not hold. The
//! `BENCH_*.json` writers are atomic (temp file + rename) for the same
//! reason: a partial JSON never appears at the final path.

use std::process::ExitCode;

use dsr_bench::{run_experiment, EXPERIMENT_IDS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }

    let mut fast = false;
    let mut requested: Vec<String> = Vec::new();
    for arg in &args {
        match arg.as_str() {
            "--fast" => fast = true,
            "--list" => {
                for id in EXPERIMENT_IDS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            "all" => requested.extend(EXPERIMENT_IDS.iter().map(|s| s.to_string())),
            other => requested.push(other.to_string()),
        }
    }
    if requested.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }

    let mut failures: Vec<String> = Vec::new();
    for id in requested {
        // A panicking experiment (failed byte-identity assert, poisoned
        // invariant) must not abort the whole run silently-successfully:
        // record it, keep going, exit nonzero at the end.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_experiment(&id, fast)));
        match outcome {
            Ok(Some(output)) => println!("{output}"),
            Ok(None) => {
                eprintln!("unknown experiment '{id}'; use --list to see valid ids");
                return ExitCode::FAILURE;
            }
            Err(panic) => {
                let message = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic payload>");
                eprintln!("experiment '{id}' FAILED: {message}");
                failures.push(id);
            }
        }
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "{} experiment(s) failed: {}",
            failures.len(),
            failures.join(", ")
        );
        ExitCode::FAILURE
    }
}

fn print_usage() {
    eprintln!("usage: experiments [--fast] (all | <experiment id>...)");
    eprintln!("       experiments --list");
    eprintln!();
    eprintln!("experiment ids: {}", EXPERIMENT_IDS.join(", "));
}
