//! Bench-regression gate: compares freshly generated `BENCH_*.json`
//! artifacts against the committed baselines and **fails on any growth of
//! a deterministic counter** (rounds, messages, wire bytes, refreshed
//! summaries, …). Timing fields (seconds, QPS, speedups) are
//! informational and never compared — wall-clock noise must not flake CI,
//! but a protocol change that silently ships more bytes must fail it.
//!
//! ```text
//! bench_diff --baseline . --fresh "$DSR_BENCH_DIR" [FILE...]
//! ```
//!
//! Default files: `BENCH_throughput.json`, `BENCH_updates.json`,
//! `BENCH_mixed.json`. Array
//! elements are matched by their `"name"` member (so adding a new mode is
//! not a regression), and the `service_concurrent` / `service_batched_8` /
//! `service_batched_64` modes are skipped entirely — their counters depend
//! on cache races and batch-forming windows between client threads. The
//! flush-driven `service_batched_replay*` modes stay fully gated.
//!
//! A counter that *shrinks* is reported as an improvement with a reminder
//! to refresh the committed baseline, and exits 0.
//!
//! Structural drift cannot evade the gate: baseline counters or named
//! sections missing from the fresh output are reported, and the run fails
//! if fewer than `--min-compared` counters (default 30) were actually
//! compared — renaming every mode would otherwise reduce the gate to a
//! vacuous "nothing grew".

use std::path::Path;
use std::process::ExitCode;

use dsr_bench::json::{parse, Json};

/// Counter keys that must be bit-for-bit reproducible in `--fast` runs.
/// Everything else (timings, ratios) is informational.
const DETERMINISTIC_COUNTERS: [&str; 29] = [
    "rounds",
    "messages",
    "bytes",
    "update_rounds",
    "update_messages",
    "update_bytes",
    "refreshed_summaries",
    "patched_compounds",
    "summary_messages",
    "summary_bytes",
    "queries",
    "ops",
    "batches",
    // Batch-former fusion counters: deterministic in the flush-driven
    // replay modes (the threaded modes are skipped wholesale below).
    "fused_batches",
    "fused_queries",
    "executed",
    "late_hits",
    // Failover counters: gated at zero — a fault-free bench run that
    // reroutes, marks a suspect, or resyncs is a correctness regression in
    // the replicated transport, not benchmark noise.
    "failover_retries",
    "failover_suspects",
    "failover_resyncs",
    // Mixed-tenant snapshot-serving counters: a deterministic replay, so
    // any movement is a protocol/cache/MVCC behavior change. Mismatch
    // counters are gated at zero; per-namespace hit counters and
    // generation churn must not drift either.
    "results",
    "oracle_mismatches",
    "pinned_replay_mismatches",
    "generations_created",
    "generations_reclaimed",
    "latest_hits",
    "pinned_hits",
    "hits_after_updates",
    "cache_misses",
];

/// Array elements (matched by `"name"`) whose counters are scheduling-
/// dependent and therefore never compared: how many cache misses meet in
/// one forming window depends on thread interleaving.
const NONDETERMINISTIC_SECTIONS: [&str; 3] = [
    "service_concurrent",
    "service_batched_8",
    "service_batched_64",
];

struct Report {
    regressions: Vec<String>,
    improvements: Vec<String>,
    /// Baseline counters/sections the fresh output no longer has.
    missing: Vec<String>,
    compared: usize,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_dir = ".".to_string();
    let mut fresh_dir = ".".to_string();
    let mut min_compared = 30usize;
    let mut files: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--baseline" => match iter.next() {
                Some(dir) => baseline_dir = dir.clone(),
                None => return usage("--baseline needs a directory"),
            },
            "--fresh" => match iter.next() {
                Some(dir) => fresh_dir = dir.clone(),
                None => return usage("--fresh needs a directory"),
            },
            "--min-compared" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => min_compared = n,
                None => return usage("--min-compared needs an integer"),
            },
            "--help" | "-h" => {
                return usage("");
            }
            other => files.push(other.to_string()),
        }
    }
    if files.is_empty() {
        files = vec![
            "BENCH_throughput.json".to_string(),
            "BENCH_updates.json".to_string(),
            "BENCH_mixed.json".to_string(),
        ];
    }

    let mut report = Report {
        regressions: Vec::new(),
        improvements: Vec::new(),
        missing: Vec::new(),
        compared: 0,
    };
    for file in &files {
        let baseline_path = Path::new(&baseline_dir).join(file);
        let fresh_path = Path::new(&fresh_dir).join(file);
        let baseline = match load(&baseline_path) {
            Ok(doc) => doc,
            Err(err) => {
                eprintln!("bench_diff: {err}");
                return ExitCode::FAILURE;
            }
        };
        let fresh = match load(&fresh_path) {
            Ok(doc) => doc,
            Err(err) => {
                eprintln!("bench_diff: {err}");
                return ExitCode::FAILURE;
            }
        };
        compare(&baseline, &fresh, file, &mut report);
    }

    println!(
        "bench_diff: {} deterministic counters compared across {} file(s)",
        report.compared,
        files.len()
    );
    for line in &report.improvements {
        println!("  IMPROVED  {line}");
    }
    if !report.improvements.is_empty() {
        println!("  (counters shrank — consider refreshing the committed BENCH_*.json baselines)");
    }
    for line in &report.missing {
        println!("  MISSING   {line}");
    }
    for line in &report.regressions {
        println!("  REGRESSED {line}");
    }
    let mut failed = false;
    if !report.regressions.is_empty() {
        eprintln!(
            "bench_diff: {} counter(s) grew vs the committed baseline; either fix the \
             regression or update the BENCH_*.json baselines in the same commit with an \
             explanation",
            report.regressions.len()
        );
        failed = true;
    }
    if report.compared < min_compared {
        // Renamed modes / dropped sections silently shrink the comparison
        // set; a vacuous "nothing grew" must not pass.
        eprintln!(
            "bench_diff: only {} counter(s) compared (< {min_compared}); the fresh output's \
             structure drifted from the baselines — regenerate and commit new BENCH_*.json \
             baselines (or lower --min-compared deliberately)",
            report.compared
        );
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("  OK — no counter grew");
        ExitCode::SUCCESS
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("bench_diff: {err}");
    }
    eprintln!("usage: bench_diff --baseline DIR --fresh DIR [--min-compared N] [FILE...]");
    eprintln!("       (default files: BENCH_throughput.json BENCH_updates.json BENCH_mixed.json)");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn load(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|err| format!("cannot read {}: {err}", path.display()))?;
    parse(&text).map_err(|err| format!("{}: {err}", path.display()))
}

/// Walks baseline and fresh in lockstep, comparing deterministic counters
/// wherever both sides have them.
fn compare(baseline: &Json, fresh: &Json, path: &str, report: &mut Report) {
    match (baseline, fresh) {
        (Json::Obj(base_members), Json::Obj(_)) => {
            if let Some(name) = baseline.name() {
                if NONDETERMINISTIC_SECTIONS.contains(&name) {
                    return;
                }
            }
            for (key, base_value) in base_members {
                let child_path = format!("{path}.{key}");
                let Some(fresh_value) = fresh.get(key) else {
                    // A removed field is structural drift: surface it, and
                    // let the --min-compared floor catch wholesale loss.
                    if DETERMINISTIC_COUNTERS.contains(&key.as_str()) {
                        report.missing.push(child_path);
                    }
                    continue;
                };
                if let (Json::Num(a), Json::Num(b)) = (base_value, fresh_value) {
                    if DETERMINISTIC_COUNTERS.contains(&key.as_str()) {
                        report.compared += 1;
                        if b > a {
                            report
                                .regressions
                                .push(format!("{child_path}: {a} -> {b} (+{})", b - a));
                        } else if b < a {
                            report
                                .improvements
                                .push(format!("{child_path}: {a} -> {b} (-{})", a - b));
                        }
                    }
                    continue;
                }
                compare(base_value, fresh_value, &child_path, report);
            }
        }
        (Json::Arr(base_items), Json::Arr(fresh_items)) => {
            for (index, base_item) in base_items.iter().enumerate() {
                // Match by "name" when present (mode/workload lists), so
                // reordering or inserting a mode cannot misattribute
                // counters; fall back to positional matching.
                let (label, fresh_item) = match base_item.name() {
                    Some(name) => (
                        format!("{path}[{name}]"),
                        fresh_items.iter().find(|item| item.name() == Some(name)),
                    ),
                    None => (format!("{path}[{index}]"), fresh_items.get(index)),
                };
                match fresh_item {
                    Some(fresh_item) => compare(base_item, fresh_item, &label, report),
                    // A baseline mode/workload the fresh run no longer
                    // emits: structural drift, surfaced (floor enforces).
                    None => report.missing.push(label),
                }
            }
        }
        _ => {}
    }
}
