//! One module per table/figure of the paper's evaluation.

pub mod common;
pub mod figure5;
pub mod figure6;
pub mod figure7;
pub mod figure8;
pub mod mixed;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod throughput;
pub mod updates;
