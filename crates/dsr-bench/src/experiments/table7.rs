//! Table 7 — community connectedness via DSR (Section 4.5.B).
//!
//! Communities are detected on the social-graph analogues with the Louvain
//! method; the two largest communities provide the source and target
//! representatives (10, 100 and 1000 members per side), and DSR reports all
//! reachable pairs between them together with the query time.
//!
//! Reproduced shape: the number of reachable pairs grows roughly
//! quadratically with the representative count while the query time grows
//! far more slowly (the benefit of evaluating the whole set at once).

use dsr_community::louvain;
use dsr_core::DsrEngine;
use dsr_datagen::social_network;
use dsr_graph::VertexId;

use crate::experiments::common::{self, DEFAULT_SLAVES};
use crate::{secs, time, Table};

/// Runs the experiment and renders one table per social graph.
pub fn run(fast: bool) -> String {
    let mut out = String::new();
    let configs: Vec<(&str, usize, usize, f64)> = if fast {
        vec![("LiveJ-68M analogue", 2_000, 16, 10.0)]
    } else {
        vec![
            ("LiveJ-68M analogue", 8_000, 24, 10.0),
            ("Twitter-1.4B analogue", 12_000, 32, 14.0),
        ]
    };
    let sizes: Vec<usize> = if fast {
        vec![10, 100]
    } else {
        vec![10, 100, 1000]
    };

    for (name, vertices, communities, degree) in configs {
        let social = social_network(vertices, communities, degree, 0.9, 0x77);
        let assignment = louvain(&social.graph, 1e-6);
        let by_size = assignment.by_size();
        let (c1, c2) = (by_size[0], by_size[1]);
        let members1 = assignment.members(c1);
        let members2 = assignment.members(c2);

        let index = common::build_dsr(&social.graph, DEFAULT_SLAVES);
        let engine = DsrEngine::new(&index);

        let mut table = Table::new(
            &format!(
                "Table 7: Community connectedness — {name} (#communities detected: {})",
                assignment.num_communities
            ),
            &["|S|x|T|", "Query time (s)", "#Pairs"],
        );
        for &size in &sizes {
            let take1 = size.min(members1.len());
            let take2 = size.min(members2.len());
            let sources: Vec<VertexId> = members1[..take1].to_vec();
            let targets: Vec<VertexId> = members2[..take2].to_vec();
            let (outcome, elapsed) = time(|| engine.set_reachability(&sources, &targets));
            table.row(vec![
                format!("{}x{}", take1, take2),
                secs(elapsed),
                outcome.pairs.len().to_string(),
            ]);
        }
        out.push_str(&table.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_produces_rows() {
        let out = run(true);
        assert!(out.contains("Table 7"));
        assert!(out.contains("#Pairs"));
    }
}
