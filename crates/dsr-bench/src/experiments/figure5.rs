//! Figure 5 — scalability evaluation on the large-graph analogues.
//!
//! For each of the four large datasets (LiveJournal, Freebase, Twitter and
//! LUBM analogues) the experiment produces the four series of the paper's
//! figure:
//!
//! * (a/e/i/m) **strong scaling** — query time while the number of slaves
//!   grows from 2 to 8 over the full graph,
//! * (b/f/j/n) **communication cost** — bytes exchanged per query for DSR
//!   and the Giraph variants,
//! * (c/g/k/o) **weak scaling** — query time when both the data size and
//!   the number of slaves grow proportionally,
//! * (d/h/l/p) **query-size robustness** — query time for 10×10, 50×50 and
//!   100×100 queries on the full graph.
//!
//! Reproduced shape: DSR stays one or more orders of magnitude below the
//! Giraph variants in both time and communication, and its query time is
//! essentially flat in the number of slaves and in the query size.

use dsr_core::DsrEngine;
use dsr_giraph::{
    giraph_pp_set_reachability, giraph_pp_weq_with_summaries, giraph_set_reachability,
    GraphCentricVariant,
};
use dsr_graph::DiGraph;

use crate::experiments::common;
use crate::{secs, time, Table};

/// Runs the experiment and renders all four sub-figures per dataset.
pub fn run(fast: bool) -> String {
    let mut out = String::new();
    let datasets = common::large_datasets(fast);
    let slave_counts: Vec<usize> = if fast {
        vec![2, 4]
    } else {
        vec![2, 3, 4, 5, 6, 7, 8]
    };
    let query_sizes: Vec<usize> = if fast {
        vec![10, 50]
    } else {
        vec![10, 50, 100]
    };

    for name in datasets {
        let graph = common::dataset(name);
        out.push_str(&strong_scaling_and_comm(name, &graph, &slave_counts, fast));
        out.push_str(&weak_scaling(name, &graph, &slave_counts));
        out.push_str(&query_size_robustness(name, &graph, &query_sizes));
    }
    out
}

fn strong_scaling_and_comm(
    name: &str,
    graph: &DiGraph,
    slave_counts: &[usize],
    fast: bool,
) -> String {
    let mut table = Table::new(
        &format!("Figure 5 (a/b-style): strong scaling and communication — {name}"),
        &[
            "#Slaves",
            "DSR time (s)",
            "DSR comm (KB)",
            "Giraph++ time (s)",
            "Giraph++ comm (KB)",
            "Giraph++wEq time (s)",
            "Giraph++wEq comm (KB)",
            "Giraph time (s)",
            "Giraph comm (KB)",
        ],
    );
    for &k in slave_counts {
        let partitioning = common::partition(graph, k);
        let query = common::standard_query(graph, 10, 10, 0xF5);
        let index =
            dsr_core::DsrIndex::build(graph, partitioning.clone(), dsr_reach::LocalIndexKind::Dfs);
        let engine = DsrEngine::new(&index);
        let (dsr, dsr_time) = time(|| engine.set_reachability(&query.sources, &query.targets));
        let (gpp, gpp_time) = time(|| {
            giraph_pp_set_reachability(
                graph,
                &partitioning,
                &query.sources,
                &query.targets,
                GraphCentricVariant::GiraphPlusPlus,
            )
        });
        let (gppeq, gppeq_time) = time(|| {
            giraph_pp_weq_with_summaries(
                graph,
                &partitioning,
                &index.summaries,
                &query.sources,
                &query.targets,
            )
        });
        let (giraph_cells, giraph_time_cell) = if fast && graph.num_edges() > 80_000 {
            (("n/a".to_string(), "n/a".to_string()), "n/a".to_string())
        } else {
            let (g, g_time) = time(|| {
                giraph_set_reachability(graph, &partitioning, &query.sources, &query.targets)
            });
            assert_eq!(dsr.pairs, g.pairs);
            (
                (format!("{:.1}", g.kilobytes()), secs(g_time)),
                secs(g_time),
            )
        };
        assert_eq!(dsr.pairs, gpp.pairs);
        assert_eq!(dsr.pairs, gppeq.pairs);
        let _ = giraph_time_cell;
        table.row(vec![
            k.to_string(),
            secs(dsr_time),
            format!("{:.1}", dsr.bytes as f64 / 1024.0),
            secs(gpp_time),
            format!("{:.1}", gpp.kilobytes()),
            secs(gppeq_time),
            format!("{:.1}", gppeq.kilobytes()),
            giraph_cells.1,
            giraph_cells.0,
        ]);
    }
    table.render()
}

fn weak_scaling(name: &str, graph: &DiGraph, slave_counts: &[usize]) -> String {
    let mut table = Table::new(
        &format!("Figure 5 (c-style): weak scaling — {name}"),
        &["#Slaves [%Data]", "DSR time (s)", "Giraph++ time (s)"],
    );
    let all_edges = graph.edge_vec();
    let max_slaves = *slave_counts.last().unwrap_or(&2);
    for &k in slave_counts {
        // Scale the data proportionally to the number of slaves.
        let fraction = k as f64 / max_slaves as f64;
        let take = (all_edges.len() as f64 * fraction) as usize;
        let sub = DiGraph::from_edges(graph.num_vertices(), &all_edges[..take]);
        let partitioning = common::partition(&sub, k);
        let query = common::standard_query(&sub, 10, 10, 0xF5);
        let index =
            dsr_core::DsrIndex::build(&sub, partitioning.clone(), dsr_reach::LocalIndexKind::Dfs);
        let engine = DsrEngine::new(&index);
        let (dsr, dsr_time) = time(|| engine.set_reachability(&query.sources, &query.targets));
        let (gpp, gpp_time) = time(|| {
            giraph_pp_set_reachability(
                &sub,
                &partitioning,
                &query.sources,
                &query.targets,
                GraphCentricVariant::GiraphPlusPlus,
            )
        });
        assert_eq!(dsr.pairs, gpp.pairs);
        table.row(vec![
            format!("{k} [{:.0}%]", fraction * 100.0),
            secs(dsr_time),
            secs(gpp_time),
        ]);
    }
    table.render()
}

fn query_size_robustness(name: &str, graph: &DiGraph, query_sizes: &[usize]) -> String {
    let mut table = Table::new(
        &format!("Figure 5 (d-style): query-size robustness — {name}"),
        &["|S|x|T|", "DSR time (s)", "#pairs"],
    );
    let partitioning = common::partition(graph, common::DEFAULT_SLAVES);
    let index = dsr_core::DsrIndex::build(graph, partitioning, dsr_reach::LocalIndexKind::Dfs);
    let engine = DsrEngine::new(&index);
    for &size in query_sizes {
        let query = common::standard_query(graph, size, size, 0xD5);
        let (out, elapsed) = time(|| engine.set_reachability(&query.sources, &query.targets));
        table.row(vec![
            query.label(),
            secs(elapsed),
            out.pairs.len().to_string(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_produces_all_series() {
        let out = run(true);
        assert!(out.contains("strong scaling"));
        assert!(out.contains("weak scaling"));
        assert!(out.contains("query-size robustness"));
    }
}
