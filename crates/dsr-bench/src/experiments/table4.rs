//! Table 4 — the equivalence-sets optimization in DSR.
//!
//! For the small-graph analogues the experiment compares the DSR index
//! built *with* and *without* the equivalence-set optimization
//! (Definition 5): query time for a 10×10 query and the boundary-graph
//! sizes, i.e. the number of forward/backward vertices the boundary graphs
//! contain (concrete boundaries without the optimization, equivalence
//! classes with it).
//!
//! Reproduced shape: the optimization shrinks the forward/backward vertex
//! counts by one to two orders of magnitude on the web-graph analogues and
//! never makes queries slower.

use dsr_core::{DsrEngine, DsrIndex};
use dsr_reach::LocalIndexKind;

use crate::experiments::common::{self, DEFAULT_SLAVES};
use crate::{secs, time, Table};

/// Runs the experiment and renders the table.
pub fn run(fast: bool) -> String {
    let mut table = Table::new(
        "Table 4: Equivalence-sets optimization in DSR",
        &[
            "Graph",
            "Non-Opt time (s)",
            "Opt time (s)",
            "Non-Opt #fwd;#bwd",
            "Opt #fwd;#bwd",
        ],
    );
    for name in common::small_datasets(fast) {
        let graph = common::dataset(name);
        let partitioning = common::partition(&graph, DEFAULT_SLAVES);
        let query = common::standard_query(&graph, 10, 10, 0x44);

        let non_opt =
            DsrIndex::build_with_options(&graph, partitioning.clone(), LocalIndexKind::Dfs, false);
        let opt = DsrIndex::build_with_options(&graph, partitioning, LocalIndexKind::Dfs, true);

        let (non_opt_pairs, non_opt_time) =
            time(|| DsrEngine::new(&non_opt).set_reachability(&query.sources, &query.targets));
        let (opt_pairs, opt_time) =
            time(|| DsrEngine::new(&opt).set_reachability(&query.sources, &query.targets));
        assert_eq!(
            non_opt_pairs.pairs, opt_pairs.pairs,
            "{name}: optimization must not change results"
        );

        table.row(vec![
            name.to_string(),
            secs(non_opt_time),
            secs(opt_time),
            format!(
                "{}; {}",
                non_opt.stats.total_forward_classes, non_opt.stats.total_backward_classes
            ),
            format!(
                "{}; {}",
                opt.stats.total_forward_classes, opt.stats.total_backward_classes
            ),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_produces_rows_and_optimization_reduces_classes() {
        let out = run(true);
        assert!(out.contains("Table 4"));
        assert!(out.contains("Stanford"));
    }
}
