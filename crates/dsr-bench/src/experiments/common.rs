//! Helpers shared by the experiment modules.

use dsr_core::DsrIndex;
use dsr_datagen::{dataset_by_name, random_query, QueryWorkload};
use dsr_graph::DiGraph;
use dsr_partition::{MultilevelPartitioner, Partitioner, Partitioning};
use dsr_reach::LocalIndexKind;

/// Number of slave partitions used by the fixed-cluster experiments
/// (the paper uses "6 nodes, i.e. 5 slaves and 1 master").
pub const DEFAULT_SLAVES: usize = 5;

/// METIS-like partitioning of a dataset graph into `k` parts.
pub fn partition(graph: &DiGraph, k: usize) -> Partitioning {
    MultilevelPartitioner::default().partition(graph, k)
}

/// Builds a DSR index over a dataset graph with the default (DFS) local
/// strategy.
pub fn build_dsr(graph: &DiGraph, k: usize) -> DsrIndex {
    DsrIndex::build(graph, partition(graph, k), LocalIndexKind::Dfs)
}

/// Loads a named dataset analogue, panicking on unknown names (experiment
/// modules only use names from `dsr_datagen::DATASET_NAMES`).
pub fn dataset(name: &str) -> DiGraph {
    dataset_by_name(name)
        .unwrap_or_else(|| panic!("unknown dataset {name}"))
        .graph
}

/// The standard 10×10 random query of Section 4.1 (seeded per dataset so
/// reruns are identical).
pub fn standard_query(graph: &DiGraph, sources: usize, targets: usize, seed: u64) -> QueryWorkload {
    random_query(graph, sources, targets, seed)
}

/// The small-graph dataset list, shortened in fast mode.
pub fn small_datasets(fast: bool) -> Vec<&'static str> {
    if fast {
        vec!["NotreDame", "Stanford"]
    } else {
        dsr_datagen::datasets::SMALL_DATASET_NAMES.to_vec()
    }
}

/// The large-graph dataset list, shortened in fast mode.
pub fn large_datasets(fast: bool) -> Vec<&'static str> {
    if fast {
        vec!["LiveJ-68M"]
    } else {
        dsr_datagen::datasets::LARGE_DATASET_NAMES.to_vec()
    }
}

/// Writes a `BENCH_*.json` artifact **atomically** into `$DSR_BENCH_DIR`
/// (or the working directory): the content goes to a `.tmp` sibling first
/// and is renamed into place, so a run that dies mid-experiment can never
/// leave a truncated JSON at the final path for CI to upload.
pub fn write_bench_json(file_name: &str, json: &str) -> std::io::Result<String> {
    let dir = std::env::var("DSR_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join(file_name);
    let tmp = std::path::Path::new(&dir).join(format!("{file_name}.tmp"));
    std::fs::write(&tmp, json)?;
    std::fs::rename(&tmp, &path)?;
    Ok(path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_consistent_objects() {
        let g = dataset("NotreDame");
        let p = partition(&g, 3);
        assert_eq!(p.num_partitions, 3);
        let q = standard_query(&g, 10, 10, 1);
        assert_eq!(q.num_comparisons(), 100);
        let index = build_dsr(&g, 2);
        assert_eq!(index.num_partitions(), 2);
        assert_eq!(small_datasets(true).len(), 2);
        assert!(!large_datasets(false).is_empty());
    }
}
