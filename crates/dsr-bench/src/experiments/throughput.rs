//! Serving-layer throughput experiment.
//!
//! Not a table of the paper — the paper stops at per-query latency — but
//! the direct consequence of its claim: with communication bounded at 3
//! rounds per query, the way to serve heavy traffic is to amortize those
//! rounds across a *batch* of queries and to cache repeated answers. This
//! experiment replays a Zipf-skewed query stream (see
//! [`dsr_datagen::workload::query_stream`]) in five execution modes over
//! the same index:
//!
//! 1. `per_query` — the historical one-protocol-run-per-query path,
//! 2. `batched` — [`DsrEngine::set_reachability_batch`] over fixed-size
//!    chunks (3 communication rounds per chunk instead of per query),
//! 3. `batched_wire` — the same batched runs over the serializing
//!    [`WireTransport`]: every message wire-encoded, shipped through OS
//!    pipes and decoded, so the mode measures the overhead of a real byte
//!    substrate (and its reported bytes are *measured*, not estimated),
//! 4. `batched_tcp` — the same batched runs over a loopback
//!    [`TcpTransport`] cluster: every frame
//!    takes the master → worker → worker → master route over real
//!    sockets, asserting the deployment backend stays byte-identical,
//! 5. `service_cached` — a [`QueryService`] with its LRU result cache,
//! 6. `service_concurrent` — the same service hammered by 8 closed-loop
//!    client threads,
//! 7. `service_batched_replay` (plus `_wire` / `_tcp` variants) — a
//!    deterministic replay of 64 virtual clients through the service's
//!    batch former: each wave submits 64 queries, flushes, and waits, so
//!    every wave's cache misses fuse into one shared protocol run. Being
//!    single-threaded, its counters are bit-reproducible and asserted
//!    byte-identical across all three transports — the `bench_diff`
//!    regression gate rides on them,
//! 8. `service_batched_8` / `service_batched_64` — the batch former under
//!    real closed-loop client threads, with p50/p99 per-query latency.
//!    Their counters depend on thread scheduling (how many misses land in
//!    one forming window) and are informational.
//!
//! Besides the rendered table, the run writes a machine-readable
//! `BENCH_throughput.json` (into `$DSR_BENCH_DIR` or the working
//! directory) so CI can archive the per-PR throughput trajectory — now
//! including the measured wire bytes per communication round and the
//! batch former's fusion counters.

use dsr_sync::Arc;
use std::time::Duration;

use dsr_cluster::{CommStats, TcpTransport, Transport, TransportKind, WireTransport};
use dsr_core::{DsrEngine, DsrIndex, SetQuery};
use dsr_datagen::{query_stream, ArrivalPattern, StreamConfig};
use dsr_graph::DiGraph;
use dsr_reach::LocalIndexKind;
use dsr_service::{QueryService, QueryTicket, ServiceConfig};

use crate::experiments::common;
use crate::{secs, time, Table};

/// Number of virtual clients per replay wave (and of real client threads
/// in the largest threaded mode).
const BATCHED_CLIENTS: usize = 64;

/// Batch-former counters of one service mode, snapshotted from
/// [`dsr_cluster::BatchStats`].
struct FusionInfo {
    batches: u64,
    fused_queries: u64,
    executed: u64,
    late_hits: u64,
    fusion_ratio: f64,
    mean_batch: f64,
}

/// Results of one execution mode.
struct ModeResult {
    name: &'static str,
    transport: &'static str,
    queries: usize,
    elapsed: Duration,
    rounds: u64,
    messages: u64,
    bytes: u64,
    cache_hits: Option<u64>,
    /// Per-query latency percentiles (closed-loop client view); only the
    /// service modes that track per-query timestamps report them.
    latency: Option<(Duration, Duration)>,
    /// Batch-former counters; only the `service_batched_*` modes report
    /// them.
    fusion: Option<FusionInfo>,
}

impl ModeResult {
    fn qps(&self) -> f64 {
        self.queries as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

fn fusion_info(service: &QueryService) -> FusionInfo {
    let stats = service.batch_stats();
    FusionInfo {
        batches: stats.batches(),
        fused_queries: stats.queries(),
        executed: stats.executed(),
        late_hits: stats.late_hits(),
        fusion_ratio: stats.fusion_ratio(),
        mean_batch: stats.mean_batch_size(),
    }
}

/// Deterministic replay of [`BATCHED_CLIENTS`] virtual clients: each wave
/// submits one query per client into the batch former, flushes, and waits
/// — so a wave's cache misses fuse into exactly one shared protocol run.
/// Single-threaded by construction, hence bit-reproducible counters.
fn run_batched_replay(
    index: &Arc<DsrIndex>,
    queries: &[SetQuery],
    name: &'static str,
    transport: TransportKind,
) -> ModeResult {
    let service = QueryService::with_config(
        Arc::clone(index),
        ServiceConfig {
            transport,
            // Waves are formed by the explicit flush, never by cap or
            // window expiry — determinism does not depend on timing.
            max_batch: usize::MAX,
            max_wait_us: 1_000_000,
            ..ServiceConfig::default()
        },
    );
    let (_, elapsed) = time(|| {
        for wave in queries.chunks(BATCHED_CLIENTS) {
            let tickets: Vec<QueryTicket> = wave
                .iter()
                .map(|q| service.submit(&q.sources, &q.targets))
                .collect();
            service.flush();
            for ticket in tickets {
                std::hint::black_box(ticket.wait().expect("transport stays up for the run"));
            }
        }
    });
    let (rounds, messages, bytes) = service.comm_stats().snapshot();
    ModeResult {
        name,
        transport: match transport {
            TransportKind::InProcess => "in-process",
            TransportKind::Wire => "wire",
            TransportKind::Tcp => "tcp",
        },
        queries: queries.len(),
        elapsed,
        rounds,
        messages,
        bytes,
        cache_hits: Some(service.cache_stats().hits()),
        latency: None,
        fusion: Some(fusion_info(&service)),
    }
}

/// The batch former under `clients` real closed-loop client threads, with
/// per-query latency percentiles. Counters depend on thread scheduling
/// (how many misses meet in one forming window) — informational only.
fn run_batched_threaded(
    index: &Arc<DsrIndex>,
    queries: &[SetQuery],
    name: &'static str,
    clients: usize,
) -> ModeResult {
    let service = QueryService::new(Arc::clone(index));
    let mut latencies: Vec<Duration> = Vec::with_capacity(queries.len());
    let (_, elapsed) = time(|| {
        dsr_sync::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|client| {
                    let service = &service;
                    scope.spawn(move || {
                        let mut lat = Vec::new();
                        for q in queries.iter().skip(client).step_by(clients) {
                            let start = std::time::Instant::now();
                            std::hint::black_box(service.query(&q.sources, &q.targets));
                            lat.push(start.elapsed());
                        }
                        lat
                    })
                })
                .collect();
            for handle in handles {
                latencies.extend(handle.join().expect("client thread panicked"));
            }
        });
    });
    latencies.sort_unstable();
    let percentile = |p: usize| latencies[(latencies.len() * p / 100).min(latencies.len() - 1)];
    let (rounds, messages, bytes) = service.comm_stats().snapshot();
    ModeResult {
        name,
        transport: "in-process",
        queries: queries.len(),
        elapsed,
        rounds,
        messages,
        bytes,
        cache_hits: Some(service.cache_stats().hits()),
        latency: Some((percentile(50), percentile(99))),
        fusion: Some(fusion_info(&service)),
    }
}

/// Runs the experiment, renders the table and writes `BENCH_throughput.json`.
pub fn run(fast: bool) -> String {
    let (graph_name, graph): (&str, DiGraph) = if fast {
        // Small deterministic web graph so the CI bench-smoke job finishes
        // in seconds.
        ("web-3k", dsr_datagen::web_graph(800, 4.0, 16, 0.7, 0xBE))
    } else {
        ("NotreDame", common::dataset("NotreDame"))
    };
    let slaves = if fast { 3 } else { common::DEFAULT_SLAVES };
    let num_queries = if fast { 512 } else { 10_000 };
    let distinct = if fast { 24 } else { 256 };
    let batch_size = if fast { 64 } else { 256 };

    let partitioning = common::partition(&graph, slaves);
    let index = Arc::new(DsrIndex::build(&graph, partitioning, LocalIndexKind::Dfs));
    let stream = query_stream(
        &graph,
        &StreamConfig {
            num_queries,
            num_sources: 10,
            num_targets: 10,
            distinct,
            skew: 0.99,
            pattern: ArrivalPattern::ClosedLoop,
            seed: 0x7B,
        },
    );
    let queries: Vec<SetQuery> = stream
        .queries()
        .map(|q| SetQuery::new(q.sources.clone(), q.targets.clone()))
        .collect();

    // --- Mode 1: per-query protocol runs. -------------------------------
    let engine = DsrEngine::new(&index);
    let per_query_stats = CommStats::new();
    let (per_query_results, per_query_time) = time(|| {
        queries
            .iter()
            .map(|q| engine.set_reachability_with_stats(&q.sources, &q.targets, &per_query_stats))
            .collect::<Vec<_>>()
    });
    let (rounds, messages, bytes) = per_query_stats.snapshot();
    let per_query = ModeResult {
        name: "per_query",
        transport: "in-process",
        queries: queries.len(),
        elapsed: per_query_time,
        rounds,
        messages,
        bytes,
        cache_hits: None,
        latency: None,
        fusion: None,
    };

    // --- Mode 2: batched protocol runs. ---------------------------------
    let batched_stats = CommStats::new();
    let (batched_results, batched_time) = time(|| {
        queries
            .chunks(batch_size)
            .flat_map(|chunk| {
                engine
                    .set_reachability_batch_with_stats(chunk, &batched_stats)
                    .expect("in-process transport never fails")
            })
            .collect::<Vec<_>>()
    });
    assert_eq!(
        per_query_results, batched_results,
        "batched execution must agree with per-query execution"
    );
    let (rounds, messages, bytes) = batched_stats.snapshot();
    let batched = ModeResult {
        name: "batched",
        transport: "in-process",
        queries: queries.len(),
        elapsed: batched_time,
        rounds,
        messages,
        bytes,
        cache_hits: None,
        latency: None,
        fusion: None,
    };

    // --- Mode 3: batched protocol runs over the serializing wire
    // transport (encode → OS pipe → decode for every message). -----------
    let wire = WireTransport::new();
    let wire_engine = DsrEngine::with_transport(&index, &wire);
    let wire_stats = CommStats::new();
    let (wire_results, wire_time) = time(|| {
        queries
            .chunks(batch_size)
            .flat_map(|chunk| {
                wire_engine
                    .set_reachability_batch_with_stats(chunk, &wire_stats)
                    .expect("wire transport never fails in-process")
            })
            .collect::<Vec<_>>()
    });
    assert_eq!(
        batched_results, wire_results,
        "wire transport must produce byte-identical answers"
    );
    let (rounds, messages, bytes) = wire_stats.snapshot();
    assert_eq!(
        (rounds, messages, bytes),
        batched_stats.snapshot(),
        "measured wire bytes must equal the in-process accounting"
    );
    let batched_wire = ModeResult {
        name: "batched_wire",
        transport: wire.name(),
        queries: queries.len(),
        elapsed: wire_time,
        rounds,
        messages,
        bytes,
        cache_hits: None,
        latency: None,
        fusion: None,
    };

    // --- Mode 3b: batched protocol runs over a loopback TCP cluster
    // (every frame crosses real sockets and worker endpoints). ------------
    let tcp = TcpTransport::loopback();
    let tcp_engine = DsrEngine::with_transport(&index, &tcp);
    let tcp_stats = CommStats::new();
    let (tcp_results, tcp_time) = time(|| {
        queries
            .chunks(batch_size)
            .flat_map(|chunk| {
                tcp_engine
                    .set_reachability_batch_with_stats(chunk, &tcp_stats)
                    .expect("loopback tcp cluster stays up for the run")
            })
            .collect::<Vec<_>>()
    });
    assert_eq!(
        batched_results, tcp_results,
        "tcp transport must produce byte-identical answers"
    );
    let (rounds, messages, bytes) = tcp_stats.snapshot();
    assert_eq!(
        (rounds, messages, bytes),
        batched_stats.snapshot(),
        "tcp bytes must equal the in-process accounting"
    );
    let batched_tcp = ModeResult {
        name: "batched_tcp",
        transport: tcp.name(),
        queries: queries.len(),
        elapsed: tcp_time,
        rounds,
        messages,
        bytes,
        cache_hits: None,
        latency: None,
        fusion: None,
    };

    // --- Mode 4: cached service, single closed-loop client. -------------
    let service = QueryService::new(Arc::clone(&index));
    let (_, service_time) = time(|| {
        for q in &queries {
            std::hint::black_box(service.query(&q.sources, &q.targets));
        }
    });
    let (rounds, messages, bytes) = service.comm_stats().snapshot();
    let service_cached = ModeResult {
        name: "service_cached",
        transport: "in-process",
        queries: queries.len(),
        elapsed: service_time,
        rounds,
        messages,
        bytes,
        cache_hits: Some(service.cache_stats().hits()),
        latency: None,
        fusion: None,
    };
    let hit_rate = service.cache_stats().hit_rate();

    // --- Mode 5: cached service, 8 closed-loop clients. -----------------
    let concurrent_service = QueryService::new(Arc::clone(&index));
    let num_clients = 8;
    let (_, concurrent_time) = time(|| {
        dsr_sync::thread::scope(|scope| {
            for client in 0..num_clients {
                let service = &concurrent_service;
                let queries = &queries;
                scope.spawn(move || {
                    for q in queries.iter().skip(client).step_by(num_clients) {
                        std::hint::black_box(service.query(&q.sources, &q.targets));
                    }
                });
            }
        });
    });
    let (rounds, messages, bytes) = concurrent_service.comm_stats().snapshot();
    let service_concurrent = ModeResult {
        name: "service_concurrent",
        transport: "in-process",
        queries: queries.len(),
        elapsed: concurrent_time,
        rounds,
        messages,
        bytes,
        cache_hits: Some(concurrent_service.cache_stats().hits()),
        latency: None,
        fusion: None,
    };

    // --- Mode 6: the batch former, deterministic 64-virtual-client
    // replay, on all three transports (byte-identity asserted). -----------
    let replay = run_batched_replay(
        &index,
        &queries,
        "service_batched_replay",
        TransportKind::InProcess,
    );
    let replay_wire = run_batched_replay(
        &index,
        &queries,
        "service_batched_replay_wire",
        TransportKind::Wire,
    );
    let replay_tcp = run_batched_replay(
        &index,
        &queries,
        "service_batched_replay_tcp",
        TransportKind::Tcp,
    );
    for other in [&replay_wire, &replay_tcp] {
        assert_eq!(
            (replay.rounds, replay.messages, replay.bytes),
            (other.rounds, other.messages, other.bytes),
            "batch-former replay must be byte-identical across transports ({})",
            other.name
        );
    }

    // --- Mode 7: the batch former under real client threads. -------------
    let batched_8 = run_batched_threaded(&index, &queries, "service_batched_8", 8);
    let batched_64 = run_batched_threaded(&index, &queries, "service_batched_64", BATCHED_CLIENTS);

    let modes = [
        per_query,
        batched,
        batched_wire,
        batched_tcp,
        service_cached,
        service_concurrent,
        replay,
        replay_wire,
        replay_tcp,
        batched_8,
        batched_64,
    ];

    // --- Render. --------------------------------------------------------
    let mut table = Table::new(
        &format!(
            "Throughput: {num_queries} queries (10x10, {distinct} distinct, zipf 0.99) on {graph_name}, {slaves} slaves"
        ),
        &[
            "Mode",
            "Transport",
            "Time (s)",
            "QPS",
            "Rounds",
            "Messages",
            "Comm (KB)",
            "Cache hits",
            "p50/p99 (us)",
            "Fusion q/round",
        ],
    );
    for mode in &modes {
        table.row(vec![
            mode.name.to_string(),
            mode.transport.to_string(),
            secs(mode.elapsed),
            format!("{:.0}", mode.qps()),
            mode.rounds.to_string(),
            mode.messages.to_string(),
            format!("{:.1}", mode.bytes as f64 / 1024.0),
            mode.cache_hits
                .map_or_else(|| "-".to_string(), |h| h.to_string()),
            mode.latency.map_or_else(
                || "-".to_string(),
                |(p50, p99)| format!("{}/{}", p50.as_micros(), p99.as_micros()),
            ),
            mode.fusion
                .as_ref()
                .map_or_else(|| "-".to_string(), |f| format!("{:.1}", f.fusion_ratio)),
        ]);
    }
    let mut out = table.render();

    let json = render_json(
        fast,
        graph_name,
        &graph,
        slaves,
        &stream_summary(num_queries, distinct, batch_size),
        &modes,
        hit_rate,
    );
    match write_json(&json) {
        Ok(path) => out.push_str(&format!("\nwrote {path}\n")),
        Err(err) => out.push_str(&format!("\nfailed to write BENCH_throughput.json: {err}\n")),
    }
    out
}

struct StreamSummary {
    num_queries: usize,
    distinct: usize,
    batch_size: usize,
}

fn stream_summary(num_queries: usize, distinct: usize, batch_size: usize) -> StreamSummary {
    StreamSummary {
        num_queries,
        distinct,
        batch_size,
    }
}

fn render_json(
    fast: bool,
    graph_name: &str,
    graph: &DiGraph,
    slaves: usize,
    stream: &StreamSummary,
    modes: &[ModeResult],
    hit_rate: f64,
) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"experiment\": \"throughput\",\n");
    json.push_str(&format!("  \"fast\": {fast},\n"));
    json.push_str(&format!(
        "  \"graph\": {{\"name\": \"{graph_name}\", \"vertices\": {}, \"edges\": {}, \"slaves\": {slaves}}},\n",
        graph.num_vertices(),
        graph.num_edges()
    ));
    json.push_str(&format!(
        "  \"workload\": {{\"num_queries\": {}, \"distinct\": {}, \"skew\": 0.99, \"sources\": 10, \"targets\": 10, \"batch_size\": {}}},\n",
        stream.num_queries, stream.distinct, stream.batch_size
    ));
    json.push_str(&format!("  \"cache_hit_rate\": {hit_rate:.4},\n"));
    // Look modes up by name so inserting or reordering a mode cannot
    // silently attribute one mode's numbers to another in the archived JSON.
    let mode = |name: &str| {
        modes
            .iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("mode {name} present"))
    };
    let per_query_secs = mode("per_query").elapsed.as_secs_f64();
    let batched_secs = mode("batched").elapsed.as_secs_f64();
    let batched_speedup = per_query_secs / batched_secs.max(1e-9);
    let cached_speedup = per_query_secs / mode("service_cached").elapsed.as_secs_f64().max(1e-9);
    json.push_str(&format!(
        "  \"speedup\": {{\"batched_vs_per_query\": {batched_speedup:.3}, \"cached_vs_per_query\": {cached_speedup:.3}}},\n"
    ));
    // Measured serialized traffic of the wire-transport mode: bytes per
    // communication round actually shipped through the pipes, plus the
    // slowdown relative to the zero-copy in-process backend.
    let wire_mode = mode("batched_wire");
    let wire_bytes_per_round = wire_mode.bytes as f64 / wire_mode.rounds.max(1) as f64;
    let wire_overhead = wire_mode.elapsed.as_secs_f64() / batched_secs.max(1e-9);
    json.push_str(&format!(
        "  \"wire\": {{\"bytes_per_round\": {wire_bytes_per_round:.1}, \"rounds\": {}, \"bytes\": {}, \"overhead_vs_in_process\": {wire_overhead:.3}}},\n",
        wire_mode.rounds, wire_mode.bytes
    ));
    // The TCP deployment backend: same deterministic counters (asserted
    // byte-identical at run time), its own wall-clock overhead.
    let tcp_mode = mode("batched_tcp");
    let tcp_overhead = tcp_mode.elapsed.as_secs_f64() / batched_secs.max(1e-9);
    json.push_str(&format!(
        "  \"tcp\": {{\"rounds\": {}, \"bytes\": {}, \"overhead_vs_in_process\": {tcp_overhead:.3}, \"bytes_identical\": true}},\n",
        tcp_mode.rounds, tcp_mode.bytes
    ));
    // The batch former, from the deterministic replay (identical counters
    // on all three transports, asserted at run time): rounds and bytes are
    // regression-gated, the fusion ratio shows how many queries each fused
    // scatter/exchange/gather run amortizes.
    let replay_mode = mode("service_batched_replay");
    let replay_fusion = replay_mode
        .fusion
        .as_ref()
        .expect("replay mode records fusion counters");
    let rounds_per_query = replay_mode.rounds as f64 / replay_mode.queries.max(1) as f64;
    json.push_str(&format!(
        "  \"service_batched\": {{\"rounds\": {}, \"messages\": {}, \"bytes\": {}, \"rounds_per_query\": {rounds_per_query:.4}, \"fusion_ratio\": {:.2}, \"bytes_identical\": true}},\n",
        replay_mode.rounds, replay_mode.messages, replay_mode.bytes, replay_fusion.fusion_ratio
    ));
    json.push_str("  \"modes\": [\n");
    for (i, mode) in modes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"transport\": \"{}\", \"queries\": {}, \"seconds\": {:.6}, \"qps\": {:.1}, \"rounds\": {}, \"messages\": {}, \"bytes\": {}{}{}{}}}{}\n",
            mode.name,
            mode.transport,
            mode.queries,
            mode.elapsed.as_secs_f64(),
            mode.qps(),
            mode.rounds,
            mode.messages,
            mode.bytes,
            mode.cache_hits
                .map_or_else(String::new, |h| format!(", \"cache_hits\": {h}")),
            mode.latency.map_or_else(String::new, |(p50, p99)| format!(
                ", \"p50_us\": {}, \"p99_us\": {}",
                p50.as_micros(),
                p99.as_micros()
            )),
            mode.fusion.as_ref().map_or_else(String::new, |f| format!(
                ", \"fused_batches\": {}, \"fused_queries\": {}, \"executed\": {}, \"late_hits\": {}, \"fusion_ratio\": {:.2}, \"mean_batch\": {:.2}",
                f.batches, f.fused_queries, f.executed, f.late_hits, f.fusion_ratio, f.mean_batch
            )),
            if i + 1 == modes.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

fn write_json(json: &str) -> std::io::Result<String> {
    common::write_bench_json("BENCH_throughput.json", json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_produces_table_and_json() {
        let out = run(true);
        assert!(out.contains("per_query"));
        assert!(out.contains("batched"));
        assert!(out.contains("batched_wire"));
        assert!(out.contains("batched_tcp"));
        assert!(out.contains("service_cached"));
        assert!(out.contains("service_concurrent"));
        assert!(out.contains("service_batched_replay"));
        assert!(out.contains("service_batched_replay_wire"));
        assert!(out.contains("service_batched_replay_tcp"));
        assert!(out.contains("service_batched_8"));
        assert!(out.contains("service_batched_64"));
        assert!(
            out.contains("BENCH_throughput.json"),
            "json path reported:\n{out}"
        );
        // The file was written where the experiment says it was.
        let line = out
            .lines()
            .find(|l| l.starts_with("wrote "))
            .expect("wrote line present");
        let path = line.trim_start_matches("wrote ");
        let json = std::fs::read_to_string(path).expect("json readable");
        assert!(json.contains("\"experiment\": \"throughput\""));
        assert!(json.contains("\"batched_vs_per_query\""));
        assert!(json.contains("\"cache_hits\""));
        assert!(
            json.contains("\"wire\": {\"bytes_per_round\":"),
            "measured wire bytes/round reported:\n{json}"
        );
        assert!(json.contains("\"transport\": \"wire\""));
        assert!(json.contains("\"transport\": \"tcp\""));
        assert!(json.contains("\"bytes_identical\": true"));
        // The batch-former section and its per-mode counters made it into
        // the archive: deterministic fusion gates plus latency percentiles.
        assert!(
            json.contains("\"service_batched\": {\"rounds\":"),
            "batch-former summary reported:\n{json}"
        );
        assert!(json.contains("\"rounds_per_query\""));
        assert!(json.contains("\"fused_batches\""));
        assert!(json.contains("\"fused_queries\""));
        assert!(json.contains("\"fusion_ratio\""));
        assert!(json.contains("\"p50_us\""));
        assert!(json.contains("\"p99_us\""));
    }
}
