//! Serving-layer throughput experiment.
//!
//! Not a table of the paper — the paper stops at per-query latency — but
//! the direct consequence of its claim: with communication bounded at 3
//! rounds per query, the way to serve heavy traffic is to amortize those
//! rounds across a *batch* of queries and to cache repeated answers. This
//! experiment replays a Zipf-skewed query stream (see
//! [`dsr_datagen::workload::query_stream`]) in five execution modes over
//! the same index:
//!
//! 1. `per_query` — the historical one-protocol-run-per-query path,
//! 2. `batched` — [`DsrEngine::set_reachability_batch`] over fixed-size
//!    chunks (3 communication rounds per chunk instead of per query),
//! 3. `batched_wire` — the same batched runs over the serializing
//!    [`WireTransport`]: every message wire-encoded, shipped through OS
//!    pipes and decoded, so the mode measures the overhead of a real byte
//!    substrate (and its reported bytes are *measured*, not estimated),
//! 4. `batched_tcp` — the same batched runs over a loopback
//!    [`TcpTransport`] cluster: every frame
//!    takes the master → worker → worker → master route over real
//!    sockets, asserting the deployment backend stays byte-identical,
//! 5. `service_cached` — a [`QueryService`] with its LRU result cache,
//! 6. `service_concurrent` — the same service hammered by 8 closed-loop
//!    client threads.
//!
//! Besides the rendered table, the run writes a machine-readable
//! `BENCH_throughput.json` (into `$DSR_BENCH_DIR` or the working
//! directory) so CI can archive the per-PR throughput trajectory — now
//! including the measured wire bytes per communication round.

use std::sync::Arc;
use std::time::Duration;

use dsr_cluster::{CommStats, TcpTransport, Transport, WireTransport};
use dsr_core::{DsrEngine, DsrIndex, SetQuery};
use dsr_datagen::{query_stream, ArrivalPattern, StreamConfig};
use dsr_graph::DiGraph;
use dsr_reach::LocalIndexKind;
use dsr_service::QueryService;

use crate::experiments::common;
use crate::{secs, time, Table};

/// Results of one execution mode.
struct ModeResult {
    name: &'static str,
    transport: &'static str,
    queries: usize,
    elapsed: Duration,
    rounds: u64,
    messages: u64,
    bytes: u64,
    cache_hits: Option<u64>,
}

impl ModeResult {
    fn qps(&self) -> f64 {
        self.queries as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Runs the experiment, renders the table and writes `BENCH_throughput.json`.
pub fn run(fast: bool) -> String {
    let (graph_name, graph): (&str, DiGraph) = if fast {
        // Small deterministic web graph so the CI bench-smoke job finishes
        // in seconds.
        ("web-3k", dsr_datagen::web_graph(800, 4.0, 16, 0.7, 0xBE))
    } else {
        ("NotreDame", common::dataset("NotreDame"))
    };
    let slaves = if fast { 3 } else { common::DEFAULT_SLAVES };
    let num_queries = if fast { 512 } else { 10_000 };
    let distinct = if fast { 24 } else { 256 };
    let batch_size = if fast { 64 } else { 256 };

    let partitioning = common::partition(&graph, slaves);
    let index = Arc::new(DsrIndex::build(&graph, partitioning, LocalIndexKind::Dfs));
    let stream = query_stream(
        &graph,
        &StreamConfig {
            num_queries,
            num_sources: 10,
            num_targets: 10,
            distinct,
            skew: 0.99,
            pattern: ArrivalPattern::ClosedLoop,
            seed: 0x7B,
        },
    );
    let queries: Vec<SetQuery> = stream
        .queries()
        .map(|q| SetQuery::new(q.sources.clone(), q.targets.clone()))
        .collect();

    // --- Mode 1: per-query protocol runs. -------------------------------
    let engine = DsrEngine::new(&index);
    let per_query_stats = CommStats::new();
    let (per_query_results, per_query_time) = time(|| {
        queries
            .iter()
            .map(|q| engine.set_reachability_with_stats(&q.sources, &q.targets, &per_query_stats))
            .collect::<Vec<_>>()
    });
    let (rounds, messages, bytes) = per_query_stats.snapshot();
    let per_query = ModeResult {
        name: "per_query",
        transport: "in-process",
        queries: queries.len(),
        elapsed: per_query_time,
        rounds,
        messages,
        bytes,
        cache_hits: None,
    };

    // --- Mode 2: batched protocol runs. ---------------------------------
    let batched_stats = CommStats::new();
    let (batched_results, batched_time) = time(|| {
        queries
            .chunks(batch_size)
            .flat_map(|chunk| {
                engine
                    .set_reachability_batch_with_stats(chunk, &batched_stats)
                    .expect("in-process transport never fails")
            })
            .collect::<Vec<_>>()
    });
    assert_eq!(
        per_query_results, batched_results,
        "batched execution must agree with per-query execution"
    );
    let (rounds, messages, bytes) = batched_stats.snapshot();
    let batched = ModeResult {
        name: "batched",
        transport: "in-process",
        queries: queries.len(),
        elapsed: batched_time,
        rounds,
        messages,
        bytes,
        cache_hits: None,
    };

    // --- Mode 3: batched protocol runs over the serializing wire
    // transport (encode → OS pipe → decode for every message). -----------
    let wire = WireTransport::new();
    let wire_engine = DsrEngine::with_transport(&index, &wire);
    let wire_stats = CommStats::new();
    let (wire_results, wire_time) = time(|| {
        queries
            .chunks(batch_size)
            .flat_map(|chunk| {
                wire_engine
                    .set_reachability_batch_with_stats(chunk, &wire_stats)
                    .expect("wire transport never fails in-process")
            })
            .collect::<Vec<_>>()
    });
    assert_eq!(
        batched_results, wire_results,
        "wire transport must produce byte-identical answers"
    );
    let (rounds, messages, bytes) = wire_stats.snapshot();
    assert_eq!(
        (rounds, messages, bytes),
        batched_stats.snapshot(),
        "measured wire bytes must equal the in-process accounting"
    );
    let batched_wire = ModeResult {
        name: "batched_wire",
        transport: wire.name(),
        queries: queries.len(),
        elapsed: wire_time,
        rounds,
        messages,
        bytes,
        cache_hits: None,
    };

    // --- Mode 3b: batched protocol runs over a loopback TCP cluster
    // (every frame crosses real sockets and worker endpoints). ------------
    let tcp = TcpTransport::loopback();
    let tcp_engine = DsrEngine::with_transport(&index, &tcp);
    let tcp_stats = CommStats::new();
    let (tcp_results, tcp_time) = time(|| {
        queries
            .chunks(batch_size)
            .flat_map(|chunk| {
                tcp_engine
                    .set_reachability_batch_with_stats(chunk, &tcp_stats)
                    .expect("loopback tcp cluster stays up for the run")
            })
            .collect::<Vec<_>>()
    });
    assert_eq!(
        batched_results, tcp_results,
        "tcp transport must produce byte-identical answers"
    );
    let (rounds, messages, bytes) = tcp_stats.snapshot();
    assert_eq!(
        (rounds, messages, bytes),
        batched_stats.snapshot(),
        "tcp bytes must equal the in-process accounting"
    );
    let batched_tcp = ModeResult {
        name: "batched_tcp",
        transport: tcp.name(),
        queries: queries.len(),
        elapsed: tcp_time,
        rounds,
        messages,
        bytes,
        cache_hits: None,
    };

    // --- Mode 4: cached service, single closed-loop client. -------------
    let service = QueryService::new(Arc::clone(&index));
    let (_, service_time) = time(|| {
        for q in &queries {
            std::hint::black_box(service.query(&q.sources, &q.targets));
        }
    });
    let (rounds, messages, bytes) = service.comm_stats().snapshot();
    let service_cached = ModeResult {
        name: "service_cached",
        transport: "in-process",
        queries: queries.len(),
        elapsed: service_time,
        rounds,
        messages,
        bytes,
        cache_hits: Some(service.cache_stats().hits()),
    };
    let hit_rate = service.cache_stats().hit_rate();

    // --- Mode 5: cached service, 8 closed-loop clients. -----------------
    let concurrent_service = QueryService::new(Arc::clone(&index));
    let num_clients = 8;
    let (_, concurrent_time) = time(|| {
        std::thread::scope(|scope| {
            for client in 0..num_clients {
                let service = &concurrent_service;
                let queries = &queries;
                scope.spawn(move || {
                    for q in queries.iter().skip(client).step_by(num_clients) {
                        std::hint::black_box(service.query(&q.sources, &q.targets));
                    }
                });
            }
        });
    });
    let (rounds, messages, bytes) = concurrent_service.comm_stats().snapshot();
    let service_concurrent = ModeResult {
        name: "service_concurrent",
        transport: "in-process",
        queries: queries.len(),
        elapsed: concurrent_time,
        rounds,
        messages,
        bytes,
        cache_hits: Some(concurrent_service.cache_stats().hits()),
    };

    let modes = [
        per_query,
        batched,
        batched_wire,
        batched_tcp,
        service_cached,
        service_concurrent,
    ];

    // --- Render. --------------------------------------------------------
    let mut table = Table::new(
        &format!(
            "Throughput: {num_queries} queries (10x10, {distinct} distinct, zipf 0.99) on {graph_name}, {slaves} slaves"
        ),
        &[
            "Mode",
            "Transport",
            "Time (s)",
            "QPS",
            "Rounds",
            "Messages",
            "Comm (KB)",
            "Cache hits",
        ],
    );
    for mode in &modes {
        table.row(vec![
            mode.name.to_string(),
            mode.transport.to_string(),
            secs(mode.elapsed),
            format!("{:.0}", mode.qps()),
            mode.rounds.to_string(),
            mode.messages.to_string(),
            format!("{:.1}", mode.bytes as f64 / 1024.0),
            mode.cache_hits
                .map_or_else(|| "-".to_string(), |h| h.to_string()),
        ]);
    }
    let mut out = table.render();

    let json = render_json(
        fast,
        graph_name,
        &graph,
        slaves,
        &stream_summary(num_queries, distinct, batch_size),
        &modes,
        hit_rate,
    );
    match write_json(&json) {
        Ok(path) => out.push_str(&format!("\nwrote {path}\n")),
        Err(err) => out.push_str(&format!("\nfailed to write BENCH_throughput.json: {err}\n")),
    }
    out
}

struct StreamSummary {
    num_queries: usize,
    distinct: usize,
    batch_size: usize,
}

fn stream_summary(num_queries: usize, distinct: usize, batch_size: usize) -> StreamSummary {
    StreamSummary {
        num_queries,
        distinct,
        batch_size,
    }
}

fn render_json(
    fast: bool,
    graph_name: &str,
    graph: &DiGraph,
    slaves: usize,
    stream: &StreamSummary,
    modes: &[ModeResult],
    hit_rate: f64,
) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"experiment\": \"throughput\",\n");
    json.push_str(&format!("  \"fast\": {fast},\n"));
    json.push_str(&format!(
        "  \"graph\": {{\"name\": \"{graph_name}\", \"vertices\": {}, \"edges\": {}, \"slaves\": {slaves}}},\n",
        graph.num_vertices(),
        graph.num_edges()
    ));
    json.push_str(&format!(
        "  \"workload\": {{\"num_queries\": {}, \"distinct\": {}, \"skew\": 0.99, \"sources\": 10, \"targets\": 10, \"batch_size\": {}}},\n",
        stream.num_queries, stream.distinct, stream.batch_size
    ));
    json.push_str(&format!("  \"cache_hit_rate\": {hit_rate:.4},\n"));
    // Look modes up by name so inserting or reordering a mode cannot
    // silently attribute one mode's numbers to another in the archived JSON.
    let mode = |name: &str| {
        modes
            .iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("mode {name} present"))
    };
    let per_query_secs = mode("per_query").elapsed.as_secs_f64();
    let batched_secs = mode("batched").elapsed.as_secs_f64();
    let batched_speedup = per_query_secs / batched_secs.max(1e-9);
    let cached_speedup = per_query_secs / mode("service_cached").elapsed.as_secs_f64().max(1e-9);
    json.push_str(&format!(
        "  \"speedup\": {{\"batched_vs_per_query\": {batched_speedup:.3}, \"cached_vs_per_query\": {cached_speedup:.3}}},\n"
    ));
    // Measured serialized traffic of the wire-transport mode: bytes per
    // communication round actually shipped through the pipes, plus the
    // slowdown relative to the zero-copy in-process backend.
    let wire_mode = mode("batched_wire");
    let wire_bytes_per_round = wire_mode.bytes as f64 / wire_mode.rounds.max(1) as f64;
    let wire_overhead = wire_mode.elapsed.as_secs_f64() / batched_secs.max(1e-9);
    json.push_str(&format!(
        "  \"wire\": {{\"bytes_per_round\": {wire_bytes_per_round:.1}, \"rounds\": {}, \"bytes\": {}, \"overhead_vs_in_process\": {wire_overhead:.3}}},\n",
        wire_mode.rounds, wire_mode.bytes
    ));
    // The TCP deployment backend: same deterministic counters (asserted
    // byte-identical at run time), its own wall-clock overhead.
    let tcp_mode = mode("batched_tcp");
    let tcp_overhead = tcp_mode.elapsed.as_secs_f64() / batched_secs.max(1e-9);
    json.push_str(&format!(
        "  \"tcp\": {{\"rounds\": {}, \"bytes\": {}, \"overhead_vs_in_process\": {tcp_overhead:.3}, \"bytes_identical\": true}},\n",
        tcp_mode.rounds, tcp_mode.bytes
    ));
    json.push_str("  \"modes\": [\n");
    for (i, mode) in modes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"transport\": \"{}\", \"queries\": {}, \"seconds\": {:.6}, \"qps\": {:.1}, \"rounds\": {}, \"messages\": {}, \"bytes\": {}{}}}{}\n",
            mode.name,
            mode.transport,
            mode.queries,
            mode.elapsed.as_secs_f64(),
            mode.qps(),
            mode.rounds,
            mode.messages,
            mode.bytes,
            mode.cache_hits
                .map_or_else(String::new, |h| format!(", \"cache_hits\": {h}")),
            if i + 1 == modes.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

fn write_json(json: &str) -> std::io::Result<String> {
    common::write_bench_json("BENCH_throughput.json", json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_produces_table_and_json() {
        let out = run(true);
        assert!(out.contains("per_query"));
        assert!(out.contains("batched"));
        assert!(out.contains("batched_wire"));
        assert!(out.contains("batched_tcp"));
        assert!(out.contains("service_cached"));
        assert!(out.contains("service_concurrent"));
        assert!(
            out.contains("BENCH_throughput.json"),
            "json path reported:\n{out}"
        );
        // The file was written where the experiment says it was.
        let line = out
            .lines()
            .find(|l| l.starts_with("wrote "))
            .expect("wrote line present");
        let path = line.trim_start_matches("wrote ");
        let json = std::fs::read_to_string(path).expect("json readable");
        assert!(json.contains("\"experiment\": \"throughput\""));
        assert!(json.contains("\"batched_vs_per_query\""));
        assert!(json.contains("\"cache_hits\""));
        assert!(
            json.contains("\"wire\": {\"bytes_per_round\":"),
            "measured wire bytes/round reported:\n{json}"
        );
        assert!(json.contains("\"transport\": \"wire\""));
        assert!(json.contains("\"transport\": \"tcp\""));
        assert!(json.contains("\"bytes_identical\": true"));
    }
}
