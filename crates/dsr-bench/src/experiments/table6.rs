//! Table 6 — SPARQL 1.1 property-path queries (Section 4.5.A).
//!
//! The six benchmark queries L1–L3 (LUBM-like store) and F1–F3
//! (Freebase-like store) are evaluated with the DSR-backed path resolver on
//! 1 and 5 slaves and with the centralized per-source BFS resolver (the
//! Virtuoso stand-in). The geometric mean over the three queries of each
//! dataset is reported, matching the paper's table layout.
//!
//! Reproduced shape: the DSR-backed resolver beats the online-BFS baseline,
//! and the 5-slave configuration beats the single-slave one.

use dsr_rdf::{
    evaluate, freebase_like_store, lubm_like_store, named_query, BfsPathResolver, DsrPathResolver,
};

use crate::{geometric_mean, secs, time, Table};

/// Runs the experiment and renders one table per dataset family.
pub fn run(fast: bool) -> String {
    let mut out = String::new();
    let (universities, people) = if fast { (6, 400) } else { (25, 2500) };

    out.push_str(&run_family(
        "LUBM-500M analogue",
        lubm_like_store(universities, 0x61),
        &["L1", "L2", "L3"],
    ));
    out.push_str(&run_family(
        "Freebase-500M analogue",
        freebase_like_store(people, 0x62),
        &["F1", "F2", "F3"],
    ));
    out
}

fn run_family(title: &str, store: dsr_rdf::TripleStore, query_names: &[&str]) -> String {
    let mut header = vec!["Engine", "#Slaves"];
    header.extend_from_slice(query_names);
    header.push("Geo.-Mean");
    let mut table = Table::new(
        &format!("Table 6: SPARQL 1.1 property paths — {title} (times in seconds)"),
        &header,
    );

    let predicates = dsr_rdf::datasets::path_predicates(&store);
    let configurations: Vec<(String, String, Box<dyn dsr_rdf::PathResolver>)> = vec![
        (
            "DSR".to_string(),
            "1".to_string(),
            Box::new(DsrPathResolver::new(&store, &predicates, 1)),
        ),
        (
            "DSR".to_string(),
            "5".to_string(),
            Box::new(DsrPathResolver::new(&store, &predicates, 5)),
        ),
        (
            "BFS baseline (Virtuoso stand-in)".to_string(),
            "1".to_string(),
            Box::new(BfsPathResolver::new(&store, &predicates)),
        ),
    ];

    // Result counts must be identical across engines.
    let mut reference_counts: Vec<Option<usize>> = vec![None; query_names.len()];

    for (engine, slaves, resolver) in configurations {
        let mut cells = vec![engine, slaves];
        let mut durations = Vec::new();
        for (qi, name) in query_names.iter().enumerate() {
            let query = named_query(name).expect("benchmark query exists");
            let (results, elapsed) = time(|| evaluate(&store, &query, resolver.as_ref()));
            match reference_counts[qi] {
                None => reference_counts[qi] = Some(results.len()),
                Some(expected) => assert_eq!(
                    expected,
                    results.len(),
                    "{name}: engines must return the same number of solutions"
                ),
            }
            durations.push(elapsed);
            cells.push(secs(elapsed));
        }
        cells.push(format!("{:.3}", geometric_mean(&durations)));
        table.row(cells);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_produces_both_families() {
        let out = run(true);
        assert!(out.contains("LUBM"));
        assert!(out.contains("Freebase"));
        assert!(out.contains("Geo.-Mean"));
    }
}
