//! Table 3 — efficiency evaluation (indexing and query times).
//!
//! For every dataset analogue the experiment measures the DSR indexing
//! time and the query time of a random set-reachability query for all six
//! competitors: DSR, Giraph++, Giraph++wEq, Giraph, DSR-Fan and DSR-Naïve.
//! As in the paper, the iterative and per-pair baselines are skipped
//! ("n/a") on the large graphs where they stop being practical.
//! The reproduced shape: DSR is orders of magnitude faster than the
//! Giraph variants and than DSR-Fan/DSR-Naïve, with Giraph++ ≥ Giraph++wEq
//! both clearly ahead of plain Giraph.

use dsr_core::baselines::{FanBaseline, NaiveBaseline};
use dsr_core::DsrEngine;
use dsr_giraph::{
    giraph_pp_set_reachability, giraph_pp_weq_with_summaries, giraph_set_reachability,
    GraphCentricVariant,
};

use crate::experiments::common::{self, DEFAULT_SLAVES};
use crate::{secs, time, Table};

/// Runs the experiment and renders the table.
pub fn run(fast: bool) -> String {
    let mut table = Table::new(
        "Table 3: Efficiency evaluation (times in seconds)",
        &[
            "Graph",
            "Indexing (DSR)",
            "|S|x|T|",
            "DSR",
            "Giraph++",
            "Giraph++wEq",
            "Giraph",
            "DSR-Fan",
            "DSR-Naive",
        ],
    );

    let mut datasets: Vec<(&str, usize)> = common::small_datasets(fast)
        .into_iter()
        .map(|d| (d, 10))
        .collect();
    for d in common::large_datasets(fast) {
        // The paper uses 1000×1000 for the very sparse LUBM graph.
        let q = if d.starts_with("LUBM") { 200 } else { 10 };
        datasets.push((d, q));
    }
    if fast {
        datasets.truncate(3);
    }

    for (name, query_size) in datasets {
        let graph = common::dataset(name);
        let query = common::standard_query(&graph, query_size, query_size, 0x33);
        let partitioning = common::partition(&graph, DEFAULT_SLAVES);

        let (index, indexing_time) = time(|| {
            dsr_core::DsrIndex::build(&graph, partitioning.clone(), dsr_reach::LocalIndexKind::Dfs)
        });
        let engine = DsrEngine::new(&index);
        let (dsr_out, dsr_time) = time(|| engine.set_reachability(&query.sources, &query.targets));

        let (gpp, gpp_time) = time(|| {
            giraph_pp_set_reachability(
                &graph,
                &partitioning,
                &query.sources,
                &query.targets,
                GraphCentricVariant::GiraphPlusPlus,
            )
        });
        // The equivalence summaries are part of the DSR index, so the wEq
        // query time excludes their computation (as in the paper).
        let (gppeq, gppeq_time) = time(|| {
            giraph_pp_weq_with_summaries(
                &graph,
                &partitioning,
                &index.summaries,
                &query.sources,
                &query.targets,
            )
        });
        let (giraph, giraph_time) =
            time(|| giraph_set_reachability(&graph, &partitioning, &query.sources, &query.targets));
        // Sanity: all engines must agree on the answer.
        assert_eq!(dsr_out.pairs, gpp.pairs, "{name}: DSR vs Giraph++ disagree");
        assert_eq!(
            dsr_out.pairs, gppeq.pairs,
            "{name}: DSR vs Giraph++wEq disagree"
        );
        assert_eq!(
            dsr_out.pairs, giraph.pairs,
            "{name}: DSR vs Giraph disagree"
        );

        // The per-query baselines are only run on small graphs (the paper
        // marks them n/a beyond LiveJ-20M).
        let (fan_cell, naive_cell) = if graph.num_edges() <= 40_000 && query_size <= 10 {
            let fan = FanBaseline::new(&graph, partitioning.clone());
            let (fan_out, fan_time) = time(|| fan.set_reachability(&query.sources, &query.targets));
            assert_eq!(dsr_out.pairs, fan_out.pairs, "{name}: DSR vs Fan disagree");
            let naive = NaiveBaseline::new(&graph, partitioning.clone());
            let (naive_out, naive_time) =
                time(|| naive.set_reachability(&query.sources, &query.targets));
            assert_eq!(
                dsr_out.pairs, naive_out.pairs,
                "{name}: DSR vs Naive disagree"
            );
            (secs(fan_time), secs(naive_time))
        } else {
            ("n/a".to_string(), "n/a".to_string())
        };

        table.row(vec![
            name.to_string(),
            secs(indexing_time),
            query.label(),
            secs(dsr_time),
            secs(gpp_time),
            secs(gppeq_time),
            secs(giraph_time),
            fan_cell,
            naive_cell,
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_produces_rows() {
        let out = run(true);
        assert!(out.contains("Table 3"));
        assert!(out.contains("NotreDame"));
    }
}
