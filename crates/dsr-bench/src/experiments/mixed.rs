//! Mixed-tenant serving experiment: OLTP set-reachability traffic,
//! analytical property-path and community workloads, and a continuous
//! update stream — all against **one** snapshot-isolated [`QueryService`].
//!
//! The served graph is the disjoint union of an RDF union-path graph (the
//! LUBM-like `subOrganizationOf` subgraph interned by
//! [`UnionPathGraph`](dsr_rdf::UnionPathGraph)) and a planted-partition
//! social graph shifted past it, so three tenants with very different
//! access patterns share one generation chain:
//!
//! * **oltp** — per-round batches of set-reachability queries against the
//!   *latest* generation, each batch checked pair-for-pair against a
//!   [`TransitiveClosure`] oracle maintained alongside the update stream,
//!   and replayed once to exercise the latest namespace of the cache;
//! * **rdf-paths** — [`RdfWorkload`] (queries L1–L3) over a snapshot
//!   pinned at the *start* of the round, re-run after the round's update
//!   batch: the two runs must be identical (pinned readers never observe
//!   a mid-batch state), and the replay's path queries hit the pinned
//!   generation's still-live cache namespace;
//! * **community-pairs** — [`CommunityWorkload`] (Louvain + pairwise
//!   community set-reach) over the same pinned snapshot, with the same
//!   replay-equality check;
//! * an **update stream** deleting/re-inserting edge chunks through
//!   [`QueryService::update`]`(…, UpdateMode::Auto)` — the held pin forces
//!   the fork path every round, so generations are created and (once the
//!   pin drops) reclaimed at a deterministic rate.
//!
//! The whole replay runs **three times — in-process, wire, TCP** — and
//! every deterministic counter (oracle mismatches, comm rounds/messages/
//! bytes, per-namespace cache hits, generations created/reclaimed, result
//! checksums) is asserted identical across transports before a single
//! `BENCH_mixed.json` is written for the `bench_diff` gate.

use dsr_sync::Arc;
use std::collections::BTreeSet;
use std::time::Duration;

use dsr_cluster::TransportKind;
use dsr_community::CommunityWorkload;
use dsr_core::{DsrIndex, SetQuery, UpdateOp};
use dsr_graph::{DiGraph, TransitiveClosure, VertexId};
use dsr_rdf::{lubm_like_store, RdfWorkload};
use dsr_service::{checksum_pairs, QueryService, ServiceConfig, UpdateMode, Workload, WorkloadRun};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::experiments::common;
use crate::{secs, time, Table};

/// Replay shape shared by all three transport runs.
struct Scenario {
    graph: DiGraph,
    rdf: RdfWorkload,
    community: CommunityWorkload,
    /// Edge chunks the update stream deletes and re-inserts.
    chunks: Vec<Vec<(VertexId, VertexId)>>,
    /// Per-round OLTP query batches.
    oltp: Vec<Vec<SetQuery>>,
    rounds: usize,
}

/// Every deterministic observable of one transport's replay. Asserted
/// identical across transports; the in-process copy is what lands in
/// `BENCH_mixed.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Counters {
    rounds: u64,
    oltp_queries: u64,
    oltp_results: u64,
    oltp_checksum: u64,
    oracle_mismatches: u64,
    pinned_replay_mismatches: u64,
    rdf_run: WorkloadRun,
    community_run: WorkloadRun,
    comm_rounds: u64,
    comm_messages: u64,
    comm_bytes: u64,
    latest_hits: u64,
    pinned_hits: u64,
    cache_misses: u64,
    generations_created: u64,
    generations_reclaimed: u64,
    /// Cache hits recorded in the half-rounds *after* each update batch —
    /// nonzero is the "no bump-and-clear cliff" evidence.
    hits_after_updates: u64,
}

fn scenario(fast: bool) -> Scenario {
    let (universities, people, rounds) = if fast { (2, 90, 4) } else { (4, 240, 8) };
    let store = lubm_like_store(universities, 0xA10);
    let rdf = RdfWorkload::new(store, &["L1", "L2", "L3"]);
    let union_vertices = rdf.union_graph().num_vertices() as VertexId;

    let social = dsr_datagen::social_network(people, 4, 5.0, 0.85, 0xA11);
    let mut edges: Vec<(VertexId, VertexId)> = rdf.union_graph().graph().edge_vec();
    edges.extend(
        social
            .graph
            .edge_vec()
            .into_iter()
            .map(|(u, v)| (u + union_vertices, v + union_vertices)),
    );
    let num_vertices = union_vertices as usize + social.graph.num_vertices();
    let graph = DiGraph::from_edges(num_vertices, &edges);

    // The update stream churns `rounds` disjoint chunks spread across the
    // whole combined edge list (both tenant regions get churned).
    let chunk_len = (edges.len() / (rounds * 4)).max(1);
    let chunks: Vec<Vec<(VertexId, VertexId)>> = (0..rounds)
        .map(|r| {
            edges
                .iter()
                .skip(r * chunk_len)
                .take(chunk_len)
                .copied()
                .collect()
        })
        .collect();

    // Deterministic OLTP batches: repeated templates within a round make
    // the replayed half of the round hit the cache.
    let mut rng = SmallRng::seed_from_u64(0xA12);
    let oltp: Vec<Vec<SetQuery>> = (0..rounds)
        .map(|_| {
            (0..8)
                .map(|_| {
                    let sources: Vec<VertexId> = (0..4)
                        .map(|_| rng.gen_range(0..num_vertices) as VertexId)
                        .collect();
                    let targets: Vec<VertexId> = (0..4)
                        .map(|_| rng.gen_range(0..num_vertices) as VertexId)
                        .collect();
                    SetQuery::new(sources, targets)
                })
                .collect()
        })
        .collect();

    Scenario {
        graph,
        rdf,
        community: CommunityWorkload::new(3),
        chunks,
        oltp,
        rounds,
    }
}

/// One full replay of the mixed-tenant scenario on `transport`.
fn replay(s: &Scenario, slaves: usize, transport: TransportKind) -> (Counters, Duration) {
    let partitioning = common::partition(&s.graph, slaves);
    let index = DsrIndex::build(&s.graph, partitioning, dsr_reach::LocalIndexKind::Dfs);
    let service = QueryService::with_config(
        Arc::new(index),
        ServiceConfig {
            transport,
            // Batches form on the explicit flush inside `query_batch`,
            // never by cap or window expiry — the replay's fusion (and so
            // every comm/cache counter) is bit-reproducible.
            max_batch: usize::MAX,
            max_wait_us: 1_000_000,
            ..ServiceConfig::default()
        },
    );

    // Oracle state: the live edge multiset mirrored next to the service.
    let mut live: BTreeSet<(VertexId, VertexId)> = s.graph.edge_vec().into_iter().collect();
    let mut closure = oracle(&live, s.graph.num_vertices());

    let mut counters = Counters {
        rounds: s.rounds as u64,
        oltp_queries: 0,
        oltp_results: 0,
        oltp_checksum: 0,
        oracle_mismatches: 0,
        pinned_replay_mismatches: 0,
        rdf_run: WorkloadRun {
            queries: 0,
            results: 0,
            checksum: 0,
        },
        community_run: WorkloadRun {
            queries: 0,
            results: 0,
            checksum: 0,
        },
        comm_rounds: 0,
        comm_messages: 0,
        comm_bytes: 0,
        latest_hits: 0,
        pinned_hits: 0,
        cache_misses: 0,
        generations_created: 0,
        generations_reclaimed: 0,
        hits_after_updates: 0,
    };
    let mut oltp_digest: Vec<(u64, u64)> = Vec::new();

    let (_, elapsed) = time(|| {
        for round in 0..s.rounds {
            // 1. Pin the analytical tenants' view for the whole round.
            let snap = service.snapshot();
            let rdf_before = s.rdf.run(&snap).expect("transport stays up for the run");
            let community_before = s
                .community
                .run(&snap)
                .expect("transport stays up for the run");

            // 2. OLTP batch against the latest generation, oracle-checked,
            //    then replayed once so the second pass exercises the cache.
            for pass in 0..2 {
                let reply = service
                    .query_batch(&s.oltp[round])
                    .expect("transport stays up for the run");
                if pass == 0 {
                    counters.oltp_queries += s.oltp[round].len() as u64;
                    for (query, result) in s.oltp[round].iter().zip(&reply.results) {
                        counters.oltp_results += result.len() as u64;
                        let mut got: Vec<(VertexId, VertexId)> = result.to_vec();
                        got.sort_unstable();
                        let mut want = closure.set_reachability(&query.sources, &query.targets);
                        want.sort_unstable();
                        if got != want {
                            counters.oracle_mismatches += 1;
                        }
                        oltp_digest
                            .extend(got.iter().map(|&(a, b)| {
                                ((round as u64) << 32 | u64::from(a), u64::from(b))
                            }));
                    }
                }
            }

            // 3. Update batch: re-insert last round's chunk, delete this
            //    round's. The held pin makes UpdateMode::Auto fork.
            let mut ops: Vec<UpdateOp> = Vec::new();
            if round > 0 {
                for &(u, v) in &s.chunks[round - 1] {
                    if live.insert((u, v)) {
                        ops.push(UpdateOp::Insert(u, v));
                    }
                }
            }
            for &(u, v) in &s.chunks[round] {
                if live.remove(&(u, v)) {
                    ops.push(UpdateOp::Delete(u, v));
                }
            }
            service
                .update(&ops, UpdateMode::Auto)
                .expect("auto forks around the pinned snapshot");
            closure = oracle(&live, s.graph.num_vertices());

            // 4. The pinned tenants replay against their snapshot: answers
            //    must be identical, and the replays land in the pinned
            //    generation's still-live cache namespace.
            let hits_before_replay = cache_hits(&service);
            let rdf_after = s.rdf.run(&snap).expect("transport stays up for the run");
            let community_after = s
                .community
                .run(&snap)
                .expect("transport stays up for the run");
            if rdf_after != rdf_before || community_after != community_before {
                counters.pinned_replay_mismatches += 1;
            }

            // 5. OLTP replays against the *new* latest generation with the
            //    oracle already advanced.
            let reply = service
                .query_batch(&s.oltp[round])
                .expect("transport stays up for the run");
            for (query, result) in s.oltp[round].iter().zip(&reply.results) {
                let mut got: Vec<(VertexId, VertexId)> = result.to_vec();
                got.sort_unstable();
                let mut want = closure.set_reachability(&query.sources, &query.targets);
                want.sort_unstable();
                if got != want {
                    counters.oracle_mismatches += 1;
                }
            }
            counters.hits_after_updates += cache_hits(&service) - hits_before_replay;

            // 6. Fold the per-round workload runs into the totals and drop
            //    the pin — the superseded generation reclaims.
            counters.rdf_run.queries += rdf_before.queries;
            counters.rdf_run.results += rdf_before.results;
            counters.rdf_run.checksum = counters
                .rdf_run
                .checksum
                .wrapping_add(rdf_before.checksum.wrapping_mul(round as u64 + 1));
            counters.community_run.queries += community_before.queries;
            counters.community_run.results += community_before.results;
            counters.community_run.checksum = counters
                .community_run
                .checksum
                .wrapping_add(community_before.checksum.wrapping_mul(round as u64 + 1));
            drop(snap);
        }
    });

    counters.oltp_checksum = checksum_pairs(oltp_digest);
    let comm = service.comm_stats();
    counters.comm_rounds = comm.rounds();
    counters.comm_messages = comm.messages();
    counters.comm_bytes = comm.bytes();
    let namespaces = service.namespace_hits();
    counters.latest_hits = namespaces.latest;
    counters.pinned_hits = namespaces.pinned;
    counters.cache_misses = service.cache_stats().misses();
    let generations = service.generation_stats();
    counters.generations_created = generations.created;
    counters.generations_reclaimed = generations.reclaimed;
    (counters, elapsed)
}

fn cache_hits(service: &QueryService) -> u64 {
    let namespaces = service.namespace_hits();
    namespaces.latest + namespaces.pinned
}

fn oracle(live: &BTreeSet<(VertexId, VertexId)>, num_vertices: usize) -> TransitiveClosure {
    let edges: Vec<(VertexId, VertexId)> = live.iter().copied().collect();
    TransitiveClosure::build(&DiGraph::from_edges(num_vertices, &edges))
}

/// Runs the experiment, renders the table and writes `BENCH_mixed.json`.
pub fn run(fast: bool) -> String {
    let s = scenario(fast);
    let slaves = if fast { 3 } else { common::DEFAULT_SLAVES };

    let transports = [
        ("in-process", TransportKind::InProcess),
        ("wire", TransportKind::Wire),
        ("tcp", TransportKind::Tcp),
    ];
    let runs: Vec<(&str, Counters, Duration)> = transports
        .iter()
        .map(|&(name, kind)| {
            let (counters, elapsed) = replay(&s, slaves, kind);
            (name, counters, elapsed)
        })
        .collect();

    let (_, baseline, _) = &runs[0];
    for (name, counters, _) in &runs[1..] {
        assert_eq!(
            counters, baseline,
            "{name} transport drifted from the in-process counters"
        );
    }
    assert_eq!(
        baseline.oracle_mismatches, 0,
        "OLTP answers match the oracle"
    );
    assert_eq!(
        baseline.pinned_replay_mismatches, 0,
        "pinned workloads reproduce across update batches"
    );
    assert!(
        baseline.pinned_hits > 0,
        "pinned replays must hit their generation's cache namespace"
    );
    assert!(
        baseline.hits_after_updates > 0,
        "cache hit rate must survive update batches (no bump-and-clear cliff)"
    );

    let mut table = Table::new(
        &format!(
            "Mixed tenants: {} vertices, {} edges, {slaves} slaves, {} rounds",
            s.graph.num_vertices(),
            s.graph.num_edges(),
            s.rounds
        ),
        &[
            "Tenant",
            "Queries",
            "Results",
            "Mismatches",
            "Checksum",
            "Notes",
        ],
    );
    table.row(vec![
        "oltp".into(),
        baseline.oltp_queries.to_string(),
        baseline.oltp_results.to_string(),
        baseline.oracle_mismatches.to_string(),
        format!("{:016x}", baseline.oltp_checksum),
        "vs TransitiveClosure oracle".into(),
    ]);
    table.row(vec![
        "rdf-paths".into(),
        baseline.rdf_run.queries.to_string(),
        baseline.rdf_run.results.to_string(),
        baseline.pinned_replay_mismatches.to_string(),
        format!("{:016x}", baseline.rdf_run.checksum),
        "pinned; replayed across update batches".into(),
    ]);
    table.row(vec![
        "community-pairs".into(),
        baseline.community_run.queries.to_string(),
        baseline.community_run.results.to_string(),
        baseline.pinned_replay_mismatches.to_string(),
        format!("{:016x}", baseline.community_run.checksum),
        "pinned; Louvain + pairwise set-reach".into(),
    ]);
    let mut out = table.render();
    out.push_str(&format!(
        "generations: {} created, {} reclaimed | cache hits: {} latest, {} pinned \
         ({} after update batches) | comm: {} rounds, {} messages, {:.1} KB\n",
        baseline.generations_created,
        baseline.generations_reclaimed,
        baseline.latest_hits,
        baseline.pinned_hits,
        baseline.hits_after_updates,
        baseline.comm_rounds,
        baseline.comm_messages,
        baseline.comm_bytes as f64 / 1024.0,
    ));
    for (name, _, elapsed) in &runs {
        out.push_str(&format!(
            "{name}: {}s (counters identical)\n",
            secs(*elapsed)
        ));
    }

    let json = render_json(fast, &s, slaves, &runs);
    match common::write_bench_json("BENCH_mixed.json", &json) {
        Ok(path) => out.push_str(&format!("\nwrote {path}\n")),
        Err(err) => out.push_str(&format!("\nfailed to write BENCH_mixed.json: {err}\n")),
    }
    out
}

fn render_json(
    fast: bool,
    s: &Scenario,
    slaves: usize,
    runs: &[(&str, Counters, Duration)],
) -> String {
    let (_, c, _) = &runs[0];
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"experiment\": \"mixed\",\n");
    json.push_str(&format!("  \"fast\": {fast},\n"));
    json.push_str(&format!(
        "  \"graph\": {{\"vertices\": {}, \"edges\": {}, \"slaves\": {slaves}}},\n",
        s.graph.num_vertices(),
        s.graph.num_edges()
    ));
    json.push_str(&format!("  \"rounds\": {},\n", c.rounds));
    json.push_str("  \"tenants\": [\n");
    json.push_str(&format!(
        "    {{\"name\": \"oltp\", \"queries\": {}, \"results\": {}, \"oracle_mismatches\": {}, \"checksum\": \"{:016x}\"}},\n",
        c.oltp_queries, c.oltp_results, c.oracle_mismatches, c.oltp_checksum
    ));
    json.push_str(&format!(
        "    {{\"name\": \"rdf-paths\", \"queries\": {}, \"results\": {}, \"pinned_replay_mismatches\": {}, \"checksum\": \"{:016x}\"}},\n",
        c.rdf_run.queries, c.rdf_run.results, c.pinned_replay_mismatches, c.rdf_run.checksum
    ));
    json.push_str(&format!(
        "    {{\"name\": \"community-pairs\", \"queries\": {}, \"results\": {}, \"pinned_replay_mismatches\": {}, \"checksum\": \"{:016x}\"}}\n",
        c.community_run.queries,
        c.community_run.results,
        c.pinned_replay_mismatches,
        c.community_run.checksum
    ));
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"snapshots\": {{\"generations_created\": {}, \"generations_reclaimed\": {}, \"latest_hits\": {}, \"pinned_hits\": {}, \"hits_after_updates\": {}, \"cache_misses\": {}}},\n",
        c.generations_created,
        c.generations_reclaimed,
        c.latest_hits,
        c.pinned_hits,
        c.hits_after_updates,
        c.cache_misses
    ));
    json.push_str(&format!(
        "  \"comm\": {{\"rounds\": {}, \"messages\": {}, \"bytes\": {}}},\n",
        c.comm_rounds, c.comm_messages, c.comm_bytes
    ));
    json.push_str("  \"transports\": [\n");
    for (i, (name, _, elapsed)) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{name}\", \"seconds\": {:.6}, \"counters_identical\": true}}{}\n",
            elapsed.as_secs_f64(),
            if i + 1 == runs.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_produces_table_and_json() {
        let out = run(true);
        assert!(out.contains("oltp"));
        assert!(out.contains("rdf-paths"));
        assert!(out.contains("community-pairs"));
        assert!(out.contains("counters identical"));
        let line = out
            .lines()
            .find(|l| l.starts_with("wrote "))
            .expect("wrote line present");
        let path = line.trim_start_matches("wrote ");
        let json = std::fs::read_to_string(path).expect("json readable");
        assert!(json.contains("\"experiment\": \"mixed\""));
        assert!(json.contains("\"oracle_mismatches\": 0"));
        assert!(json.contains("\"pinned_replay_mismatches\": 0"));
        assert!(json.contains("\"generations_created\""));
        assert!(json.contains("\"pinned_hits\""));
        assert!(json.contains("\"counters_identical\": true"));
        // The gate's floor: pinned tenants kept hitting the cache across
        // update batches on this run.
        assert!(!json.contains("\"hits_after_updates\": 0,"));
    }
}
