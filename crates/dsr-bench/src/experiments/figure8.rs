//! Figure 8 — the equivalence-sets optimization applied to Giraph.
//!
//! For the small-graph analogues, Giraph++, Giraph++wEq and plain Giraph
//! run the same 10×10 query; the experiment reports the number of
//! supersteps and the communication volume of each.
//!
//! Reproduced shape: the graph-centric engines need far fewer supersteps
//! than vertex-centric Giraph, and the equivalence-set variant never sends
//! more data than plain Giraph++.

use dsr_giraph::{giraph_pp_set_reachability, giraph_set_reachability, GraphCentricVariant};

use crate::experiments::common::{self, DEFAULT_SLAVES};
use crate::Table;

/// Runs the experiment and renders the table.
pub fn run(fast: bool) -> String {
    let mut table = Table::new(
        "Figure 8: Equivalence-sets optimization in Giraph (supersteps / comm KB)",
        &[
            "Graph",
            "Giraph++wEq supersteps",
            "Giraph++ supersteps",
            "Giraph supersteps",
            "Giraph++wEq comm (KB)",
            "Giraph++ comm (KB)",
            "Giraph comm (KB)",
        ],
    );
    for name in common::small_datasets(fast) {
        let graph = common::dataset(name);
        let partitioning = common::partition(&graph, DEFAULT_SLAVES);
        let query = common::standard_query(&graph, 10, 10, 0x88);

        let weq = giraph_pp_set_reachability(
            &graph,
            &partitioning,
            &query.sources,
            &query.targets,
            GraphCentricVariant::GiraphPlusPlusWithEquivalence,
        );
        let gpp = giraph_pp_set_reachability(
            &graph,
            &partitioning,
            &query.sources,
            &query.targets,
            GraphCentricVariant::GiraphPlusPlus,
        );
        let giraph = giraph_set_reachability(&graph, &partitioning, &query.sources, &query.targets);
        assert_eq!(weq.pairs, gpp.pairs);
        assert_eq!(weq.pairs, giraph.pairs);

        table.row(vec![
            name.to_string(),
            weq.supersteps.to_string(),
            gpp.supersteps.to_string(),
            giraph.supersteps.to_string(),
            format!("{:.1}", weq.kilobytes()),
            format!("{:.1}", gpp.kilobytes()),
            format!("{:.1}", giraph.kilobytes()),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_produces_rows() {
        let out = run(true);
        assert!(out.contains("Figure 8"));
        assert!(out.contains("supersteps"));
    }
}
