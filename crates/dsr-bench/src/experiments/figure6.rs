//! Figure 6 — incremental update evaluation (insertions and deletions).
//!
//! Reproduces the paper's four update workloads over the small-graph
//! analogues:
//!
//! * **bulk insertions** — start from 60% of the edges and grow back to
//!   100% in 5% steps, measuring the update time of every step and the
//!   query time after it;
//! * **progressive insertions** — insert a progressively larger share
//!   (5%–25%) of edges into an index built over the remainder;
//! * **bulk deletions** — shrink the full graph in 5% steps;
//! * **progressive deletions** — delete a progressively larger share.
//!
//! Reproduced shape: insertion steps cost a small fraction of a full
//! rebuild, deletions cost roughly as much as rebuilding the affected
//! partitions, and query times stay within the same order of magnitude
//! throughout.

use dsr_core::{DsrEngine, DsrIndex};
use dsr_graph::DiGraph;
use dsr_reach::LocalIndexKind;

use crate::experiments::common::{self, DEFAULT_SLAVES};
use crate::{secs, time, Table};

/// Runs the experiment and renders one table per workload.
pub fn run(fast: bool) -> String {
    let datasets = if fast {
        vec!["Stanford"]
    } else {
        vec!["Amazon", "NotreDame", "Stanford", "LiveJ-20M"]
    };
    let steps: Vec<f64> = if fast {
        vec![0.60, 0.80, 1.00]
    } else {
        vec![0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.00]
    };
    let progressive: Vec<f64> = if fast {
        vec![0.05, 0.15]
    } else {
        vec![0.05, 0.10, 0.15, 0.20, 0.25]
    };

    let mut out = String::new();
    for name in datasets {
        let graph = common::dataset(name);
        out.push_str(&bulk_insertions(name, &graph, &steps));
        out.push_str(&progressive_insertions(name, &graph, &progressive));
        out.push_str(&bulk_deletions(name, &graph, &steps));
        out.push_str(&progressive_deletions(name, &graph, &progressive));
    }
    out
}

/// A graph rebuilt from the first `fraction` of the edges, plus the kept
/// and remaining edge lists.
type PrefixSplit = (DiGraph, Vec<(u32, u32)>, Vec<(u32, u32)>);

fn prefix_graph(graph: &DiGraph, fraction: f64) -> PrefixSplit {
    let edges = graph.edge_vec();
    let take = (edges.len() as f64 * fraction).round() as usize;
    let base = DiGraph::from_edges(graph.num_vertices(), &edges[..take]);
    (base, edges[..take].to_vec(), edges[take..].to_vec())
}

fn query_time(index: &DsrIndex, graph: &DiGraph) -> std::time::Duration {
    let query = common::standard_query(graph, 10, 10, 0xF6);
    let engine = DsrEngine::new(index);
    let (_, elapsed) = time(|| engine.set_reachability(&query.sources, &query.targets));
    elapsed
}

fn bulk_insertions(name: &str, graph: &DiGraph, steps: &[f64]) -> String {
    let mut table = Table::new(
        &format!("Figure 6 (a/e-style): bulk insertions — {name}"),
        &["Edges kept", "Update time (s)", "Query time (s)"],
    );
    let (base, _, _) = prefix_graph(graph, steps[0]);
    let partitioning = common::partition(graph, DEFAULT_SLAVES);
    let mut index = DsrIndex::build(&base, partitioning, LocalIndexKind::Dfs);
    let all_edges = graph.edge_vec();
    let mut inserted = (all_edges.len() as f64 * steps[0]).round() as usize;
    table.row(vec![
        format!("{:.0}%", steps[0] * 100.0),
        "(initial build)".into(),
        secs(query_time(&index, graph)),
    ]);
    for &step in &steps[1..] {
        let upto = (all_edges.len() as f64 * step).round() as usize;
        let batch = &all_edges[inserted..upto];
        let (_, update_time) = time(|| index.insert_edges(batch));
        inserted = upto;
        table.row(vec![
            format!("{:.0}%", step * 100.0),
            secs(update_time),
            secs(query_time(&index, graph)),
        ]);
    }
    table.render()
}

fn progressive_insertions(name: &str, graph: &DiGraph, fractions: &[f64]) -> String {
    let mut table = Table::new(
        &format!("Figure 6 (b/f-style): progressive insertions — {name}"),
        &[
            "Inserted",
            "Update time (s)",
            "Query time (s)",
            "Full rebuild (s)",
        ],
    );
    let all_edges = graph.edge_vec();
    for &fraction in fractions {
        let keep = ((1.0 - fraction) * all_edges.len() as f64).round() as usize;
        let base = DiGraph::from_edges(graph.num_vertices(), &all_edges[..keep]);
        let partitioning = common::partition(graph, DEFAULT_SLAVES);
        let mut index = DsrIndex::build(&base, partitioning.clone(), LocalIndexKind::Dfs);
        let batch = &all_edges[keep..];
        let (_, update_time) = time(|| index.insert_edges(batch));
        let (_, rebuild_time) = time(|| DsrIndex::build(graph, partitioning, LocalIndexKind::Dfs));
        table.row(vec![
            format!("{:.0}%", fraction * 100.0),
            secs(update_time),
            secs(query_time(&index, graph)),
            secs(rebuild_time),
        ]);
    }
    table.render()
}

fn bulk_deletions(name: &str, graph: &DiGraph, steps: &[f64]) -> String {
    let mut table = Table::new(
        &format!("Figure 6 (c/g-style): bulk deletions — {name}"),
        &["Edges kept", "Update time (s)", "Query time (s)"],
    );
    let partitioning = common::partition(graph, DEFAULT_SLAVES);
    let mut index = DsrIndex::build(graph, partitioning, LocalIndexKind::Dfs);
    let all_edges = graph.edge_vec();
    let mut kept = all_edges.len();
    // Walk the steps downwards from 100%.
    let mut descending: Vec<f64> = steps.to_vec();
    descending.sort_by(|a, b| b.partial_cmp(a).unwrap());
    table.row(vec![
        "100%".into(),
        "(initial build)".into(),
        secs(query_time(&index, graph)),
    ]);
    for &step in descending.iter().skip(1) {
        let target = (all_edges.len() as f64 * step).round() as usize;
        let batch = &all_edges[target..kept];
        let (_, update_time) = time(|| index.delete_edges(batch));
        kept = target;
        table.row(vec![
            format!("{:.0}%", step * 100.0),
            secs(update_time),
            secs(query_time(&index, graph)),
        ]);
    }
    table.render()
}

fn progressive_deletions(name: &str, graph: &DiGraph, fractions: &[f64]) -> String {
    let mut table = Table::new(
        &format!("Figure 6 (d/h-style): progressive deletions — {name}"),
        &["Deleted", "Update time (s)", "Query time (s)"],
    );
    let all_edges = graph.edge_vec();
    for &fraction in fractions {
        let remove = (fraction * all_edges.len() as f64).round() as usize;
        let partitioning = common::partition(graph, DEFAULT_SLAVES);
        let mut index = DsrIndex::build(graph, partitioning, LocalIndexKind::Dfs);
        let batch = &all_edges[all_edges.len() - remove..];
        let (_, update_time) = time(|| index.delete_edges(batch));
        table.row(vec![
            format!("{:.0}%", fraction * 100.0),
            secs(update_time),
            secs(query_time(&index, graph)),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_produces_all_workloads() {
        let out = run(true);
        assert!(out.contains("bulk insertions"));
        assert!(out.contains("progressive insertions"));
        assert!(out.contains("bulk deletions"));
        assert!(out.contains("progressive deletions"));
    }
}
