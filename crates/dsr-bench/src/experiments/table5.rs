//! Table 5 — impact of the partitioning strategy (hash vs. METIS-like).
//!
//! The same DSR index and the same 10×10 query are evaluated once over a
//! hash-partitioned graph and once over a multilevel (METIS-like)
//! partitioning with 5 slaves.
//!
//! Reproduced shape: hash partitioning blows up the cut (and therefore the
//! boundary graphs), so the multilevel partitioning gives equal or better
//! query times; the gap grows with the amount of structure in the graph.

use dsr_core::{DsrEngine, DsrIndex};
use dsr_partition::{HashPartitioner, MultilevelPartitioner, Partitioner};
use dsr_reach::LocalIndexKind;

use crate::experiments::common::{self, DEFAULT_SLAVES};
use crate::{secs, time, Table};

/// Runs the experiment and renders the table.
pub fn run(fast: bool) -> String {
    let mut table = Table::new(
        "Table 5: Impact of hash vs. METIS-like partitioning (query times in seconds)",
        &["Graph", "Hash", "Multilevel", "Hash cut", "Multilevel cut"],
    );
    let mut datasets = common::small_datasets(fast);
    if !fast {
        datasets.push("LiveJ-68M");
    }
    for name in datasets {
        let graph = common::dataset(name);
        let query = common::standard_query(&graph, 10, 10, 0x55);

        let hash = HashPartitioner::default().partition(&graph, DEFAULT_SLAVES);
        let multilevel = MultilevelPartitioner::default().partition(&graph, DEFAULT_SLAVES);
        let hash_cut = hash.cut_size(&graph);
        let ml_cut = multilevel.cut_size(&graph);

        let hash_index = DsrIndex::build(&graph, hash, LocalIndexKind::Dfs);
        let ml_index = DsrIndex::build(&graph, multilevel, LocalIndexKind::Dfs);

        let (hash_pairs, hash_time) =
            time(|| DsrEngine::new(&hash_index).set_reachability(&query.sources, &query.targets));
        let (ml_pairs, ml_time) =
            time(|| DsrEngine::new(&ml_index).set_reachability(&query.sources, &query.targets));
        assert_eq!(
            hash_pairs.pairs, ml_pairs.pairs,
            "{name}: partitioning must not change results"
        );

        table.row(vec![
            name.to_string(),
            secs(hash_time),
            secs(ml_time),
            hash_cut.to_string(),
            ml_cut.to_string(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_produces_rows() {
        let out = run(true);
        assert!(out.contains("Table 5"));
        assert!(out.contains("Multilevel"));
    }
}
