//! Figure 7 — comparison of the local reachability strategies.
//!
//! DSR with plain DFS, with the FERRARI-like interval index and with
//! MS-BFS, over the LiveJournal and Freebase analogues and for query sizes
//! 10×10, 100×100 and 1000×1000.
//!
//! Reproduced shape: DFS is the slowest (one traversal per source), the
//! FERRARI index is fastest on small and medium queries, and MS-BFS closes
//! the gap as the query grows because it shares traversals across sources.

use dsr_core::{DsrEngine, DsrIndex};
use dsr_reach::LocalIndexKind;

use crate::experiments::common::{self, DEFAULT_SLAVES};
use crate::{secs, time, Table};

/// Runs the experiment and renders one table per dataset.
pub fn run(fast: bool) -> String {
    let datasets = if fast {
        vec!["LiveJ-68M"]
    } else {
        vec!["LiveJ-68M", "Freebase-1B"]
    };
    let query_sizes: Vec<usize> = if fast {
        vec![10, 100]
    } else {
        vec![10, 100, 1000]
    };

    let mut out = String::new();
    for name in datasets {
        let graph = common::dataset(name);
        let partitioning = common::partition(&graph, DEFAULT_SLAVES);
        let mut table = Table::new(
            &format!("Figure 7: local reachability strategies — {name}"),
            &["|S|x|T|", "DSR-DFS (s)", "DSR-FERRARI (s)", "DSR-MSBFS (s)"],
        );

        // Build the three indexes once (their build cost is part of
        // indexing, not of the per-query measurements).
        let dfs = DsrIndex::build(&graph, partitioning.clone(), LocalIndexKind::Dfs);
        let ferrari = DsrIndex::build(&graph, partitioning.clone(), LocalIndexKind::Ferrari);
        let msbfs = DsrIndex::build(&graph, partitioning, LocalIndexKind::MsBfs);

        for &size in &query_sizes {
            let size = size.min(graph.num_vertices());
            let query = common::standard_query(&graph, size, size, 0xF7);
            let (dfs_out, dfs_time) =
                time(|| DsrEngine::new(&dfs).set_reachability(&query.sources, &query.targets));
            let (ferrari_out, ferrari_time) =
                time(|| DsrEngine::new(&ferrari).set_reachability(&query.sources, &query.targets));
            let (msbfs_out, msbfs_time) =
                time(|| DsrEngine::new(&msbfs).set_reachability(&query.sources, &query.targets));
            assert_eq!(dfs_out.pairs, ferrari_out.pairs);
            assert_eq!(dfs_out.pairs, msbfs_out.pairs);
            table.row(vec![
                query.label(),
                secs(dfs_time),
                secs(ferrari_time),
                secs(msbfs_time),
            ]);
        }
        out.push_str(&table.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_produces_rows() {
        let out = run(true);
        assert!(out.contains("Figure 7"));
        assert!(out.contains("10x10"));
    }
}
