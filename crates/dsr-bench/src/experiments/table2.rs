//! Table 2 — index sizes for the DSR variants.
//!
//! For every dataset analogue the experiment reports the per-node maximum
//! compound-graph size before ("Original") and after SCC condensation
//! ("DAG"), the total byte size of the DSR index, and the dependency-graph
//! sizes that DSR-Fan and DSR-Naïve build dynamically for a 10×10 query.
//! The paper's headline observations reproduced here: SCC condensation
//! shrinks the compound graphs drastically on highly connected graphs
//! (Twitter/LiveJournal analogues), and the dynamic dependency graphs of
//! DSR-Fan/DSR-Naïve are far larger than the static DSR index.

use dsr_core::baselines::{FanBaseline, NaiveBaseline};

use crate::experiments::common::{self, DEFAULT_SLAVES};
use crate::{megabytes, Table};

/// Runs the experiment and renders the table.
pub fn run(fast: bool) -> String {
    let mut table = Table::new(
        "Table 2: Index sizes for DSR variants",
        &[
            "Graph",
            "DSR Original (#edges)",
            "DSR DAG (#edges)",
            "DSR Size (MB)",
            "Fan dep.graph (#edges)",
            "Naive dep.graph (#edges, avg)",
        ],
    );
    let mut datasets = common::small_datasets(fast);
    if !fast {
        // The paper also lists the large graphs for DSR; include the two
        // extremes (highly connected vs. sparse) to show the condensation
        // effect.
        datasets.push("LiveJ-68M");
        datasets.push("Twitter-1.4B");
        datasets.push("LUBM-1B");
    }
    let query_pairs = if fast { 4 } else { 10 };

    for name in datasets {
        let graph = common::dataset(name);
        let index = common::build_dsr(&graph, DEFAULT_SLAVES);
        let query = common::standard_query(&graph, query_pairs, query_pairs, 0xD5);

        let partitioning = common::partition(&graph, DEFAULT_SLAVES);
        // Fan/Naive dependency graphs only on the small graphs (as in the
        // paper, where they are "n/a" for the large ones).
        let (fan_edges, naive_edges) = if graph.num_edges() <= 50_000 {
            let fan = FanBaseline::new(&graph, partitioning.clone());
            let fan_out = fan.set_reachability(&query.sources, &query.targets);
            let naive = NaiveBaseline::new(&graph, partitioning);
            let naive_out = naive.set_reachability(&query.sources, &query.targets);
            (
                fan_out.dependency_edges.to_string(),
                naive_out.dependency_edges.to_string(),
            )
        } else {
            ("n/a".to_string(), "n/a".to_string())
        };

        table.row(vec![
            name.to_string(),
            index.stats.max_compound_edges().to_string(),
            index.stats.max_dag_edges().to_string(),
            megabytes(index.stats.total_bytes),
            fan_edges,
            naive_edges,
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_produces_rows() {
        let out = run(true);
        assert!(out.contains("Table 2"));
        assert!(out.contains("NotreDame"));
        assert!(out.contains("Stanford"));
    }
}
