//! Differential-update experiment (the Figure 6 shape, measured on the
//! wire).
//!
//! Where the `figure6` experiment reports wall-clock update times per
//! dataset, this experiment measures what the differential pipeline
//! actually *ships*: every update batch flows through
//! [`DsrIndex::apply_updates_with_transport`], so the reported
//! rounds/messages/bytes are the measured wire size of the
//! `SummaryDelta` refresh messages — the same units as query
//! communication. Three workloads:
//!
//! 1. **bulk** — insert the held-back 20% of the edges in one batch and
//!    compare against a full index rebuild (the paper's headline claim:
//!    bulk insertion costs a fraction of a rebuild);
//! 2. **progressive** — the same edges in many small batches, the worst
//!    case for per-batch overhead;
//! 3. **interleaved** — a live [`QueryService`] alternating query batches
//!    with [`QueryService::apply_updates`] batches from a consistent
//!    [`update_stream`], exercising coalescing and generation-correct
//!    cache invalidation under load.
//!
//! The bulk workload additionally re-runs under the serializing
//! [`WireTransport`] **and** under a loopback
//! [`TcpTransport`] cluster, asserting that
//! both report [`UpdateStats`] **byte-identical** to the in-process run —
//! update cost cannot drift from what a real byte substrate would ship.
//!
//! The run writes `BENCH_updates.json` (into `$DSR_BENCH_DIR` or the
//! working directory); the bench-smoke CI job archives it next to
//! `BENCH_throughput.json`.

use dsr_sync::Arc;
use std::time::Duration;

use dsr_cluster::{FailoverSnapshot, InProcess, TcpTransport, UpdateStats, WireTransport};
use dsr_core::{DsrEngine, DsrIndex, SetQuery, UpdateOp};
use dsr_datagen::{query_stream, update_stream, EdgeOp, StreamConfig, UpdateStreamConfig};
use dsr_graph::DiGraph;
use dsr_partition::Partitioning;
use dsr_reach::LocalIndexKind;
use dsr_service::{QueryService, ServiceConfig, UpdateMode};

use crate::experiments::common;
use crate::{secs, time, Table};

/// Measurements of one update workload.
struct WorkloadResult {
    name: &'static str,
    transport: &'static str,
    ops: usize,
    batches: usize,
    elapsed: Duration,
    stats: UpdateStats,
    refreshed: usize,
    patched: usize,
    /// Full-rebuild comparison time (bulk only).
    rebuild: Option<Duration>,
    /// Queries answered while updating (interleaved only).
    queries: usize,
    invalidations: u64,
    /// Failover counters (retries/suspects/resyncs). All zeros everywhere
    /// but the TCP workload — and gated at zero there too: a no-fault bench
    /// run that fails over is a regression, not noise.
    failover: FailoverSnapshot,
}

impl WorkloadResult {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

fn op_of(edge_op: EdgeOp) -> UpdateOp {
    match edge_op {
        EdgeOp::Insert(u, v) => UpdateOp::Insert(u, v),
        EdgeOp::Delete(u, v) => UpdateOp::Delete(u, v),
    }
}

/// Runs the experiment, renders the table and writes `BENCH_updates.json`.
pub fn run(fast: bool) -> String {
    let (graph_name, graph): (&str, DiGraph) = if fast {
        ("web-2k", dsr_datagen::web_graph(600, 4.0, 12, 0.7, 0xDE))
    } else {
        ("Stanford", common::dataset("Stanford"))
    };
    let slaves = if fast { 3 } else { common::DEFAULT_SLAVES };
    let progressive_batches = if fast { 8 } else { 20 };
    let interleaved_rounds = if fast { 8 } else { 32 };
    let interleaved_ops_per_round = if fast { 16 } else { 64 };
    let interleaved_queries_per_round = if fast { 16 } else { 64 };

    let partitioning = common::partition(&graph, slaves);
    let edges = graph.edge_vec();
    let keep = (edges.len() as f64 * 0.8).round() as usize;
    let base = DiGraph::from_edges(graph.num_vertices(), &edges[..keep]);
    let tail: Vec<UpdateOp> = edges[keep..]
        .iter()
        .map(|&(u, v)| UpdateOp::Insert(u, v))
        .collect();

    // --- Workload 1: bulk insertion vs full rebuild. ---------------------
    let mut index = build(&base, &partitioning);
    let (outcome, bulk_time) = time(|| {
        index
            .apply_updates_with_transport(&tail, &InProcess)
            .expect("in-process transport never fails")
    });
    let (_, rebuild_time) = time(|| build(&graph, &partitioning));
    assert_answers_match(&index, &build(&graph, &partitioning), &graph);
    let bulk = WorkloadResult {
        name: "bulk",
        transport: "in-process",
        ops: tail.len(),
        batches: 1,
        elapsed: bulk_time,
        stats: outcome.stats,
        refreshed: outcome.refreshed_summaries.len(),
        patched: outcome.patched_compounds.len(),
        rebuild: Some(rebuild_time),
        queries: 0,
        invalidations: 0,
        failover: FailoverSnapshot::default(),
    };

    // --- Workload 1b: the same bulk batch over the wire transport. -------
    let mut wired_index = build(&base, &partitioning);
    let wire = WireTransport::new();
    let (wire_outcome, wire_time) = time(|| {
        wired_index
            .apply_updates_with_transport(&tail, &wire)
            .expect("pipe transport never fails in-process")
    });
    assert_eq!(
        wire_outcome.stats, outcome.stats,
        "wire update stats must be byte-identical to the in-process run"
    );
    let bulk_wire = WorkloadResult {
        name: "bulk_wire",
        transport: "wire",
        ops: tail.len(),
        batches: 1,
        elapsed: wire_time,
        stats: wire_outcome.stats,
        refreshed: wire_outcome.refreshed_summaries.len(),
        patched: wire_outcome.patched_compounds.len(),
        rebuild: None,
        queries: 0,
        invalidations: 0,
        failover: FailoverSnapshot::default(),
    };

    // --- Workload 1c: the same bulk batch over a loopback TCP cluster. ---
    let mut tcp_index = build(&base, &partitioning);
    let tcp = TcpTransport::loopback();
    let (tcp_outcome, tcp_time) = time(|| {
        tcp_index
            .apply_updates_with_transport(&tail, &tcp)
            .expect("loopback tcp cluster stays up for the run")
    });
    assert_eq!(
        tcp_outcome.stats, outcome.stats,
        "tcp update stats must be byte-identical to the in-process run"
    );
    let bulk_tcp = WorkloadResult {
        name: "bulk_tcp",
        transport: "tcp",
        ops: tail.len(),
        batches: 1,
        elapsed: tcp_time,
        stats: tcp_outcome.stats,
        refreshed: tcp_outcome.refreshed_summaries.len(),
        patched: tcp_outcome.patched_compounds.len(),
        rebuild: None,
        queries: 0,
        invalidations: 0,
        failover: tcp.failover_stats().snapshot(),
    };

    // --- Workload 2: progressive insertion in small batches. -------------
    let mut index = build(&base, &partitioning);
    let chunk = tail.len().div_ceil(progressive_batches).max(1);
    let mut progressive_stats = UpdateStats::default();
    let mut refreshed = 0usize;
    let mut patched = 0usize;
    let (batches, progressive_time) = time(|| {
        let mut batches = 0usize;
        for ops in tail.chunks(chunk) {
            let outcome = index
                .apply_updates_with_transport(ops, &InProcess)
                .expect("in-process transport never fails");
            progressive_stats.merge(&outcome.stats);
            refreshed += outcome.refreshed_summaries.len();
            patched += outcome.patched_compounds.len();
            batches += 1;
        }
        batches
    });
    assert_answers_match(&index, &build(&graph, &partitioning), &graph);
    let progressive = WorkloadResult {
        name: "progressive",
        transport: "in-process",
        ops: tail.len(),
        batches,
        elapsed: progressive_time,
        stats: progressive_stats,
        refreshed,
        patched,
        rebuild: None,
        queries: 0,
        invalidations: 0,
        failover: FailoverSnapshot::default(),
    };

    // --- Workload 3: interleaved queries and updates on a live service. --
    let service = QueryService::with_config(
        Arc::new(build(&graph, &partitioning)),
        ServiceConfig::default(),
    );
    let stream = update_stream(
        &graph,
        &UpdateStreamConfig {
            num_ops: interleaved_rounds * interleaved_ops_per_round,
            insert_fraction: 0.6,
            seed: 0xF6,
        },
    );
    let queries = query_stream(
        &graph,
        &StreamConfig {
            num_queries: interleaved_rounds * interleaved_queries_per_round,
            num_sources: 8,
            num_targets: 8,
            distinct: 24,
            skew: 0.99,
            pattern: dsr_datagen::ArrivalPattern::ClosedLoop,
            seed: 0x1A,
        },
    );
    let query_batches: Vec<Vec<SetQuery>> = queries
        .queries()
        .map(|q| SetQuery::new(q.sources.clone(), q.targets.clone()))
        .collect::<Vec<_>>()
        .chunks(interleaved_queries_per_round)
        .map(<[SetQuery]>::to_vec)
        .collect();
    let mut answered = 0usize;
    let (_, interleaved_time) = time(|| {
        for (round, ops) in stream.chunks(interleaved_ops_per_round).enumerate() {
            let ops: Vec<UpdateOp> = ops.iter().map(|&op| op_of(op)).collect();
            service
                .update(&ops, UpdateMode::Auto)
                .expect("auto forks if the scheduler briefly pins");
            if let Some(batch) = query_batches.get(round) {
                answered += service
                    .query_batch(batch)
                    .expect("in-process transport never fails")
                    .results
                    .len();
            }
        }
    });
    let interleaved = WorkloadResult {
        name: "interleaved",
        transport: "in-process",
        ops: stream.len(),
        batches: interleaved_rounds,
        elapsed: interleaved_time,
        stats: service.update_stats(),
        refreshed: 0,
        patched: 0,
        rebuild: None,
        queries: answered,
        invalidations: service.cache_stats().invalidations(),
        failover: service.failover_stats(),
    };

    let workloads = [bulk, bulk_wire, bulk_tcp, progressive, interleaved];

    // --- Render. ---------------------------------------------------------
    let mut table = Table::new(
        &format!(
            "Differential updates: {graph_name} ({} vertices, {} edges), {slaves} slaves",
            graph.num_vertices(),
            graph.num_edges()
        ),
        &[
            "Workload",
            "Transport",
            "Ops",
            "Batches",
            "Time (s)",
            "Ops/s",
            "Rounds",
            "Messages",
            "Update KB",
            "Notes",
        ],
    );
    for w in &workloads {
        let mut notes = Vec::new();
        if let Some(rebuild) = w.rebuild {
            notes.push(format!("full rebuild {}s", secs(rebuild)));
        }
        if w.queries > 0 {
            notes.push(format!(
                "{} queries, {} invalidations",
                w.queries, w.invalidations
            ));
        }
        table.row(vec![
            w.name.to_string(),
            w.transport.to_string(),
            w.ops.to_string(),
            w.batches.to_string(),
            secs(w.elapsed),
            format!("{:.0}", w.ops_per_sec()),
            w.stats.update_rounds.to_string(),
            w.stats.update_messages.to_string(),
            format!("{:.1}", w.stats.update_bytes as f64 / 1024.0),
            notes.join("; "),
        ]);
    }
    let mut out = table.render();

    let json = render_json(fast, graph_name, &graph, slaves, &workloads);
    match write_json(&json) {
        Ok(path) => out.push_str(&format!("\nwrote {path}\n")),
        Err(err) => out.push_str(&format!("\nfailed to write BENCH_updates.json: {err}\n")),
    }
    out
}

fn build(graph: &DiGraph, partitioning: &Partitioning) -> DsrIndex {
    DsrIndex::build(graph, partitioning.clone(), LocalIndexKind::Dfs)
}

/// The incrementally maintained index must answer exactly like a fresh
/// build over the final graph.
fn assert_answers_match(updated: &DsrIndex, fresh: &DsrIndex, graph: &DiGraph) {
    let query = common::standard_query(graph, 10, 10, 0xF6);
    assert_eq!(
        DsrEngine::new(updated)
            .set_reachability(&query.sources, &query.targets)
            .pairs,
        DsrEngine::new(fresh)
            .set_reachability(&query.sources, &query.targets)
            .pairs,
        "differentially updated index must match a fresh rebuild"
    );
}

fn render_json(
    fast: bool,
    graph_name: &str,
    graph: &DiGraph,
    slaves: usize,
    workloads: &[WorkloadResult],
) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"experiment\": \"updates\",\n");
    json.push_str(&format!("  \"fast\": {fast},\n"));
    json.push_str(&format!(
        "  \"graph\": {{\"name\": \"{graph_name}\", \"vertices\": {}, \"edges\": {}, \"slaves\": {slaves}}},\n",
        graph.num_vertices(),
        graph.num_edges()
    ));
    let find = |name: &str| {
        workloads
            .iter()
            .find(|w| w.name == name)
            .unwrap_or_else(|| panic!("workload {name} present"))
    };
    let bulk = find("bulk");
    let rebuild_secs = bulk.rebuild.expect("bulk records rebuild").as_secs_f64();
    json.push_str(&format!(
        "  \"figure6_shape\": {{\"bulk_update_seconds\": {:.6}, \"full_rebuild_seconds\": {:.6}, \"update_vs_rebuild\": {:.4}}},\n",
        bulk.elapsed.as_secs_f64(),
        rebuild_secs,
        bulk.elapsed.as_secs_f64() / rebuild_secs.max(1e-9)
    ));
    let wire = find("bulk_wire");
    json.push_str(&format!(
        "  \"wire\": {{\"seconds\": {:.6}, \"overhead_vs_in_process\": {:.3}, \"stats_identical\": true}},\n",
        wire.elapsed.as_secs_f64(),
        wire.elapsed.as_secs_f64() / bulk.elapsed.as_secs_f64().max(1e-9)
    ));
    let tcp = find("bulk_tcp");
    json.push_str(&format!(
        "  \"tcp\": {{\"seconds\": {:.6}, \"overhead_vs_in_process\": {:.3}, \"stats_identical\": true}},\n",
        tcp.elapsed.as_secs_f64(),
        tcp.elapsed.as_secs_f64() / bulk.elapsed.as_secs_f64().max(1e-9)
    ));
    json.push_str("  \"workloads\": [\n");
    for (i, w) in workloads.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"transport\": \"{}\", \"ops\": {}, \"batches\": {}, \"seconds\": {:.6}, \"ops_per_sec\": {:.1}, \"update_rounds\": {}, \"update_messages\": {}, \"update_bytes\": {}, \"refreshed_summaries\": {}, \"patched_compounds\": {}, \"queries\": {}, \"cache_invalidations\": {}, \"failover_retries\": {}, \"failover_suspects\": {}, \"failover_resyncs\": {}}}{}\n",
            w.name,
            w.transport,
            w.ops,
            w.batches,
            w.elapsed.as_secs_f64(),
            w.ops_per_sec(),
            w.stats.update_rounds,
            w.stats.update_messages,
            w.stats.update_bytes,
            w.refreshed,
            w.patched,
            w.queries,
            w.invalidations,
            w.failover.retries,
            w.failover.suspects,
            w.failover.resyncs,
            if i + 1 == workloads.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

fn write_json(json: &str) -> std::io::Result<String> {
    common::write_bench_json("BENCH_updates.json", json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_produces_table_and_json() {
        let out = run(true);
        assert!(out.contains("bulk"));
        assert!(out.contains("bulk_wire"));
        assert!(out.contains("bulk_tcp"));
        assert!(out.contains("progressive"));
        assert!(out.contains("interleaved"));
        let line = out
            .lines()
            .find(|l| l.starts_with("wrote "))
            .expect("wrote line present");
        let path = line.trim_start_matches("wrote ");
        let json = std::fs::read_to_string(path).expect("json readable");
        assert!(json.contains("\"experiment\": \"updates\""));
        assert!(json.contains("\"figure6_shape\""));
        assert!(json.contains("\"update_vs_rebuild\""));
        assert!(json.contains("\"stats_identical\": true"));
        assert!(json.contains("\"transport\": \"wire\""));
        assert!(json.contains("\"transport\": \"tcp\""));
        assert!(json.contains("\"cache_invalidations\""));
        // Failover counters are emitted for every workload and are all
        // zero on this fault-free run (bench_diff gates them at zero).
        assert!(json.contains("\"failover_retries\": 0"));
        assert!(json.contains("\"failover_suspects\": 0"));
        assert!(json.contains("\"failover_resyncs\": 0"));
        assert!(!json.contains("\"failover_retries\": 1"));
    }
}
