//! `dsr-lint` — the workspace's protocol-invariant linter.
//!
//! A dependency-free static-analysis pass over the repository's Rust
//! sources, enforcing the project invariants that `rustc`/clippy cannot see:
//!
//! * **`sync-facade`** — no `std::sync::` / `std::thread::` references
//!   outside `crates/dsr-sync` and `shims/`. Every sync primitive must be
//!   imported through the `dsr-sync` facade so model builds
//!   (`--cfg dsr_model`) instrument it.
//! * **`lock-unwrap`** — no `.unwrap()` / `.expect(..)` on lock results
//!   (`.lock()`, `.wait(..)`, `.wait_timeout(..)`) or on calls returning
//!   `Result<_, TransportError>` in non-test library code. Lock poisoning
//!   is recovered through `dsr_sync::lock`/`wait`/`wait_timeout` (see the
//!   documented policy in `dsr-sync`); transport errors are typed and must
//!   be propagated, not crashed on.
//! * **`wire-roundtrip`** — every named type with an `impl Wire for ..`
//!   must be mentioned in test code of its crate (a round-trip test), so
//!   no protocol message ships without serialization coverage.
//! * **`no-debug-macros`** — no `todo!(..)` / `dbg!(..)` in library code.
//! * **`snapshot-facade`** — no direct `SnapshotHolder` access outside
//!   `crates/dsr-service/src/snapshot.rs`. The generation chain owns the
//!   holder; every other layer reads through `QueryService::snapshot()` /
//!   `SnapshotRef`, so pin accounting and namespace reclamation cannot be
//!   bypassed.
//!
//! Findings are machine-readable (`path:line: rule: message`, one per
//! line), and the process exits nonzero if any survive the allowlist.
//!
//! Documented exceptions live in `dsr-lint.allow` at the repository root:
//! one `rule path-substring` pair per line (`#` comments allowed). A
//! finding is suppressed when its rule matches and its path contains the
//! substring.
//!
//! Heuristics (deliberate, documented): strings and comments are stripped
//! with a character scanner before matching, so prose mentioning
//! `std::sync` never trips the lint; everything from the first
//! `#[cfg(test)]` line to end of file counts as test code (workspace
//! convention keeps the tests module last); chained-call rules match
//! within a single line.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One reported violation.
struct Finding {
    path: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

/// A suppression from `dsr-lint.allow`.
struct Allow {
    rule: String,
    path_substring: String,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root = PathBuf::from(".");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("dsr-lint: --root requires a directory argument");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                eprintln!("usage: dsr-lint [--root <repo-root>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("dsr-lint: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let files = collect_rust_files(&root);
    if files.is_empty() {
        eprintln!("dsr-lint: no Rust sources found under {}", root.display());
        return ExitCode::from(2);
    }
    let allows = load_allowlist(&root.join("dsr-lint.allow"));

    let sources: Vec<SourceFile> = files.iter().map(|p| SourceFile::load(&root, p)).collect();
    let transport_methods = collect_transport_result_methods(&sources);

    let mut findings: Vec<Finding> = Vec::new();
    for source in &sources {
        check_sync_facade(source, &mut findings);
        check_lock_unwrap(source, &transport_methods, &mut findings);
        check_debug_macros(source, &mut findings);
        check_snapshot_facade(source, &mut findings);
    }
    check_wire_roundtrip(&sources, &mut findings);

    let mut reported = 0usize;
    for finding in &findings {
        let path = finding.path.display().to_string();
        if allows
            .iter()
            .any(|a| a.rule == finding.rule && path.contains(&a.path_substring))
        {
            continue;
        }
        println!(
            "{}:{}: {}: {}",
            path, finding.line, finding.rule, finding.message
        );
        reported += 1;
    }
    if reported > 0 {
        eprintln!("dsr-lint: {reported} finding(s)");
        ExitCode::FAILURE
    } else {
        eprintln!("dsr-lint: clean ({} files)", sources.len());
        ExitCode::SUCCESS
    }
}

// ---------------------------------------------------------------------------
// File collection and preprocessing
// ---------------------------------------------------------------------------

/// Rust sources under the workspace's code roots, skipping build output.
fn collect_rust_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        walk(&root.join(top), &mut files);
    }
    files.sort();
    files
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// A preprocessed source file: original lines for context plus a
/// comment/string-stripped shadow used for all matching.
struct SourceFile {
    /// Path relative to the lint root (stable output regardless of cwd).
    rel: PathBuf,
    /// Stripped lines (strings/comments blanked, line structure intact).
    code: Vec<String>,
    /// First line (1-based) of the `#[cfg(test)]` region, if any.
    test_region_start: Option<usize>,
}

impl SourceFile {
    fn load(root: &Path, path: &Path) -> SourceFile {
        let text = std::fs::read_to_string(path).unwrap_or_default();
        let stripped = strip_strings_and_comments(&text);
        let code: Vec<String> = stripped.lines().map(str::to_owned).collect();
        let test_region_start = code
            .iter()
            .position(|l| l.contains("#[cfg(test)]"))
            .map(|i| i + 1);
        let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
        SourceFile {
            rel,
            code,
            test_region_start,
        }
    }

    fn rel_str(&self) -> String {
        self.rel.display().to_string()
    }

    /// True when `line` (1-based) is in the trailing `#[cfg(test)]` region.
    fn is_test_line(&self, line: usize) -> bool {
        self.test_region_start.is_some_and(|start| line >= start)
    }

    /// Library code: a file under some `src/` directory (crate sources as
    /// opposed to integration tests, examples or benches).
    fn is_library_file(&self) -> bool {
        self.rel.components().any(|c| c.as_os_str() == "src")
    }

    fn is_in(&self, prefix: &str) -> bool {
        self.rel_str().starts_with(prefix)
    }
}

/// Blanks out comments (line, nested block), string literals (plain and
/// raw) and char literals, preserving newlines so line numbers survive.
fn strip_strings_and_comments(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let next = bytes.get(i + 1).copied();
        match b {
            b'/' if next == Some(b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if next == Some(b'*') => {
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            out.push(b'\n');
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                out.push(b'"');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            out.push(b'"');
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            out.push(b'\n');
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
            }
            b'r' if matches!(next, Some(b'"') | Some(b'#')) && is_raw_string_start(bytes, i) => {
                let (consumed, newlines) = skip_raw_string(bytes, i);
                out.push(b'"');
                out.extend(std::iter::repeat_n(b'\n', newlines));
                out.push(b'"');
                i += consumed;
            }
            b'\'' => {
                // Char literal vs lifetime: a literal closes with a quote
                // within a few chars ('x', '\n', '\u{1F600}').
                if let Some(len) = char_literal_len(bytes, i) {
                    out.push(b'\'');
                    out.push(b'\'');
                    i += len;
                } else {
                    out.push(b'\'');
                    i += 1;
                }
            }
            _ => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = i + 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Returns (bytes consumed, newlines inside) for a raw string at `i`.
fn skip_raw_string(bytes: &[u8], i: usize) -> (usize, usize) {
    let mut j = i + 1;
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    let mut newlines = 0usize;
    while j < bytes.len() {
        if bytes[j] == b'\n' {
            newlines += 1;
        }
        if bytes[j] == b'"' {
            let mut k = j + 1;
            let mut closing = 0usize;
            while closing < hashes && bytes.get(k) == Some(&b'#') {
                closing += 1;
                k += 1;
            }
            if closing == hashes {
                return (k - i, newlines);
            }
        }
        j += 1;
    }
    (bytes.len() - i, newlines)
}

/// Length of a char literal starting at `i`, or `None` for a lifetime.
fn char_literal_len(bytes: &[u8], i: usize) -> Option<usize> {
    let max = (i + 12).min(bytes.len());
    let mut j = i + 1;
    if bytes.get(j) == Some(&b'\\') {
        j += 2; // escape plus escaped char; \u{..} handled by the scan below
    }
    while j < max {
        match bytes[j] {
            b'\'' => return Some(j + 1 - i),
            b'\n' => return None,
            _ => j += 1,
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Rule: sync-facade
// ---------------------------------------------------------------------------

fn check_sync_facade(source: &SourceFile, findings: &mut Vec<Finding>) {
    if source.is_in("crates/dsr-sync") || source.is_in("shims") || source.is_in("crates/dsr-lint") {
        return;
    }
    for (idx, line) in source.code.iter().enumerate() {
        for needle in ["std::sync", "std::thread"] {
            if let Some(pos) = line.find(needle) {
                // `std::thread` must not also match e.g. `my_std::thread`.
                let prefixed = pos > 0 && line.as_bytes()[pos - 1].is_ascii_alphanumeric();
                let underscore = pos > 0 && line.as_bytes()[pos - 1] == b'_';
                if prefixed || underscore {
                    continue;
                }
                findings.push(Finding {
                    path: source.rel.clone(),
                    line: idx + 1,
                    rule: "sync-facade",
                    message: format!(
                        "references `{needle}` directly; import sync primitives \
                         through the dsr-sync facade so model builds instrument them"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: lock-unwrap
// ---------------------------------------------------------------------------

/// Method names declared to return `Result<_, TransportError>` anywhere in
/// the tree. Signature may span lines; the declaration scan joins each `fn`
/// line with its continuation up to the opening brace.
fn collect_transport_result_methods(sources: &[SourceFile]) -> BTreeSet<String> {
    let mut methods = BTreeSet::new();
    for source in sources {
        let lines = &source.code;
        for (idx, line) in lines.iter().enumerate() {
            let Some(fn_pos) = find_fn_decl(line) else {
                continue;
            };
            let name: String = line[fn_pos..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if name.is_empty() {
                continue;
            }
            // Join the signature until its body opens (or a handful of
            // lines, whichever first).
            let mut signature = String::new();
            for l in lines.iter().skip(idx).take(8) {
                signature.push_str(l);
                signature.push(' ');
                if l.contains('{') || l.contains(';') {
                    break;
                }
            }
            if let Some(arrow) = signature.find("->") {
                let ret = &signature[arrow..];
                if ret.contains("TransportError") && ret.contains("Result<") {
                    methods.insert(name);
                }
            }
        }
    }
    methods
}

/// Position just past `fn ` in a function declaration, if this line has one.
fn find_fn_decl(line: &str) -> Option<usize> {
    let pos = line.find("fn ")?;
    // Require a word boundary before `fn` (start, space, or `(` for closures
    // is not a declaration we care about misreading — names still parse).
    if pos > 0 {
        let before = line.as_bytes()[pos - 1];
        if before.is_ascii_alphanumeric() || before == b'_' {
            return None;
        }
    }
    Some(pos + 3)
}

fn check_lock_unwrap(
    source: &SourceFile,
    transport_methods: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    if !source.is_library_file() || source.is_in("crates/dsr-lint") {
        return;
    }
    // dsr-sync's own helpers implement the recovery policy.
    if source.is_in("crates/dsr-sync") || source.is_in("shims") {
        return;
    }
    for (idx, line) in source.code.iter().enumerate() {
        let lineno = idx + 1;
        if source.is_test_line(lineno) {
            continue;
        }
        for lock_call in [".lock()", ".try_lock()", ".wait(", ".wait_timeout("] {
            if let Some(pos) = line.find(lock_call) {
                let rest = &line[pos..];
                // A condvar wait always passes the guard; `.wait()` with no
                // arguments is some other API (e.g. a completion handle).
                if lock_call == ".wait(" && rest.starts_with(".wait()") {
                    continue;
                }
                if rest.contains(".unwrap()") || rest.contains(".expect(") {
                    findings.push(Finding {
                        path: source.rel.clone(),
                        line: lineno,
                        rule: "lock-unwrap",
                        message: format!(
                            "unwraps a lock result (`{lock_call}..`); use \
                             dsr_sync::lock/wait/wait_timeout (documented \
                             poison-recovery policy) instead"
                        ),
                    });
                    break;
                }
            }
        }
        for method in transport_methods {
            let call = format!(".{method}(");
            if let Some(pos) = line.find(call.as_str()) {
                let rest = &line[pos..];
                if rest.contains(".unwrap()") || rest.contains(".expect(") {
                    findings.push(Finding {
                        path: source.rel.clone(),
                        line: lineno,
                        rule: "lock-unwrap",
                        message: format!(
                            "unwraps `Result<_, TransportError>` from `{method}()` \
                             in non-test code; propagate the typed error instead"
                        ),
                    });
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: wire-roundtrip
// ---------------------------------------------------------------------------

fn check_wire_roundtrip(sources: &[SourceFile], findings: &mut Vec<Finding>) {
    // Collect (crate root, type name, file, line) for every named impl.
    let mut impls: Vec<(String, String, PathBuf, usize)> = Vec::new();
    for source in sources {
        let Some(crate_root) = crate_root_of(&source.rel_str()) else {
            continue;
        };
        for (idx, line) in source.code.iter().enumerate() {
            let Some(target) = wire_impl_target(line) else {
                continue;
            };
            // Generic containers and primitives are covered by the
            // primitive round-trip tests; named protocol types must each
            // be exercised explicitly.
            if matches!(
                target.as_str(),
                "u32" | "u64" | "bool" | "Vec" | "Option" | ""
            ) {
                continue;
            }
            impls.push((crate_root.clone(), target, source.rel.clone(), idx + 1));
        }
    }
    if impls.is_empty() {
        return;
    }

    for (crate_root, target, path, line) in impls {
        // Test corpus: `#[cfg(test)]` regions of library files in the same
        // crate, plus the crate's `tests/` directory, plus the workspace
        // top-level `tests/`.
        let covered = sources.iter().any(|s| {
            let in_crate_tests = s.rel_str().starts_with(&format!("{crate_root}/tests/"));
            let in_workspace_tests = s.rel_str().starts_with("tests/");
            let same_crate_lib = crate_root_of(&s.rel_str()).as_deref() == Some(&crate_root);
            s.code.iter().enumerate().any(|(i, l)| {
                if !l.contains(target.as_str()) {
                    return false;
                }
                in_crate_tests || in_workspace_tests || (same_crate_lib && s.is_test_line(i + 1))
            })
        });
        if !covered {
            findings.push(Finding {
                path,
                line,
                rule: "wire-roundtrip",
                message: format!(
                    "`{target}` implements Wire but is not named in any \
                     round-trip test of its crate"
                ),
            });
        }
    }
}

/// `crates/<name>` prefix of a path, if it is inside a workspace crate.
fn crate_root_of(rel: &str) -> Option<String> {
    let mut parts = rel.split('/');
    if parts.next()? != "crates" {
        return None;
    }
    Some(format!("crates/{}", parts.next()?))
}

/// Base identifier of the target type in an `impl .. Wire for <T>` line.
fn wire_impl_target(line: &str) -> Option<String> {
    let impl_pos = line.find("impl")?;
    let wire_pos = line.find(" Wire for ")?;
    if wire_pos < impl_pos {
        return None;
    }
    let target = line[wire_pos + " Wire for ".len()..].trim_start();
    let name: String = target
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    Some(name)
}

// ---------------------------------------------------------------------------
// Rule: no-debug-macros
// ---------------------------------------------------------------------------

fn check_debug_macros(source: &SourceFile, findings: &mut Vec<Finding>) {
    if !source.is_library_file() || source.is_in("crates/dsr-lint") {
        return;
    }
    for (idx, line) in source.code.iter().enumerate() {
        let lineno = idx + 1;
        if source.is_test_line(lineno) {
            continue;
        }
        for needle in ["todo!(", "dbg!("] {
            if let Some(pos) = line.find(needle) {
                let prefixed = pos > 0 && {
                    let b = line.as_bytes()[pos - 1];
                    b.is_ascii_alphanumeric() || b == b'_'
                };
                if prefixed {
                    continue;
                }
                findings.push(Finding {
                    path: source.rel.clone(),
                    line: lineno,
                    rule: "no-debug-macros",
                    message: format!("`{}..)` left in library code", &needle[..needle.len() - 1]),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: snapshot-facade
// ---------------------------------------------------------------------------

/// The generation chain in `dsr-service::snapshot` is the only code allowed
/// to touch the raw `SnapshotHolder`: everything else must pin through
/// `QueryService::snapshot()` so generation retention and cache-namespace
/// reclamation stay accounted.
fn check_snapshot_facade(source: &SourceFile, findings: &mut Vec<Finding>) {
    if source.is_in("crates/dsr-service/src/snapshot.rs") || source.is_in("crates/dsr-lint") {
        return;
    }
    for (idx, line) in source.code.iter().enumerate() {
        if let Some(pos) = line.find("SnapshotHolder") {
            let prefixed = pos > 0 && {
                let b = line.as_bytes()[pos - 1];
                b.is_ascii_alphanumeric() || b == b'_'
            };
            if prefixed {
                continue;
            }
            findings.push(Finding {
                path: source.rel.clone(),
                line: idx + 1,
                rule: "snapshot-facade",
                message: "accesses `SnapshotHolder` directly; pin a generation through \
                          `QueryService::snapshot()` so retention and cache-namespace \
                          reclamation stay accounted"
                    .to_owned(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Allowlist
// ---------------------------------------------------------------------------

fn load_allowlist(path: &Path) -> Vec<Allow> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (rule, path_substring) = l.split_once(char::is_whitespace)?;
            Some(Allow {
                rule: rule.to_owned(),
                path_substring: path_substring.trim().to_owned(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripper_removes_comments_and_strings_keeps_lines() {
        let src = "let a = \"std::sync\"; // std::thread\n/* std::sync\nstd::sync */ let b = 1;\n";
        let stripped = strip_strings_and_comments(src);
        assert!(!stripped.contains("std::sync"));
        assert!(!stripped.contains("std::thread"));
        assert_eq!(stripped.lines().count(), src.lines().count());
        assert!(stripped.contains("let b = 1;"));
    }

    #[test]
    fn stripper_handles_raw_strings_and_char_literals() {
        let src =
            "let r = r#\"std::sync \"quoted\" inner\"#; let c = '\\n'; let lt: &'static str = x;\n";
        let stripped = strip_strings_and_comments(src);
        assert!(!stripped.contains("std::sync"));
        assert!(stripped.contains("&'static str"), "{stripped}");
    }

    #[test]
    fn wire_impl_target_extracts_names() {
        assert_eq!(
            wire_impl_target("impl Wire for ScatterQuery {"),
            Some("ScatterQuery".into())
        );
        assert_eq!(
            wire_impl_target("impl<T: Wire> Wire for Vec<T> {"),
            Some("Vec".into())
        );
        assert_eq!(wire_impl_target("impl Display for Foo {"), None);
    }

    #[test]
    fn snapshot_facade_flags_outside_owner_only() {
        let outside = SourceFile {
            rel: PathBuf::from("crates/dsr-rdf/src/lib.rs"),
            code: vec!["let h = SnapshotHolder::new(x);".into()],
            test_region_start: None,
        };
        let owner = SourceFile {
            rel: PathBuf::from("crates/dsr-service/src/snapshot.rs"),
            code: vec!["pub struct SnapshotHolder<T> {".into()],
            test_region_start: None,
        };
        let other_ident = SourceFile {
            rel: PathBuf::from("crates/dsr-rdf/src/lib.rs"),
            code: vec!["let h = MySnapshotHolder::new(x);".into()],
            test_region_start: None,
        };
        let mut findings = Vec::new();
        check_snapshot_facade(&outside, &mut findings);
        check_snapshot_facade(&owner, &mut findings);
        check_snapshot_facade(&other_ident, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "snapshot-facade");
        assert_eq!(findings[0].path, PathBuf::from("crates/dsr-rdf/src/lib.rs"));
    }

    #[test]
    fn transport_methods_found_across_lines() {
        let sf = SourceFile {
            rel: PathBuf::from("crates/x/src/lib.rs"),
            code: vec![
                "pub fn scatter(&self, q: Q)".into(),
                "    -> Result<Vec<u8>, TransportError> {".into(),
            ],
            test_region_start: None,
        };
        let methods = collect_transport_result_methods(&[sf]);
        assert!(methods.contains("scatter"));
    }
}
