//! R-MAT (recursive matrix) power-law graph generator.
//!
//! R-MAT graphs have heavy-tailed in/out-degree distributions and, with the
//! default parameters, a large strongly connected core — the structural
//! fingerprint of the social graphs in the paper's evaluation (LiveJournal,
//! Twitter). The Twitter-1.4B compound graphs compress by a factor of ~150
//! under SCC condensation (Section 4.2); the analogues generated here show
//! the same qualitative behaviour at small scale.

use dsr_graph::DiGraph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates an R-MAT graph with `2^scale` vertices and `num_edges` edges.
///
/// `(a, b, c)` are the standard R-MAT quadrant probabilities (the fourth is
/// `1 - a - b - c`). The classic "social network" parameters are
/// `a = 0.57, b = 0.19, c = 0.19`.
pub fn rmat(scale: u32, num_edges: usize, a: f64, b: f64, c: f64, seed: u64) -> DiGraph {
    assert!((1..=24).contains(&scale), "scale out of supported range");
    assert!(
        a > 0.0 && b >= 0.0 && c >= 0.0 && a + b + c < 1.0,
        "invalid quadrant probabilities"
    );
    let n = 1usize << scale;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(num_edges);
    while edges.len() < num_edges {
        let (mut u, mut v) = (0usize, 0usize);
        for level in (0..scale).rev() {
            let r: f64 = rng.gen();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u |= du << level;
            v |= dv << level;
        }
        if u != v {
            edges.push((u as u32, v as u32));
        }
    }
    DiGraph::from_edges(n, &edges)
}

/// R-MAT with the classic social-network parameters.
pub fn rmat_social(scale: u32, num_edges: usize, seed: u64) -> DiGraph {
    rmat(scale, num_edges, 0.57, 0.19, 0.19, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsr_graph::tarjan_scc;

    #[test]
    fn size_and_determinism() {
        let g = rmat_social(10, 4000, 5);
        assert_eq!(g.num_vertices(), 1024);
        assert_eq!(g.num_edges(), 4000);
        assert_eq!(g.edge_vec(), rmat_social(10, 4000, 5).edge_vec());
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = rmat_social(11, 10_000, 9);
        let max_deg = g.vertices().map(|v| g.out_degree(v)).max().unwrap();
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(
            max_deg as f64 > 8.0 * avg,
            "power-law graphs have hubs: max {max_deg}, avg {avg}"
        );
    }

    #[test]
    fn dense_rmat_has_large_scc() {
        let g = rmat_social(9, 12_000, 2);
        let scc = tarjan_scc(&g);
        let largest = scc.largest_component_size();
        assert!(
            largest > g.num_vertices() / 4,
            "expected a giant SCC, largest was {largest} of {}",
            g.num_vertices()
        );
    }

    #[test]
    #[should_panic(expected = "invalid quadrant")]
    fn invalid_probabilities_panic() {
        rmat(4, 10, 0.6, 0.3, 0.2, 1);
    }
}
