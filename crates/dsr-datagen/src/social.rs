//! Social-network generator with planted communities.
//!
//! Section 4.5.B of the paper runs community detection (Blondel et al.) on
//! LiveJournal and Twitter and then evaluates DSR queries between the
//! members of two communities. This generator produces a directed social
//! graph with planted communities so that (a) the Louvain implementation in
//! `dsr-community` has ground truth to recover and (b) the Table 7
//! experiment has realistic community structure to query.

use dsr_graph::{DiGraph, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A social graph with known planted communities.
#[derive(Debug, Clone)]
pub struct SocialGraph {
    /// The directed follower-style graph.
    pub graph: DiGraph,
    /// Planted community of every vertex.
    pub community: Vec<u32>,
    /// Number of planted communities.
    pub num_communities: usize,
}

impl SocialGraph {
    /// Members of planted community `c`.
    pub fn members(&self, c: u32) -> Vec<VertexId> {
        self.community
            .iter()
            .enumerate()
            .filter(|&(_, &x)| x == c)
            .map(|(v, _)| v as VertexId)
            .collect()
    }
}

/// Generates a planted-partition social graph.
///
/// * `num_vertices` — total users,
/// * `num_communities` — number of planted communities,
/// * `avg_degree` — average out-degree,
/// * `intra_fraction` — fraction of edges that stay inside a community.
pub fn social_network(
    num_vertices: usize,
    num_communities: usize,
    avg_degree: f64,
    intra_fraction: f64,
    seed: u64,
) -> SocialGraph {
    assert!(num_vertices >= num_communities && num_communities > 0);
    assert!((0.0..=1.0).contains(&intra_fraction));
    let mut rng = SmallRng::seed_from_u64(seed);
    let community: Vec<u32> = (0..num_vertices)
        .map(|v| (v % num_communities) as u32)
        .collect();
    // Vertices of each community for fast sampling.
    let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); num_communities];
    for (v, &c) in community.iter().enumerate() {
        members[c as usize].push(v as VertexId);
    }

    let num_edges = (num_vertices as f64 * avg_degree) as usize;
    let mut edges = Vec::with_capacity(num_edges);
    while edges.len() < num_edges {
        let u = rng.gen_range(0..num_vertices);
        let v = if rng.gen::<f64>() < intra_fraction {
            let comm = &members[community[u] as usize];
            comm[rng.gen_range(0..comm.len())]
        } else {
            rng.gen_range(0..num_vertices) as VertexId
        };
        if u as u32 != v {
            edges.push((u as u32, v));
        }
    }
    SocialGraph {
        graph: DiGraph::from_edges(num_vertices, &edges),
        community,
        num_communities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_and_membership() {
        let s = social_network(1000, 10, 8.0, 0.9, 1);
        assert_eq!(s.graph.num_vertices(), 1000);
        assert_eq!(s.graph.num_edges(), 8000);
        assert_eq!(s.num_communities, 10);
        let total: usize = (0..10).map(|c| s.members(c).len()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn intra_community_edges_dominate() {
        let s = social_network(2000, 8, 10.0, 0.9, 7);
        let intra = s
            .graph
            .edges()
            .filter(|&(u, v)| s.community[u as usize] == s.community[v as usize])
            .count();
        assert!(
            intra as f64 > 0.8 * s.graph.num_edges() as f64,
            "expected >80% intra edges, got {intra} of {}",
            s.graph.num_edges()
        );
    }

    #[test]
    fn deterministic() {
        let a = social_network(500, 5, 6.0, 0.8, 3);
        let b = social_network(500, 5, 6.0, 0.8, 3);
        assert_eq!(a.graph.edge_vec(), b.graph.edge_vec());
        assert_eq!(a.community, b.community);
    }

    #[test]
    #[should_panic]
    fn invalid_parameters_panic() {
        social_network(3, 5, 2.0, 0.5, 0);
    }
}
