//! Query-workload generation.
//!
//! The paper's efficiency and scalability experiments use randomly selected
//! source and target sets ("We randomly selected 10 source and 10 target
//! vertices from all datasets … thus resulting in 100 reachability
//! comparisons", Section 4.1). [`QueryWorkload`] reproduces that setup with
//! configurable sizes (10×10 up to 10k×10k for Figure 5(d)(h)(l)(p)).

use dsr_graph::{DiGraph, VertexId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A set-reachability query: source set `S` and target set `T`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryWorkload {
    /// Source vertices `S`.
    pub sources: Vec<VertexId>,
    /// Target vertices `T`.
    pub targets: Vec<VertexId>,
}

impl QueryWorkload {
    /// `|S| × |T|` — the number of reachability comparisons the query asks
    /// for.
    pub fn num_comparisons(&self) -> usize {
        self.sources.len() * self.targets.len()
    }

    /// Label such as `10x10` used in experiment output.
    pub fn label(&self) -> String {
        format!("{}x{}", self.sources.len(), self.targets.len())
    }
}

/// Draws a random set-reachability query with `num_sources` distinct sources
/// and `num_targets` distinct targets (source and target sets may overlap,
/// as in the paper).
pub fn random_query(
    graph: &DiGraph,
    num_sources: usize,
    num_targets: usize,
    seed: u64,
) -> QueryWorkload {
    let n = graph.num_vertices();
    assert!(n > 0, "cannot sample from an empty graph");
    assert!(
        num_sources <= n && num_targets <= n,
        "query larger than the graph"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut vertices: Vec<VertexId> = (0..n as VertexId).collect();
    vertices.shuffle(&mut rng);
    let sources = vertices[..num_sources].to_vec();
    vertices.shuffle(&mut rng);
    let targets = vertices[..num_targets].to_vec();
    QueryWorkload { sources, targets }
}

/// Draws a batch of queries with distinct seeds (used when experiments
/// average over several queries).
pub fn random_queries(
    graph: &DiGraph,
    num_sources: usize,
    num_targets: usize,
    count: usize,
    seed: u64,
) -> Vec<QueryWorkload> {
    (0..count)
        .map(|i| random_query(graph, num_sources, num_targets, seed.wrapping_add(i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_distinctness() {
        let g = DiGraph::empty(100);
        let q = random_query(&g, 10, 10, 1);
        assert_eq!(q.sources.len(), 10);
        assert_eq!(q.targets.len(), 10);
        assert_eq!(q.num_comparisons(), 100);
        assert_eq!(q.label(), "10x10");
        let mut s = q.sources.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 10, "sources must be distinct");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = DiGraph::empty(50);
        assert_eq!(random_query(&g, 5, 5, 9), random_query(&g, 5, 5, 9));
        assert_ne!(random_query(&g, 5, 5, 9), random_query(&g, 5, 5, 10));
    }

    #[test]
    fn batch_generation() {
        let g = DiGraph::empty(30);
        let qs = random_queries(&g, 3, 4, 5, 77);
        assert_eq!(qs.len(), 5);
        assert!(qs
            .iter()
            .all(|q| q.sources.len() == 3 && q.targets.len() == 4));
    }

    #[test]
    #[should_panic(expected = "larger than the graph")]
    fn oversized_query_panics() {
        let g = DiGraph::empty(5);
        random_query(&g, 10, 2, 0);
    }
}
