//! Query-workload generation.
//!
//! The paper's efficiency and scalability experiments use randomly selected
//! source and target sets ("We randomly selected 10 source and 10 target
//! vertices from all datasets … thus resulting in 100 reachability
//! comparisons", Section 4.1). [`QueryWorkload`] reproduces that setup with
//! configurable sizes (10×10 up to 10k×10k for Figure 5(d)(h)(l)(p)).
//!
//! For the serving-layer experiments, [`query_stream`] generates whole
//! *query streams*: a pool of distinct queries with Zipf-skewed popularity
//! (real query logs repeat a few hot queries, which is what makes result
//! caching worthwhile) and either closed-loop arrivals (the next query is
//! issued as soon as the previous one completes) or open-loop Poisson
//! arrivals at a configurable rate.

use std::time::Duration;

use dsr_graph::{DiGraph, VertexId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A set-reachability query: source set `S` and target set `T`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryWorkload {
    /// Source vertices `S`.
    pub sources: Vec<VertexId>,
    /// Target vertices `T`.
    pub targets: Vec<VertexId>,
}

impl QueryWorkload {
    /// `|S| × |T|` — the number of reachability comparisons the query asks
    /// for.
    pub fn num_comparisons(&self) -> usize {
        self.sources.len() * self.targets.len()
    }

    /// Label such as `10x10` used in experiment output.
    pub fn label(&self) -> String {
        format!("{}x{}", self.sources.len(), self.targets.len())
    }
}

/// Draws a random set-reachability query with `num_sources` distinct sources
/// and `num_targets` distinct targets (source and target sets may overlap,
/// as in the paper).
pub fn random_query(
    graph: &DiGraph,
    num_sources: usize,
    num_targets: usize,
    seed: u64,
) -> QueryWorkload {
    let n = graph.num_vertices();
    assert!(n > 0, "cannot sample from an empty graph");
    assert!(
        num_sources <= n && num_targets <= n,
        "query larger than the graph"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut vertices: Vec<VertexId> = (0..n as VertexId).collect();
    vertices.shuffle(&mut rng);
    let sources = vertices[..num_sources].to_vec();
    vertices.shuffle(&mut rng);
    let targets = vertices[..num_targets].to_vec();
    QueryWorkload { sources, targets }
}

/// Draws a batch of queries with distinct seeds (used when experiments
/// average over several queries).
pub fn random_queries(
    graph: &DiGraph,
    num_sources: usize,
    num_targets: usize,
    count: usize,
    seed: u64,
) -> Vec<QueryWorkload> {
    (0..count)
        .map(|i| random_query(graph, num_sources, num_targets, seed.wrapping_add(i as u64)))
        .collect()
}

/// How the queries of a stream arrive at the serving layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalPattern {
    /// Closed loop: a client issues its next query the moment the previous
    /// one completes. All offsets are zero; throughput is limited by the
    /// service.
    ClosedLoop,
    /// Open loop: queries arrive as a Poisson process at `rate_per_sec`
    /// (exponential inter-arrival times), independent of completion times.
    OpenLoop {
        /// Mean arrival rate in queries per second (must be positive).
        rate_per_sec: f64,
    },
}

/// Configuration for [`query_stream`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Total number of query arrivals in the stream.
    pub num_queries: usize,
    /// `|S|` of every query in the pool.
    pub num_sources: usize,
    /// `|T|` of every query in the pool.
    pub num_targets: usize,
    /// Number of distinct queries in the pool the stream draws from.
    pub distinct: usize,
    /// Zipf skew exponent over pool ranks: popularity of rank `r` is
    /// proportional to `1 / (r + 1)^skew`. `0.0` means uniform popularity;
    /// `0.99` approximates the YCSB default.
    pub skew: f64,
    /// Arrival pattern (closed or open loop).
    pub pattern: ArrivalPattern,
    /// Seed for both pool generation and arrival sampling.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            num_queries: 1000,
            num_sources: 10,
            num_targets: 10,
            distinct: 100,
            skew: 0.99,
            pattern: ArrivalPattern::ClosedLoop,
            seed: 0xD5,
        }
    }
}

/// One arrival of a query stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedQuery {
    /// Arrival time relative to the start of the stream (zero for every
    /// closed-loop arrival).
    pub offset: Duration,
    /// Index into [`QueryStream::pool`] of the query being issued.
    pub pool_index: usize,
}

/// A stream of query arrivals over a pool of distinct queries.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryStream {
    /// The distinct queries, ordered by popularity rank (entry 0 is the
    /// hottest).
    pub pool: Vec<QueryWorkload>,
    /// The arrivals in time order.
    pub arrivals: Vec<TimedQuery>,
}

impl QueryStream {
    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the stream has no arrivals.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// The queries in arrival order.
    pub fn queries(&self) -> impl Iterator<Item = &QueryWorkload> + '_ {
        self.arrivals.iter().map(|a| &self.pool[a.pool_index])
    }

    /// Number of arrivals per pool entry (index = popularity rank).
    pub fn popularity_histogram(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.pool.len()];
        for arrival in &self.arrivals {
            counts[arrival.pool_index] += 1;
        }
        counts
    }
}

/// Generates a deterministic query stream over `graph`.
///
/// The pool holds `config.distinct` distinct random queries (each with
/// `num_sources × num_targets` comparisons, like [`random_query`]); arrivals
/// pick pool entries with Zipf(`skew`) popularity and are timestamped
/// according to `config.pattern`. The same seed always yields the same
/// stream.
pub fn query_stream(graph: &DiGraph, config: &StreamConfig) -> QueryStream {
    assert!(config.distinct > 0, "pool must hold at least one query");
    assert!(config.skew >= 0.0, "negative skew is not meaningful");
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let pool: Vec<QueryWorkload> = (0..config.distinct)
        .map(|i| {
            random_query(
                graph,
                config.num_sources,
                config.num_targets,
                config.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)),
            )
        })
        .collect();

    // Zipf popularity over ranks: cumulative weights + inverse-CDF sampling.
    let cumulative: Vec<f64> = pool
        .iter()
        .enumerate()
        .scan(0.0f64, |acc, (rank, _)| {
            *acc += 1.0 / ((rank + 1) as f64).powf(config.skew);
            Some(*acc)
        })
        .collect();
    let total = *cumulative.last().expect("non-empty pool");

    let mut arrivals = Vec::with_capacity(config.num_queries);
    let mut clock = 0.0f64;
    for _ in 0..config.num_queries {
        let u: f64 = rng.gen::<f64>() * total;
        let pool_index = cumulative.partition_point(|&c| c <= u).min(pool.len() - 1);
        let offset = match config.pattern {
            ArrivalPattern::ClosedLoop => Duration::ZERO,
            ArrivalPattern::OpenLoop { rate_per_sec } => {
                assert!(rate_per_sec > 0.0, "open-loop rate must be positive");
                // Exponential inter-arrival: -ln(1 - u) / rate.
                let u: f64 = rng.gen::<f64>();
                clock += -(1.0 - u).max(f64::MIN_POSITIVE).ln() / rate_per_sec;
                Duration::from_secs_f64(clock)
            }
        };
        arrivals.push(TimedQuery { offset, pool_index });
    }
    QueryStream { pool, arrivals }
}

/// One edge-level update of a synthetic update stream.
///
/// The variant layout deliberately mirrors `dsr_core::UpdateOp` — this
/// crate sits below `dsr-core` in the dependency DAG, so consumers map the
/// ops with a one-line `match` (see the `updates` experiment in
/// `dsr-bench`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeOp {
    /// Insert the edge `(u, v)`.
    Insert(VertexId, VertexId),
    /// Delete the edge `(u, v)`.
    Delete(VertexId, VertexId),
}

/// Configuration for [`update_stream`].
#[derive(Debug, Clone)]
pub struct UpdateStreamConfig {
    /// Total number of update operations in the stream.
    pub num_ops: usize,
    /// Fraction of operations that are insertions (the rest are deletions
    /// of currently live edges). Clamped to `[0, 1]`.
    pub insert_fraction: f64,
    /// Seed; the same seed always yields the same stream.
    pub seed: u64,
}

impl Default for UpdateStreamConfig {
    fn default() -> Self {
        UpdateStreamConfig {
            num_ops: 1000,
            insert_fraction: 0.5,
            seed: 0xF6,
        }
    }
}

/// Generates a deterministic stream of edge updates against `graph`.
///
/// The stream is *consistent*: deletions always target an edge that is live
/// at that point of the stream (an original edge or an earlier insertion),
/// and insertions always add an edge that is absent, so replaying the
/// stream against an index yields no-op-free updates. When no live edge is
/// left to delete, an insertion is emitted instead.
pub fn update_stream(graph: &DiGraph, config: &UpdateStreamConfig) -> Vec<EdgeOp> {
    let n = graph.num_vertices() as VertexId;
    assert!(n >= 2, "update streams need at least two vertices");
    let insert_fraction = config.insert_fraction.clamp(0.0, 1.0);
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut live: Vec<(VertexId, VertexId)> = graph.edge_vec();
    let mut live_set: std::collections::HashSet<(VertexId, VertexId)> =
        live.iter().copied().collect();

    let max_edges = n as usize * (n as usize - 1);
    let mut ops = Vec::with_capacity(config.num_ops);
    for _ in 0..config.num_ops {
        // An insertion needs a free (u, v) slot, a deletion a live edge;
        // fall back to the other op when one side is exhausted (a complete
        // graph cannot grow, an empty one cannot shrink).
        let saturated = live.len() >= max_edges;
        let want_insert = (rng.gen::<f64>() < insert_fraction && !saturated) || live.is_empty();
        if want_insert {
            // Rejection-sample a currently absent edge.
            let edge = loop {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v && !live_set.contains(&(u, v)) {
                    break (u, v);
                }
            };
            live.push(edge);
            live_set.insert(edge);
            ops.push(EdgeOp::Insert(edge.0, edge.1));
        } else {
            let at = rng.gen_range(0..live.len());
            let edge = live.swap_remove(at);
            live_set.remove(&edge);
            ops.push(EdgeOp::Delete(edge.0, edge.1));
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_distinctness() {
        let g = DiGraph::empty(100);
        let q = random_query(&g, 10, 10, 1);
        assert_eq!(q.sources.len(), 10);
        assert_eq!(q.targets.len(), 10);
        assert_eq!(q.num_comparisons(), 100);
        assert_eq!(q.label(), "10x10");
        let mut s = q.sources.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 10, "sources must be distinct");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = DiGraph::empty(50);
        assert_eq!(random_query(&g, 5, 5, 9), random_query(&g, 5, 5, 9));
        assert_ne!(random_query(&g, 5, 5, 9), random_query(&g, 5, 5, 10));
    }

    #[test]
    fn batch_generation() {
        let g = DiGraph::empty(30);
        let qs = random_queries(&g, 3, 4, 5, 77);
        assert_eq!(qs.len(), 5);
        assert!(qs
            .iter()
            .all(|q| q.sources.len() == 3 && q.targets.len() == 4));
    }

    #[test]
    #[should_panic(expected = "larger than the graph")]
    fn oversized_query_panics() {
        let g = DiGraph::empty(5);
        random_query(&g, 10, 2, 0);
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let g = DiGraph::empty(60);
        let config = StreamConfig {
            num_queries: 200,
            distinct: 16,
            ..StreamConfig::default()
        };
        assert_eq!(query_stream(&g, &config), query_stream(&g, &config));
        let other = StreamConfig {
            seed: config.seed + 1,
            ..config.clone()
        };
        assert_ne!(query_stream(&g, &config), query_stream(&g, &other));
    }

    #[test]
    fn closed_loop_has_zero_offsets_and_full_length() {
        let g = DiGraph::empty(40);
        let stream = query_stream(
            &g,
            &StreamConfig {
                num_queries: 100,
                num_sources: 5,
                num_targets: 5,
                distinct: 8,
                ..StreamConfig::default()
            },
        );
        assert_eq!(stream.len(), 100);
        assert!(!stream.is_empty());
        assert_eq!(stream.pool.len(), 8);
        assert!(stream.arrivals.iter().all(|a| a.offset == Duration::ZERO));
        assert!(stream.queries().all(|q| q.num_comparisons() == 25));
        assert_eq!(stream.popularity_histogram().iter().sum::<usize>(), 100);
    }

    #[test]
    fn open_loop_offsets_are_nondecreasing_and_rate_scaled() {
        let g = DiGraph::empty(40);
        let stream = query_stream(
            &g,
            &StreamConfig {
                num_queries: 500,
                distinct: 4,
                pattern: ArrivalPattern::OpenLoop {
                    rate_per_sec: 1000.0,
                },
                ..StreamConfig::default()
            },
        );
        let offsets: Vec<Duration> = stream.arrivals.iter().map(|a| a.offset).collect();
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        // 500 arrivals at ~1000/s should span roughly half a second; allow a
        // generous band since the shim RNG is not statistically tuned.
        let span = offsets.last().unwrap().as_secs_f64();
        assert!(span > 0.1 && span < 2.5, "span {span} out of band");
    }

    #[test]
    fn zipf_skew_concentrates_popularity() {
        let g = DiGraph::empty(50);
        let skewed = query_stream(
            &g,
            &StreamConfig {
                num_queries: 2000,
                distinct: 20,
                skew: 1.2,
                ..StreamConfig::default()
            },
        );
        let histogram = skewed.popularity_histogram();
        // Rank 0 must clearly dominate the tail under heavy skew.
        assert!(
            histogram[0] > 4 * histogram[19].max(1),
            "rank 0 ({}) should dwarf rank 19 ({})",
            histogram[0],
            histogram[19]
        );
        // Uniform (skew 0) spreads arrivals much more evenly.
        let uniform = query_stream(
            &g,
            &StreamConfig {
                num_queries: 2000,
                distinct: 20,
                skew: 0.0,
                ..StreamConfig::default()
            },
        );
        let uniform_hist = uniform.popularity_histogram();
        assert!(uniform_hist.iter().all(|&c| c > 0), "all ranks drawn");
        assert!(histogram[0] > 2 * uniform_hist[0]);
    }

    #[test]
    #[should_panic(expected = "at least one query")]
    fn empty_pool_panics() {
        let g = DiGraph::empty(10);
        query_stream(
            &g,
            &StreamConfig {
                distinct: 0,
                ..StreamConfig::default()
            },
        );
    }

    #[test]
    fn update_stream_is_consistent_and_deterministic() {
        let g = DiGraph::from_edges(20, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let config = UpdateStreamConfig {
            num_ops: 200,
            insert_fraction: 0.4,
            seed: 11,
        };
        let ops = update_stream(&g, &config);
        assert_eq!(ops.len(), 200);
        assert_eq!(ops, update_stream(&g, &config), "same seed, same stream");
        // Replay: every delete hits a live edge, every insert an absent one.
        let mut live: std::collections::HashSet<(u32, u32)> = g.edge_vec().into_iter().collect();
        for op in &ops {
            match *op {
                EdgeOp::Insert(u, v) => {
                    assert_ne!(u, v);
                    assert!(live.insert((u, v)), "insert of an absent edge");
                }
                EdgeOp::Delete(u, v) => {
                    assert!(live.remove(&(u, v)), "delete of a live edge");
                }
            }
        }
        let inserts = ops
            .iter()
            .filter(|op| matches!(op, EdgeOp::Insert(..)))
            .count();
        assert!(inserts > 40 && inserts < 140, "roughly the asked mix");
    }

    #[test]
    fn update_stream_saturated_graph_falls_back_to_deletions() {
        // Two vertices: only (0,1) and (1,0) exist. An insert-only stream
        // must not spin forever once both are live — it deletes instead.
        let g = DiGraph::from_edges(2, &[]);
        let ops = update_stream(
            &g,
            &UpdateStreamConfig {
                num_ops: 10,
                insert_fraction: 1.0,
                seed: 7,
            },
        );
        assert_eq!(ops.len(), 10);
        let mut live: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        for op in &ops {
            match *op {
                EdgeOp::Insert(u, v) => assert!(live.insert((u, v))),
                EdgeOp::Delete(u, v) => assert!(live.remove(&(u, v))),
            }
        }
        assert!(
            ops.iter().any(|op| matches!(op, EdgeOp::Delete(..))),
            "saturation forces deletions"
        );
    }

    #[test]
    fn update_stream_all_deletions_drains_then_inserts() {
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2)]);
        let ops = update_stream(
            &g,
            &UpdateStreamConfig {
                num_ops: 4,
                insert_fraction: 0.0,
                seed: 3,
            },
        );
        assert!(
            matches!(ops[0], EdgeOp::Delete(..)) && matches!(ops[1], EdgeOp::Delete(..)),
            "live edges drain first"
        );
        assert!(
            matches!(ops[2], EdgeOp::Insert(..)),
            "falls back to an insertion once the graph is empty"
        );
    }
}
