//! Uniform random (Erdős–Rényi G(n, m)) directed graphs.

use dsr_graph::DiGraph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates a directed G(n, m) graph: `num_edges` edges drawn uniformly at
/// random (self loops excluded, duplicates allowed as in a multigraph — they
/// do not affect reachability).
pub fn erdos_renyi(num_vertices: usize, num_edges: usize, seed: u64) -> DiGraph {
    assert!(num_vertices > 0, "need at least one vertex");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(num_edges);
    if num_vertices == 1 {
        return DiGraph::empty(1);
    }
    while edges.len() < num_edges {
        let u = rng.gen_range(0..num_vertices) as u32;
        let v = rng.gen_range(0..num_vertices) as u32;
        if u != v {
            edges.push((u, v));
        }
    }
    DiGraph::from_edges(num_vertices, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_requested_size() {
        let g = erdos_renyi(100, 400, 1);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 400);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(erdos_renyi(50, 200, 7), erdos_renyi(50, 200, 7));
        assert_ne!(erdos_renyi(50, 200, 7), erdos_renyi(50, 200, 8));
    }

    #[test]
    fn no_self_loops() {
        let g = erdos_renyi(30, 200, 3);
        assert!(g.edges().all(|(u, v)| u != v));
    }

    #[test]
    fn single_vertex() {
        let g = erdos_renyi(1, 10, 0);
        assert_eq!(g.num_edges(), 0);
    }
}
