//! Web-graph analogue generator (bow-tie structure with host locality).
//!
//! The SNAP web crawls used by the paper (Amazon, BerkStan, Google,
//! NotreDame, Stanford) share a characteristic structure: pages are grouped
//! into hosts with dense intra-host linkage (producing many small and a few
//! large SCCs), plus sparser cross-host links that follow a preferential
//! attachment pattern. This generator reproduces that shape so the DSR
//! index statistics (boundary counts, equivalence-set compression in
//! Table 4) behave like the paper's small-graph numbers.

use dsr_graph::DiGraph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates a web-like graph.
///
/// * `num_vertices` — total number of pages,
/// * `avg_degree` — average out-degree,
/// * `host_size` — average number of pages per host,
/// * `intra_host_fraction` — fraction of edges that stay within a host.
pub fn web_graph(
    num_vertices: usize,
    avg_degree: f64,
    host_size: usize,
    intra_host_fraction: f64,
    seed: u64,
) -> DiGraph {
    assert!(num_vertices > 1, "need at least two vertices");
    assert!(host_size >= 1);
    assert!((0.0..=1.0).contains(&intra_host_fraction));
    let mut rng = SmallRng::seed_from_u64(seed);
    let num_edges = (num_vertices as f64 * avg_degree) as usize;
    let num_hosts = num_vertices.div_ceil(host_size).max(1);

    let host_of = |v: usize| v / host_size;
    let host_range = |h: usize| {
        let lo = h * host_size;
        let hi = ((h + 1) * host_size).min(num_vertices);
        (lo, hi)
    };

    let mut edges = Vec::with_capacity(num_edges);
    while edges.len() < num_edges {
        let u = rng.gen_range(0..num_vertices);
        let v = if rng.gen::<f64>() < intra_host_fraction {
            // Intra-host edge: uniformly within u's host.
            let (lo, hi) = host_range(host_of(u));
            rng.gen_range(lo..hi)
        } else {
            // Cross-host edge with preferential attachment towards the
            // low-numbered "popular" hosts (Zipf-ish via squaring).
            let r: f64 = rng.gen();
            let h = ((r * r) * num_hosts as f64) as usize;
            let (lo, hi) = host_range(h.min(num_hosts - 1));
            rng.gen_range(lo..hi)
        };
        if u != v {
            edges.push((u as u32, v as u32));
        }
    }
    DiGraph::from_edges(num_vertices, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsr_graph::tarjan_scc;

    #[test]
    fn size_and_determinism() {
        let g = web_graph(2000, 4.0, 20, 0.7, 3);
        assert_eq!(g.num_vertices(), 2000);
        assert_eq!(g.num_edges(), 8000);
        assert_eq!(g.edge_vec(), web_graph(2000, 4.0, 20, 0.7, 3).edge_vec());
    }

    #[test]
    fn host_locality_produces_nontrivial_sccs() {
        let g = web_graph(1500, 6.0, 15, 0.8, 11);
        let scc = tarjan_scc(&g);
        assert!(
            scc.num_components < g.num_vertices(),
            "dense intra-host links must create some cycles"
        );
        assert!(scc.largest_component_size() > 5);
    }

    #[test]
    fn locality_fraction_matters() {
        let local = web_graph(1000, 5.0, 10, 0.9, 5);
        let global = web_graph(1000, 5.0, 10, 0.0, 5);
        let intra = |g: &DiGraph| {
            g.edges()
                .filter(|&(u, v)| (u as usize) / 10 == (v as usize) / 10)
                .count()
        };
        assert!(intra(&local) > intra(&global) * 3);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn too_small_panics() {
        web_graph(1, 2.0, 5, 0.5, 0);
    }
}
