//! Named, scaled-down analogues of the paper's datasets (Table 1).
//!
//! The real datasets (up to 1.4 billion edges) are not available offline
//! and would not fit a laptop-scale reproduction anyway. Each entry below
//! generates a graph whose *structural character* matches the original —
//! web-crawl bow-tie structure for the SNAP graphs, power-law with a giant
//! SCC for the social graphs, sparse and acyclic for LUBM — at a size that
//! keeps every experiment under a few seconds. The experiment harness
//! refers to datasets by these names so its output tables line up with the
//! paper's.

use dsr_graph::DiGraph;

use crate::lubm::lubm_like;
use crate::rmat::{rmat, rmat_social};
use crate::web::web_graph;

/// A named dataset analogue.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Name used in the paper's tables (e.g. "Amazon", "Twitter-1.4B").
    pub name: &'static str,
    /// Whether the paper classifies it as a "small" or "large" graph.
    pub large: bool,
    /// The generated analogue graph.
    pub graph: DiGraph,
}

/// Names of all dataset analogues, in the order of Table 1.
pub const DATASET_NAMES: [&str; 12] = [
    "Amazon",
    "BerkStan",
    "Google",
    "NotreDame",
    "Stanford",
    "LiveJ-20M",
    "LiveJ-68M",
    "Twitter-1.4B",
    "Freebase-500M",
    "Freebase-1B",
    "LUBM-500M",
    "LUBM-1B",
];

/// The small-graph analogues used in Tables 2–5 and Figure 6.
pub const SMALL_DATASET_NAMES: [&str; 6] = [
    "Amazon",
    "BerkStan",
    "Google",
    "NotreDame",
    "Stanford",
    "LiveJ-20M",
];

/// The large-graph analogues used in Table 3(b) and Figure 5.
pub const LARGE_DATASET_NAMES: [&str; 4] = ["LiveJ-68M", "Freebase-1B", "Twitter-1.4B", "LUBM-1B"];

/// Generates the analogue of a named dataset. Returns `None` for unknown
/// names. All generators are deterministic.
pub fn dataset_by_name(name: &str) -> Option<Dataset> {
    let (graph, large) = match name {
        // SNAP web/co-purchase graphs: host-local structure, moderate SCCs.
        "Amazon" => (web_graph(4000, 8.0, 25, 0.75, 0xA1), false),
        "BerkStan" => (web_graph(3000, 10.0, 30, 0.85, 0xA2), false),
        "Google" => (web_graph(4500, 5.5, 20, 0.70, 0xA3), false),
        "NotreDame" => (web_graph(1500, 5.0, 15, 0.80, 0xA4), false),
        "Stanford" => (web_graph(1500, 7.5, 20, 0.85, 0xA5), false),
        // Social graphs: power-law, giant SCC.
        "LiveJ-20M" => (rmat_social(12, 32_000, 0xB1), false),
        "LiveJ-68M" => (rmat_social(13, 64_000, 0xB2), true),
        "Twitter-1.4B" => (rmat(13, 120_000, 0.57, 0.19, 0.19, 0xB3), true),
        // Knowledge graphs: sparser, weakly connected.
        "Freebase-500M" => (rmat(12, 16_000, 0.45, 0.25, 0.2, 0xC1), true),
        "Freebase-1B" => (rmat(13, 32_000, 0.45, 0.25, 0.2, 0xC2), true),
        // RDF organization hierarchies: sparse, acyclic.
        "LUBM-500M" => (lubm_like(40, 0xD1).graph, true),
        "LUBM-1B" => (lubm_like(80, 0xD2).graph, true),
        _ => return None,
    };
    Some(Dataset {
        name: leak_name(name),
        large,
        graph,
    })
}

/// Maps a dynamic name back to the canonical `&'static str` from
/// [`DATASET_NAMES`].
fn leak_name(name: &str) -> &'static str {
    DATASET_NAMES
        .iter()
        .copied()
        .find(|&n| n == name)
        .expect("caller validated the name")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsr_graph::tarjan_scc;

    #[test]
    fn all_names_resolve() {
        for name in DATASET_NAMES {
            let d = dataset_by_name(name).unwrap();
            assert_eq!(d.name, name);
            assert!(d.graph.num_vertices() > 100);
            assert!(d.graph.num_edges() > 100);
        }
        assert!(dataset_by_name("NoSuchGraph").is_none());
    }

    #[test]
    fn small_and_large_lists_are_consistent() {
        for name in SMALL_DATASET_NAMES {
            assert!(!dataset_by_name(name).unwrap().large);
        }
        for name in LARGE_DATASET_NAMES {
            assert!(dataset_by_name(name).unwrap().large);
        }
    }

    #[test]
    fn twitter_analogue_is_highly_connected_and_lubm_is_acyclic() {
        let twitter = dataset_by_name("Twitter-1.4B").unwrap().graph;
        let scc = tarjan_scc(&twitter);
        assert!(
            scc.largest_component_size() > twitter.num_vertices() / 4,
            "Twitter analogue needs a giant SCC"
        );
        let lubm = dataset_by_name("LUBM-1B").unwrap().graph;
        let scc = tarjan_scc(&lubm);
        assert_eq!(
            scc.num_components,
            lubm.num_vertices(),
            "LUBM analogue is acyclic"
        );
    }

    #[test]
    fn deterministic_generation() {
        let a = dataset_by_name("Amazon").unwrap().graph;
        let b = dataset_by_name("Amazon").unwrap().graph;
        assert_eq!(a.edge_vec(), b.edge_vec());
    }
}
