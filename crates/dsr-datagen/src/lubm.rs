//! LUBM-like sparse RDF-graph analogue.
//!
//! The LUBM benchmark graph used in the paper (Table 1: LUBM-500M/1B) is an
//! organization hierarchy: universities contain departments, departments
//! contain research groups, people work for departments and co-author
//! publications. The resulting reachability structure is sparse and almost
//! acyclic ("Most of the RDF-based LUBM graph is acyclic and sparsely
//! connected", Section 4.2), which makes SCC condensation nearly a no-op —
//! the opposite extreme from the Twitter analogue. This generator
//! reproduces that shape.

use dsr_graph::{DiGraph, GraphBuilder, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Entity categories of the LUBM-like graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LubmEntity {
    /// A university (hierarchy root).
    University,
    /// A department (subOrganizationOf a university).
    Department,
    /// A research group (subOrganizationOf a department).
    ResearchGroup,
    /// A professor (headOf / worksFor a department).
    Professor,
    /// A student (memberOf a department, advised by a professor).
    Student,
    /// A publication (authored by professors/students).
    Publication,
}

/// A generated LUBM-like graph with entity-type metadata.
#[derive(Debug, Clone)]
pub struct LubmGraph {
    /// The underlying directed graph (edges point "up" the organization
    /// hierarchy / from authors to publications).
    pub graph: DiGraph,
    /// Entity type of every vertex.
    pub entity: Vec<LubmEntity>,
    /// Vertices per type, in generation order.
    pub universities: Vec<VertexId>,
    /// Department vertices.
    pub departments: Vec<VertexId>,
    /// Research-group vertices.
    pub research_groups: Vec<VertexId>,
    /// Professor vertices.
    pub professors: Vec<VertexId>,
    /// Student vertices.
    pub students: Vec<VertexId>,
}

/// Generates a LUBM-like graph with the given number of universities.
///
/// Each university gets 3–8 departments; each department gets 2–5 research
/// groups, 3–7 professors and 10–30 students. The result is sparse
/// (average degree around 1.5) and mostly acyclic, matching the paper's
/// description of the LUBM data.
pub fn lubm_like(num_universities: usize, seed: u64) -> LubmGraph {
    assert!(num_universities > 0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new();
    let mut entity = Vec::new();
    let mut universities = Vec::new();
    let mut departments = Vec::new();
    let mut research_groups = Vec::new();
    let mut professors = Vec::new();
    let mut students = Vec::new();

    let new_vertex = |builder: &mut GraphBuilder, entity: &mut Vec<LubmEntity>, kind| {
        let v = entity.len() as VertexId;
        builder.ensure_vertex(v);
        entity.push(kind);
        v
    };

    for _ in 0..num_universities {
        let uni = new_vertex(&mut builder, &mut entity, LubmEntity::University);
        universities.push(uni);
        let n_dep = rng.gen_range(3..=8);
        for _ in 0..n_dep {
            let dep = new_vertex(&mut builder, &mut entity, LubmEntity::Department);
            departments.push(dep);
            // subOrganizationOf
            builder.add_edge(dep, uni);
            let n_rg = rng.gen_range(2..=5);
            for _ in 0..n_rg {
                let rg = new_vertex(&mut builder, &mut entity, LubmEntity::ResearchGroup);
                research_groups.push(rg);
                builder.add_edge(rg, dep);
            }
            let n_prof = rng.gen_range(3..=7);
            let mut dept_profs = Vec::new();
            for _ in 0..n_prof {
                let prof = new_vertex(&mut builder, &mut entity, LubmEntity::Professor);
                professors.push(prof);
                dept_profs.push(prof);
                // worksFor
                builder.add_edge(prof, dep);
            }
            let n_stud = rng.gen_range(10..=30);
            for _ in 0..n_stud {
                let stud = new_vertex(&mut builder, &mut entity, LubmEntity::Student);
                students.push(stud);
                // memberOf
                builder.add_edge(stud, dep);
                // advisor
                let advisor = dept_profs[rng.gen_range(0..dept_profs.len())];
                builder.add_edge(stud, advisor);
            }
            // publications authored by professors and students
            let n_pub = rng.gen_range(5..=15);
            for _ in 0..n_pub {
                let publ = new_vertex(&mut builder, &mut entity, LubmEntity::Publication);
                let author = dept_profs[rng.gen_range(0..dept_profs.len())];
                builder.add_edge(author, publ);
            }
        }
    }

    LubmGraph {
        graph: builder.build(),
        entity,
        universities,
        departments,
        research_groups,
        professors,
        students,
    }
}

impl LubmGraph {
    /// All vertices of a given entity type.
    pub fn of_type(&self, kind: LubmEntity) -> Vec<VertexId> {
        self.entity
            .iter()
            .enumerate()
            .filter(|&(_, &e)| e == kind)
            .map(|(v, _)| v as VertexId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsr_graph::tarjan_scc;

    #[test]
    fn structure_is_sparse_and_acyclic() {
        let lubm = lubm_like(10, 1);
        let g = &lubm.graph;
        assert!(g.num_vertices() > 500);
        let scc = tarjan_scc(g);
        assert_eq!(
            scc.num_components,
            g.num_vertices(),
            "LUBM analogue must be acyclic"
        );
        let avg_degree = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(
            avg_degree < 2.5,
            "LUBM analogue must be sparse, got {avg_degree}"
        );
    }

    #[test]
    fn hierarchy_reaches_university() {
        let lubm = lubm_like(3, 2);
        // every research group reaches some university through
        // subOrganizationOf*
        for &rg in &lubm.research_groups {
            let reached = lubm
                .universities
                .iter()
                .any(|&u| dsr_graph::is_reachable(&lubm.graph, rg, u));
            assert!(reached, "research group {rg} cannot reach a university");
        }
    }

    #[test]
    fn type_lookup_matches_lists() {
        let lubm = lubm_like(2, 3);
        assert_eq!(lubm.of_type(LubmEntity::University), lubm.universities);
        assert_eq!(lubm.of_type(LubmEntity::Professor), lubm.professors);
        assert_eq!(lubm.entity.len(), lubm.graph.num_vertices());
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            lubm_like(4, 9).graph.edge_vec(),
            lubm_like(4, 9).graph.edge_vec()
        );
    }
}
