//! Synthetic dataset and workload generators.
//!
//! The paper evaluates on real-world graphs (Amazon, BerkStan, Google,
//! NotreDame, Stanford, LiveJournal, Twitter, Freebase) and on the
//! synthetic LUBM benchmark (Table 1). None of those downloads are
//! available offline, so this crate generates structural analogues at
//! laptop scale:
//!
//! * [`mod@erdos_renyi`] — uniform random digraphs (baseline workloads),
//! * [`mod@rmat`] — power-law R-MAT graphs standing in for the social graphs
//!   (LiveJournal, Twitter): heavy-tailed degrees and one giant SCC,
//! * [`web`] — bow-tie style web graphs standing in for the SNAP web crawls
//!   (Amazon, BerkStan, Google, NotreDame, Stanford): hierarchical host
//!   structure, moderate SCCs,
//! * [`lubm`] — a sparse, almost-acyclic RDF-like organization hierarchy
//!   standing in for LUBM (universities, departments, research groups),
//! * [`social`] — a planted-community social graph for the Section 4.5.B
//!   community-connectedness experiment.
//!
//! [`workload`] generates the query workloads (random source/target sets of
//! a given size) and [`datasets`] names scaled-down analogues of every
//! dataset in Table 1 so the experiment harness can refer to them by name.

#![forbid(unsafe_code)]

pub mod datasets;
pub mod erdos_renyi;
pub mod lubm;
pub mod rmat;
pub mod social;
pub mod web;
pub mod workload;

pub use datasets::{dataset_by_name, Dataset, DATASET_NAMES};
pub use erdos_renyi::erdos_renyi;
pub use lubm::{lubm_like, LubmGraph};
pub use rmat::rmat;
pub use social::{social_network, SocialGraph};
pub use web::web_graph;
pub use workload::{
    query_stream, random_query, update_stream, ArrivalPattern, EdgeOp, QueryStream, QueryWorkload,
    StreamConfig, TimedQuery, UpdateStreamConfig,
};
