//! Sharded atomic-swap snapshot holder for the installed index.
//!
//! The serving layer used to keep its index behind an
//! `RwLock<Arc<DsrIndex>>`: every reader took the read lock to clone the
//! `Arc`, and every update install took the *write* lock — for the whole
//! duration of the mutation — stalling all readers behind it. This module
//! replaces that with a [`SnapshotHolder`]: a small fixed array of
//! mutex-protected `Arc` slots all pointing at the same snapshot.
//!
//! * **Read path** ([`SnapshotHolder::read`]): a thread clones the `Arc`
//!   out of *its own* slot (threads are spread round-robin over the slots),
//!   so concurrent readers on different slots never contend with each
//!   other, and the critical section is a single pointer clone.
//! * **Install path** ([`SnapshotHolder::swap`]): the new snapshot is
//!   written into the slots one at a time, each lock held only for the
//!   pointer store — an install never stalls the read side, no matter how
//!   long the new index took to build.
//! * **Exclusive path** ([`SnapshotHolder::update`]): in-place mutation
//!   needs proof that no reader is traversing the index. The holder locks
//!   every slot (readers briefly block, exactly as they must), consolidates
//!   the slot clones into a single `Arc`, and hands the caller `&mut
//!   Arc<T>` — `Arc::get_mut` succeeds there if and only if no *external*
//!   clone (a pinned [`read`](SnapshotHolder::read) result) is outstanding,
//!   which is precisely the old `RwLock` + `Arc::get_mut` semantics.
//!
//! Readers racing an install may observe the old or the new snapshot —
//! that is the documented snapshot semantics of the service; cache
//! correctness is guaranteed separately by the generation check in
//! [`ShardedCache`](crate::cache::ShardedCache).

use dsr_sync::atomic::{AtomicUsize, Ordering};
use dsr_sync::{Arc, Mutex, MutexGuard};

/// Number of reader slots. More slots shrink reader/reader contention;
/// each costs one `Arc` clone per install. Eight covers the thread counts
/// the serving layer is benchmarked at without measurable install cost.
const SLOTS: usize = 8;

/// Round-robin assignment of threads to slots: each thread picks a slot
/// once and keeps it for its lifetime, so a steady set of client threads
/// spreads evenly and never migrates between slots.
fn my_slot() -> usize {
    // Inside a model-checker execution, derive the slot from the model
    // thread index instead of a global counter: fresh OS threads are
    // spawned for every explored schedule, and a process-global counter
    // would make slot assignment (and thus the schedule tree) drift
    // between iterations, breaking deterministic replay.
    if let Some(index) = dsr_sync::model::thread_index() {
        return index % SLOTS;
    }
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SLOTS;
    }
    SLOT.with(|s| *s)
}

/// A shared snapshot of `T` supporting wait-free-in-practice reads,
/// non-stalling installs and an exclusive update path. See the module docs.
pub struct SnapshotHolder<T> {
    /// Serializes writers ([`swap`](SnapshotHolder::swap) /
    /// [`update`](SnapshotHolder::update)) against each other — never held
    /// by readers. Without it, a `swap` caught midway through its slot
    /// stores by an `update` would leave the slots pointing at different
    /// snapshots.
    writer: Mutex<()>,
    /// Invariant: whenever a slot's mutex is unlocked, the slot is `Some`,
    /// and with the writer lock held all slots point at the same snapshot.
    /// `None` only occurs transiently inside
    /// [`update`](SnapshotHolder::update) while all slot locks are held.
    slots: [Mutex<Option<Arc<T>>>; SLOTS],
}

impl<T> SnapshotHolder<T> {
    /// Creates a holder over an initial snapshot.
    pub fn new(value: Arc<T>) -> Self {
        SnapshotHolder {
            writer: Mutex::new(()),
            slots: std::array::from_fn(|_| Mutex::new(Some(Arc::clone(&value)))),
        }
    }

    /// Clones the current snapshot out of the calling thread's slot.
    pub fn read(&self) -> Arc<T> {
        let slot = dsr_sync::lock(&self.slots[my_slot()]);
        Arc::clone(
            slot.as_ref()
                .expect("unlocked slot always holds a snapshot"),
        )
    }

    /// Installs a new snapshot. Each slot lock is held only for the
    /// pointer store, so readers are never stalled behind the caller.
    pub fn swap(&self, value: Arc<T>) {
        // Seeded mutation (model builds only): dropping the writer lock
        // lets two concurrent swaps interleave their slot stores, leaving
        // slots pointing at different snapshots — the model suite must
        // catch this (`model_mutation_snapshot_slot_race_detected`).
        let _writer = if dsr_sync::model::mutation_enabled(
            dsr_sync::model::MUTATION_SNAPSHOT_WIDEN_SLOT_RACE,
        ) {
            None
        } else {
            Some(dsr_sync::lock(&self.writer))
        };
        for slot in &self.slots {
            *dsr_sync::lock(slot) = Some(Arc::clone(&value));
        }
    }

    /// Runs `f` with exclusive access to the snapshot `Arc`.
    ///
    /// All slots are locked for the duration (readers block — required for
    /// any in-place mutation) and their clones are consolidated, so inside
    /// `f` the strong count excludes the holder itself: `Arc::get_mut`
    /// succeeds exactly when no externally pinned clone is outstanding.
    /// Whatever `Arc` the closure leaves behind (mutated in place or
    /// replaced wholesale) becomes the installed snapshot.
    pub fn update<R>(&self, f: impl FnOnce(&mut Arc<T>) -> R) -> R {
        let _writer = dsr_sync::lock(&self.writer);
        let mut guards: Vec<MutexGuard<'_, Option<Arc<T>>>> =
            self.slots.iter().map(|slot| dsr_sync::lock(slot)).collect();
        // Consolidate: take every slot's clone, keep one. Dropping the
        // other clones lowers the strong count to (1 + external pins);
        // the writer lock guarantees all slots held the same snapshot.
        let mut arc = guards[0]
            .take()
            .expect("unlocked slot always holds a snapshot");
        for guard in guards.iter_mut().skip(1) {
            guard.take();
        }
        let result = f(&mut arc);
        for guard in guards.iter_mut() {
            **guard = Some(Arc::clone(&arc));
        }
        result
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SnapshotHolder<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotHolder").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_returns_installed_snapshot() {
        let holder = SnapshotHolder::new(Arc::new(41));
        assert_eq!(*holder.read(), 41);
        holder.swap(Arc::new(42));
        assert_eq!(*holder.read(), 42);
    }

    #[test]
    fn swap_is_visible_to_all_slots() {
        let holder = Arc::new(SnapshotHolder::new(Arc::new(0usize)));
        holder.swap(Arc::new(7));
        // Many fresh threads → many distinct slots; all must see the swap.
        let handles: Vec<_> = (0..2 * SLOTS)
            .map(|_| {
                let holder = Arc::clone(&holder);
                dsr_sync::thread::spawn(move || *holder.read())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 7);
        }
    }

    #[test]
    fn update_gets_exclusive_access_when_unpinned() {
        let holder = SnapshotHolder::new(Arc::new(vec![1, 2, 3]));
        holder.update(|arc| {
            Arc::get_mut(arc)
                .expect("no external pins: exclusive")
                .push(4);
        });
        assert_eq!(*holder.read(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn pinned_read_blocks_exclusivity_but_not_replacement() {
        let holder = SnapshotHolder::new(Arc::new(1));
        let pin = holder.read();
        holder.update(|arc| {
            assert!(Arc::get_mut(arc).is_none(), "pinned clone denies get_mut");
            *arc = Arc::new(2); // fork-and-replace still works
        });
        assert_eq!(*pin, 1, "pinned reader keeps the old snapshot");
        assert_eq!(*holder.read(), 2);
        drop(pin);
        holder.update(|arc| {
            *Arc::get_mut(arc).expect("pin dropped: exclusive again") = 3;
        });
        assert_eq!(*holder.read(), 3);
    }

    /// Model checks of the swap/read protocol. Under `--cfg dsr_model`
    /// these explore every interleaving within the preemption bound; in
    /// normal builds they degrade to a single smoke execution.
    mod model_protocol {
        use super::*;
        use dsr_sync::model::{self, Model};

        /// A reader racing a swap sees the old or the new snapshot as a
        /// unit — never a torn pair — in *every* interleaving.
        #[test]
        fn model_swap_read_never_torn() {
            Model::new()
                .check(|| {
                    let holder = Arc::new(SnapshotHolder::new(Arc::new((1u64, !1u64))));
                    let writer = {
                        let holder = Arc::clone(&holder);
                        dsr_sync::thread::spawn(move || holder.swap(Arc::new((2, !2))))
                    };
                    let snap = holder.read();
                    assert_eq!(snap.0, !snap.1, "torn snapshot observed");
                    writer.join().unwrap();
                    let after = holder.read();
                    assert_eq!(after.0, 2, "joined swap must be visible");
                })
                .expect("swap/read protocol must hold in every schedule");
        }

        /// Two concurrent swaps must leave every slot agreeing on one
        /// winner (the writer lock serializes their slot stores).
        fn concurrent_swaps_agree() {
            let holder = Arc::new(SnapshotHolder::new(Arc::new(0u64)));
            let a = {
                let holder = Arc::clone(&holder);
                dsr_sync::thread::spawn(move || holder.swap(Arc::new(1)))
            };
            holder.swap(Arc::new(2));
            a.join().unwrap();
            let values: Vec<u64> = holder
                .slots
                .iter()
                .map(|s| **dsr_sync::lock(s).as_ref().expect("slot holds a snapshot"))
                .collect();
            assert!(
                values.iter().all(|v| *v == values[0]),
                "slots disagree after concurrent swaps: {values:?}"
            );
        }

        #[test]
        fn model_concurrent_swaps_agree() {
            Model::new()
                .check(concurrent_swaps_agree)
                .expect("serialized swaps must leave the slots consistent");
        }

        /// Seeded mutation: without the writer lock, some interleaving of
        /// two swaps tears the slots — the checker must find it.
        #[test]
        fn model_mutation_snapshot_slot_race_detected() {
            if !model::is_model_build() {
                return;
            }
            let failure = Model::new()
                .mutation(model::MUTATION_SNAPSHOT_WIDEN_SLOT_RACE)
                .check(concurrent_swaps_agree)
                .expect_err("unlocked swap must tear the slots in some schedule");
            assert!(failure.message.contains("slots disagree"), "{failure}");
        }
    }

    #[test]
    fn concurrent_readers_see_old_or_new_never_torn() {
        let holder = Arc::new(SnapshotHolder::new(Arc::new((1u64, !1u64))));
        let stop = Arc::new(dsr_sync::atomic::AtomicUsize::new(0));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let holder = Arc::clone(&holder);
                let stop = Arc::clone(&stop);
                dsr_sync::thread::spawn(move || {
                    while stop.load(Ordering::Relaxed) == 0 {
                        let snap = holder.read();
                        assert_eq!(snap.0, !snap.1, "torn snapshot observed");
                    }
                })
            })
            .collect();
        for i in 2..200u64 {
            holder.swap(Arc::new((i, !i)));
        }
        stop.store(1, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
    }
}
