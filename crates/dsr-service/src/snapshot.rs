//! The generation chain: MVCC snapshots of the installed index.
//!
//! The serving layer's index lives in a [`GenerationChain`]: every install
//! or mutating update batch produces a numbered, immutable [`Generation`]
//! wrapping an `Arc<DsrIndex>`. The *latest* generation answers the
//! default query paths; **pinned** readers (the service's `SnapshotRef`)
//! hold an `Arc<Generation>` of whatever generation was latest when they
//! pinned, so long analytical scans keep a consistent view while the live
//! index advances underneath them:
//!
//! ```text
//!   install/update        install/update
//!  gen 0 ──────────▶ gen 1 ──────────▶ gen 2   (latest, serves query())
//!    │                 │
//!    └─ reclaimed      └─ retained: 2 pinned SnapshotRefs
//!       (no pins)         reclaimed when the last pin drops
//! ```
//!
//! Old generations are *retained* while pinned and *reclaimed* — together
//! with their cache namespace (see
//! [`ShardedCache`](crate::cache::ShardedCache)) — when the last pin
//! drops; [`GenerationChain::retained`] is the gauge the mixed-tenant
//! bench reports. Reclamation is reference-count exact: a generation's
//! only non-pin owner is the chain's registry, so a registry entry with no
//! outside `Arc` clones is provably unobservable and safe to drop.
//!
//! Underneath, the latest generation sits in a [`SnapshotHolder`]: a small
//! fixed array of mutex-protected `Arc` slots all pointing at the same
//! snapshot.
//!
//! * **Read path** ([`SnapshotHolder::read`]): a thread clones the `Arc`
//!   out of *its own* slot (threads are spread round-robin over the slots),
//!   so concurrent readers on different slots never contend with each
//!   other, and the critical section is a single pointer clone.
//! * **Install path** ([`SnapshotHolder::swap`]): the new snapshot is
//!   written into the slots one at a time, each lock held only for the
//!   pointer store — an install never stalls the read side, no matter how
//!   long the new index took to build.
//! * **Exclusive path** ([`SnapshotHolder::update`]): in-place mutation
//!   needs proof that no reader is traversing the index. The holder locks
//!   every slot (readers briefly block, exactly as they must), consolidates
//!   the slot clones into a single `Arc`, and hands the caller `&mut
//!   Arc<T>` — `Arc::get_mut` succeeds there if and only if no *external*
//!   clone (a pinned [`read`](SnapshotHolder::read) result) is outstanding.
//!   [`GenerationChain::mutate_exclusive`] builds on this to distinguish
//!   *pinned snapshot readers* (typed
//!   [`ExclusiveRefused::Pinned`]) from *shared index `Arc`s*
//!   ([`ExclusiveRefused::IndexShared`]) — an old generation's pins no
//!   longer block the latest generation's in-place path at all, because
//!   each generation owns its own `Arc<DsrIndex>`.
//!
//! Readers racing an install may observe the old or the new generation —
//! that is the documented snapshot semantics of the service; cache
//! correctness is guaranteed by the per-generation namespaces of
//! [`ShardedCache`](crate::cache::ShardedCache).

use dsr_sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use dsr_sync::{Arc, Mutex, MutexGuard};

use dsr_core::DsrIndex;

/// Number of reader slots. More slots shrink reader/reader contention;
/// each costs one `Arc` clone per install. Eight covers the thread counts
/// the serving layer is benchmarked at without measurable install cost.
const SLOTS: usize = 8;

/// Round-robin assignment of threads to slots: each thread picks a slot
/// once and keeps it for its lifetime, so a steady set of client threads
/// spreads evenly and never migrates between slots.
fn my_slot() -> usize {
    // Inside a model-checker execution, derive the slot from the model
    // thread index instead of a global counter: fresh OS threads are
    // spawned for every explored schedule, and a process-global counter
    // would make slot assignment (and thus the schedule tree) drift
    // between iterations, breaking deterministic replay.
    if let Some(index) = dsr_sync::model::thread_index() {
        return index % SLOTS;
    }
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SLOTS;
    }
    SLOT.with(|s| *s)
}

/// A shared snapshot of `T` supporting wait-free-in-practice reads,
/// non-stalling installs and an exclusive update path. See the module docs.
pub struct SnapshotHolder<T> {
    /// Serializes writers ([`swap`](SnapshotHolder::swap) /
    /// [`update`](SnapshotHolder::update)) against each other — never held
    /// by readers. Without it, a `swap` caught midway through its slot
    /// stores by an `update` would leave the slots pointing at different
    /// snapshots.
    writer: Mutex<()>,
    /// Invariant: whenever a slot's mutex is unlocked, the slot is `Some`,
    /// and with the writer lock held all slots point at the same snapshot.
    /// `None` only occurs transiently inside
    /// [`update`](SnapshotHolder::update) while all slot locks are held.
    slots: [Mutex<Option<Arc<T>>>; SLOTS],
}

impl<T> SnapshotHolder<T> {
    /// Creates a holder over an initial snapshot.
    pub fn new(value: Arc<T>) -> Self {
        SnapshotHolder {
            writer: Mutex::new(()),
            slots: std::array::from_fn(|_| Mutex::new(Some(Arc::clone(&value)))),
        }
    }

    /// Clones the current snapshot out of the calling thread's slot.
    pub fn read(&self) -> Arc<T> {
        let slot = dsr_sync::lock(&self.slots[my_slot()]);
        Arc::clone(
            slot.as_ref()
                .expect("unlocked slot always holds a snapshot"),
        )
    }

    /// Installs a new snapshot. Each slot lock is held only for the
    /// pointer store, so readers are never stalled behind the caller.
    pub fn swap(&self, value: Arc<T>) {
        // Seeded mutation (model builds only): dropping the writer lock
        // lets two concurrent swaps interleave their slot stores, leaving
        // slots pointing at different snapshots — the model suite must
        // catch this (`model_mutation_snapshot_slot_race_detected`).
        let _writer = if dsr_sync::model::mutation_enabled(
            dsr_sync::model::MUTATION_SNAPSHOT_WIDEN_SLOT_RACE,
        ) {
            None
        } else {
            Some(dsr_sync::lock(&self.writer))
        };
        for slot in &self.slots {
            *dsr_sync::lock(slot) = Some(Arc::clone(&value));
        }
    }

    /// Runs `f` with exclusive access to the snapshot `Arc`.
    ///
    /// All slots are locked for the duration (readers block — required for
    /// any in-place mutation) and their clones are consolidated, so inside
    /// `f` the strong count excludes the holder itself: `Arc::get_mut`
    /// succeeds exactly when no externally pinned clone is outstanding.
    /// Whatever `Arc` the closure leaves behind (mutated in place or
    /// replaced wholesale) becomes the installed snapshot.
    pub fn update<R>(&self, f: impl FnOnce(&mut Arc<T>) -> R) -> R {
        let _writer = dsr_sync::lock(&self.writer);
        let mut guards: Vec<MutexGuard<'_, Option<Arc<T>>>> =
            self.slots.iter().map(|slot| dsr_sync::lock(slot)).collect();
        // Consolidate: take every slot's clone, keep one. Dropping the
        // other clones lowers the strong count to (1 + external pins);
        // the writer lock guarantees all slots held the same snapshot.
        let mut arc = guards[0]
            .take()
            .expect("unlocked slot always holds a snapshot");
        for guard in guards.iter_mut().skip(1) {
            guard.take();
        }
        let result = f(&mut arc);
        for guard in guards.iter_mut() {
            **guard = Some(Arc::clone(&arc));
        }
        result
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SnapshotHolder<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotHolder").finish_non_exhaustive()
    }
}

/// Monotonic identifier of a [`Generation`] in a [`GenerationChain`].
/// Generation 0 is the index the chain was created over; every install or
/// mutating update batch takes the next id. Ids are never reused, so a
/// reclaimed generation's id stays a valid "this snapshot is gone" token.
pub type GenerationId = u64;

/// One numbered, immutable snapshot of the served index.
///
/// A generation is created by [`GenerationChain::install`] or an advancing
/// [`GenerationChain::mutate_exclusive`] and never mutated afterwards
/// (in-place mutation *consumes* the old generation and wraps the mutated
/// index in a fresh one — provably unobserved, because the exclusive path
/// refuses to run while any pin is outstanding). Holding an
/// `Arc<Generation>` **pins** it: the chain retains pinned generations and
/// reclaims them when the last pin drops.
pub struct Generation {
    id: GenerationId,
    index: Arc<DsrIndex>,
}

impl std::fmt::Debug for Generation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Generation").field("id", &self.id).finish()
    }
}

impl Generation {
    /// This generation's chain-unique id.
    pub fn id(&self) -> GenerationId {
        self.id
    }

    /// The immutable index this generation serves.
    pub fn index(&self) -> &Arc<DsrIndex> {
        &self.index
    }
}

/// Why [`GenerationChain::mutate_exclusive`] refused to mutate in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExclusiveRefused {
    /// Pinned `SnapshotRef`s hold the **latest** generation: mutating the
    /// index under them would tear their consistent view. (Pins on *old*
    /// generations never refuse the exclusive path — each generation owns
    /// its own index `Arc`.)
    Pinned {
        /// The pinned latest generation.
        generation: GenerationId,
        /// How many pins were outstanding at the attempt.
        pins: usize,
    },
    /// The latest generation itself was unpinned, but raw `Arc<DsrIndex>`
    /// clones (from `QueryService::index`) are outstanding.
    IndexShared {
        /// The generation whose index `Arc` is shared.
        generation: GenerationId,
    },
}

/// Outcome of a successful [`GenerationChain::mutate_exclusive`].
#[derive(Debug)]
pub struct Mutated<R> {
    /// Whatever the mutation closure returned.
    pub result: R,
    /// The generation now serving: a fresh id when the mutation advanced
    /// the chain, the unchanged latest id for a no-op batch.
    pub generation: GenerationId,
    /// The generation consumed by an advancing mutation — its cache
    /// namespace is dead and the caller reclaims it. `None` for a no-op.
    pub retired: Option<GenerationId>,
}

/// The MVCC spine of the service: the latest [`Generation`] in a
/// [`SnapshotHolder`] for wait-free-in-practice reads, plus a registry of
/// retained (superseded but still pinned) generations.
///
/// See the [module docs](self) for the lifecycle diagram. The chain owns
/// reclamation ([`GenerationChain::reap`]) and the retained/created/
/// reclaimed gauges; cache-namespace reclamation is driven by the caller
/// from `reap`'s return value, keeping this type free of cache knowledge.
pub struct GenerationChain {
    /// The latest generation — the target of every unpinned read.
    holder: SnapshotHolder<Generation>,
    /// Superseded generations still retained, ascending by id. The latest
    /// generation is *not* in here: a registry entry whose `Arc` has no
    /// other owners is therefore provably unpinned and reclaimable.
    /// Also serializes installs: read-previous / push / swap happens under
    /// this lock, so concurrent installs cannot double-retain a
    /// generation.
    registry: Mutex<Vec<Arc<Generation>>>,
    /// Serializes whole update operations (fork → mutate → install) so two
    /// concurrent fork-based updates cannot both fork the same parent and
    /// silently lose one batch. Held via [`GenerationChain::lock_updates`]
    /// across the service's update entry points; never held by readers.
    update_lock: Mutex<()>,
    /// The next generation id == number of generations ever created.
    next_id: AtomicU64,
    /// Generations reclaimed so far (gauge: retained = created − reclaimed
    /// − 1 latest).
    reclaimed: AtomicU64,
}

impl GenerationChain {
    /// Creates a chain whose generation 0 serves `index`.
    pub fn new(index: Arc<DsrIndex>) -> Self {
        GenerationChain {
            holder: SnapshotHolder::new(Arc::new(Generation { id: 0, index })),
            registry: Mutex::new(Vec::new()),
            update_lock: Mutex::new(()),
            next_id: AtomicU64::new(1),
            reclaimed: AtomicU64::new(0),
        }
    }

    /// The latest generation. Holding the returned `Arc` pins it.
    pub fn latest(&self) -> Arc<Generation> {
        self.holder.read()
    }

    /// Looks up a retained (or latest) generation by id; `None` once it
    /// has been reclaimed.
    pub fn lookup(&self, id: GenerationId) -> Option<Arc<Generation>> {
        let latest = self.latest();
        if latest.id == id {
            return Some(latest);
        }
        dsr_sync::lock(&self.registry)
            .iter()
            .find(|generation| generation.id == id)
            .map(Arc::clone)
    }

    /// Serializes update operations end to end (exclusive attempt, fork,
    /// install). Readers never take this lock.
    pub fn lock_updates(&self) -> MutexGuard<'_, ()> {
        dsr_sync::lock(&self.update_lock)
    }

    /// Installs `index` as a fresh generation, retaining the superseded
    /// one until its pins drop. Returns the new generation.
    pub fn install(&self, index: Arc<DsrIndex>) -> Arc<Generation> {
        let generation = Arc::new(Generation {
            id: self.next_id.fetch_add(1, Ordering::SeqCst),
            index,
        });
        // The registry lock spans read-previous/push/swap: a concurrent
        // install observes this one's swap and retains the right
        // predecessor exactly once.
        let mut registry = dsr_sync::lock(&self.registry);
        let previous = self.holder.read();
        registry.push(previous);
        self.holder.swap(Arc::clone(&generation));
        generation
    }

    /// Runs `mutate` with exclusive access to the latest generation's
    /// index; when `advanced(&result)` reports a real change, the mutated
    /// index becomes a fresh generation and the consumed one is retired
    /// (see [`Mutated::retired`]).
    ///
    /// Callers serialize through [`GenerationChain::lock_updates`].
    ///
    /// # Errors
    /// [`ExclusiveRefused::Pinned`] when `SnapshotRef`s pin the latest
    /// generation (`mutate` does not run), [`ExclusiveRefused::IndexShared`]
    /// when raw index `Arc` clones are outstanding. Pins on *older*
    /// generations never refuse — that was the spurious `Arc::get_mut`
    /// failure of the single-snapshot design.
    pub fn mutate_exclusive<R>(
        &self,
        mutate: impl FnOnce(&mut DsrIndex) -> R,
        advanced: impl FnOnce(&R) -> bool,
    ) -> Result<Mutated<R>, ExclusiveRefused> {
        let next_id = &self.next_id;
        let reclaimed = &self.reclaimed;
        self.holder.update(|slot| {
            // `slot` is the consolidated latest generation: its strong
            // count here is 1 + outstanding pins.
            let pins = Arc::strong_count(slot) - 1;
            let current = slot.id;
            let Some(generation) = Arc::get_mut(slot) else {
                return Err(ExclusiveRefused::Pinned {
                    generation: current,
                    pins,
                });
            };
            let Some(index) = Arc::get_mut(&mut generation.index) else {
                return Err(ExclusiveRefused::IndexShared {
                    generation: current,
                });
            };
            let result = mutate(index);
            if advanced(&result) {
                // Consume the exclusively held generation: wrap the
                // mutated index in a fresh one. No reader ever observed
                // the mutation under the old id.
                let index = Arc::clone(&generation.index);
                *slot = Arc::new(Generation {
                    id: next_id.fetch_add(1, Ordering::SeqCst),
                    index,
                });
                // The consumed generation never reaches the registry: it
                // is reclaimed here, exactly once.
                reclaimed.fetch_add(1, Ordering::SeqCst);
                Ok(Mutated {
                    result,
                    generation: slot.id,
                    retired: Some(current),
                })
            } else {
                Ok(Mutated {
                    result,
                    generation: current,
                    retired: None,
                })
            }
        })
    }

    /// Reclaims every retained generation whose last pin has dropped,
    /// returning their ids (the caller retires the matching cache
    /// namespaces). A registry entry with `strong_count == 1` is owned by
    /// the registry alone — no pin can reappear while the registry lock is
    /// held, so the drop is exact, not heuristic.
    pub fn reap(&self) -> Vec<GenerationId> {
        let mut registry = dsr_sync::lock(&self.registry);
        let mut reclaimed = Vec::new();
        registry.retain(|generation| {
            if Arc::strong_count(generation) > 1 {
                return true;
            }
            reclaimed.push(generation.id);
            false
        });
        self.reclaimed
            .fetch_add(reclaimed.len() as u64, Ordering::SeqCst);
        reclaimed
    }

    /// The latest generation's id.
    pub fn latest_id(&self) -> GenerationId {
        self.latest().id
    }

    /// Gauge: generations currently alive (retained + the latest).
    pub fn retained(&self) -> usize {
        dsr_sync::lock(&self.registry).len() + 1
    }

    /// Generations ever created (including generation 0).
    pub fn created(&self) -> u64 {
        self.next_id.load(Ordering::SeqCst)
    }

    /// Generations reclaimed so far.
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed.load(Ordering::SeqCst)
    }
}

impl std::fmt::Debug for GenerationChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GenerationChain")
            .field("latest", &self.latest_id())
            .field("retained", &self.retained())
            .field("created", &self.created())
            .field("reclaimed", &self.reclaimed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_returns_installed_snapshot() {
        let holder = SnapshotHolder::new(Arc::new(41));
        assert_eq!(*holder.read(), 41);
        holder.swap(Arc::new(42));
        assert_eq!(*holder.read(), 42);
    }

    #[test]
    fn swap_is_visible_to_all_slots() {
        let holder = Arc::new(SnapshotHolder::new(Arc::new(0usize)));
        holder.swap(Arc::new(7));
        // Many fresh threads → many distinct slots; all must see the swap.
        let handles: Vec<_> = (0..2 * SLOTS)
            .map(|_| {
                let holder = Arc::clone(&holder);
                dsr_sync::thread::spawn(move || *holder.read())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 7);
        }
    }

    #[test]
    fn update_gets_exclusive_access_when_unpinned() {
        let holder = SnapshotHolder::new(Arc::new(vec![1, 2, 3]));
        holder.update(|arc| {
            Arc::get_mut(arc)
                .expect("no external pins: exclusive")
                .push(4);
        });
        assert_eq!(*holder.read(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn pinned_read_blocks_exclusivity_but_not_replacement() {
        let holder = SnapshotHolder::new(Arc::new(1));
        let pin = holder.read();
        holder.update(|arc| {
            assert!(Arc::get_mut(arc).is_none(), "pinned clone denies get_mut");
            *arc = Arc::new(2); // fork-and-replace still works
        });
        assert_eq!(*pin, 1, "pinned reader keeps the old snapshot");
        assert_eq!(*holder.read(), 2);
        drop(pin);
        holder.update(|arc| {
            *Arc::get_mut(arc).expect("pin dropped: exclusive again") = 3;
        });
        assert_eq!(*holder.read(), 3);
    }

    /// Model checks of the swap/read protocol. Under `--cfg dsr_model`
    /// these explore every interleaving within the preemption bound; in
    /// normal builds they degrade to a single smoke execution.
    mod model_protocol {
        use super::*;
        use dsr_sync::model::{self, Model};

        /// A reader racing a swap sees the old or the new snapshot as a
        /// unit — never a torn pair — in *every* interleaving.
        #[test]
        fn model_swap_read_never_torn() {
            Model::new()
                .check(|| {
                    let holder = Arc::new(SnapshotHolder::new(Arc::new((1u64, !1u64))));
                    let writer = {
                        let holder = Arc::clone(&holder);
                        dsr_sync::thread::spawn(move || holder.swap(Arc::new((2, !2))))
                    };
                    let snap = holder.read();
                    assert_eq!(snap.0, !snap.1, "torn snapshot observed");
                    writer.join().unwrap();
                    let after = holder.read();
                    assert_eq!(after.0, 2, "joined swap must be visible");
                })
                .expect("swap/read protocol must hold in every schedule");
        }

        /// Two concurrent swaps must leave every slot agreeing on one
        /// winner (the writer lock serializes their slot stores).
        fn concurrent_swaps_agree() {
            let holder = Arc::new(SnapshotHolder::new(Arc::new(0u64)));
            let a = {
                let holder = Arc::clone(&holder);
                dsr_sync::thread::spawn(move || holder.swap(Arc::new(1)))
            };
            holder.swap(Arc::new(2));
            a.join().unwrap();
            let values: Vec<u64> = holder
                .slots
                .iter()
                .map(|s| **dsr_sync::lock(s).as_ref().expect("slot holds a snapshot"))
                .collect();
            assert!(
                values.iter().all(|v| *v == values[0]),
                "slots disagree after concurrent swaps: {values:?}"
            );
        }

        #[test]
        fn model_concurrent_swaps_agree() {
            Model::new()
                .check(concurrent_swaps_agree)
                .expect("serialized swaps must leave the slots consistent");
        }

        /// Seeded mutation: without the writer lock, some interleaving of
        /// two swaps tears the slots — the checker must find it.
        #[test]
        fn model_mutation_snapshot_slot_race_detected() {
            if !model::is_model_build() {
                return;
            }
            let failure = Model::new()
                .mutation(model::MUTATION_SNAPSHOT_WIDEN_SLOT_RACE)
                .check(concurrent_swaps_agree)
                .expect_err("unlocked swap must tear the slots in some schedule");
            assert!(failure.message.contains("slots disagree"), "{failure}");
        }
    }

    mod chain {
        use super::*;
        use dsr_graph::DiGraph;
        use dsr_partition::Partitioning;
        use dsr_reach::LocalIndexKind;

        fn chain_index() -> Arc<DsrIndex> {
            let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
            let p = Partitioning::new(vec![0, 0, 1, 1], 2);
            Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs))
        }

        #[test]
        fn install_retains_until_pins_drop() {
            let chain = GenerationChain::new(chain_index());
            assert_eq!(chain.latest_id(), 0);
            assert_eq!(chain.retained(), 1);

            let pin = chain.latest();
            let next = chain.install(chain_index());
            assert_eq!(next.id(), 1);
            assert_eq!(chain.latest_id(), 1);
            // The pinned generation 0 survives the install …
            assert_eq!(chain.retained(), 2);
            assert!(chain.reap().is_empty(), "pinned generation not reclaimed");
            assert_eq!(pin.id(), 0);
            // … and is reclaimed exactly when the pin drops.
            drop(pin);
            assert_eq!(chain.reap(), vec![0]);
            assert_eq!(chain.retained(), 1);
            assert_eq!(chain.created(), 2);
            assert_eq!(chain.reclaimed(), 1);
            assert!(chain.lookup(0).is_none(), "reclaimed id no longer resolves");
            assert_eq!(chain.lookup(1).expect("latest resolves").id(), 1);
        }

        #[test]
        fn exclusive_mutation_advances_the_chain() {
            let chain = GenerationChain::new(chain_index());
            let mutated = chain
                .mutate_exclusive(|index| index.insert_edge(3, 0), |o| o.rebuilt_compounds)
                .expect("no pins, no shared index");
            assert!(mutated.result.rebuilt_compounds);
            assert_eq!(mutated.generation, 1);
            assert_eq!(mutated.retired, Some(0));
            assert_eq!(chain.latest_id(), 1);
            assert_eq!(chain.retained(), 1, "consumed generation never retained");
            assert_eq!(chain.reclaimed(), 1);
        }

        #[test]
        fn noop_mutation_keeps_the_generation() {
            let chain = GenerationChain::new(chain_index());
            let mutated = chain
                .mutate_exclusive(|index| index.insert_edge(0, 1), |o| o.rebuilt_compounds)
                .expect("exclusive");
            assert!(
                !mutated.result.rebuilt_compounds,
                "duplicate edge is a no-op"
            );
            assert_eq!(mutated.generation, 0);
            assert_eq!(mutated.retired, None);
            assert_eq!(chain.latest_id(), 0);
        }

        #[test]
        fn latest_pin_refuses_exclusivity_with_pin_count() {
            let chain = GenerationChain::new(chain_index());
            let pin_a = chain.latest();
            let pin_b = chain.latest();
            let refused = chain
                .mutate_exclusive(|index| index.insert_edge(3, 0), |_| true)
                .expect_err("pinned latest generation");
            assert_eq!(
                refused,
                ExclusiveRefused::Pinned {
                    generation: 0,
                    pins: 2
                }
            );
            drop((pin_a, pin_b));
            assert!(chain
                .mutate_exclusive(|index| index.insert_edge(3, 0), |_| true)
                .is_ok());
        }

        #[test]
        fn old_generation_pins_do_not_block_the_latest() {
            let chain = GenerationChain::new(chain_index());
            let old_pin = chain.latest();
            chain.install(chain_index()); // old_pin now pins a *retained* generation
            let mutated = chain
                .mutate_exclusive(|index| index.insert_edge(3, 0), |_| true)
                .expect("pins on old generations are not spurious conflicts");
            assert_eq!(mutated.generation, 2);
            assert_eq!(old_pin.id(), 0, "old pin unaffected");
        }

        #[test]
        fn shared_index_arc_is_a_distinct_refusal() {
            let chain = GenerationChain::new(chain_index());
            let shared = Arc::clone(chain.latest().index());
            let refused = chain
                .mutate_exclusive(|index| index.insert_edge(3, 0), |_| true)
                .expect_err("index Arc shared");
            assert_eq!(refused, ExclusiveRefused::IndexShared { generation: 0 });
            drop(shared);
        }
    }

    #[test]
    fn concurrent_readers_see_old_or_new_never_torn() {
        let holder = Arc::new(SnapshotHolder::new(Arc::new((1u64, !1u64))));
        let stop = Arc::new(dsr_sync::atomic::AtomicUsize::new(0));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let holder = Arc::clone(&holder);
                let stop = Arc::clone(&stop);
                dsr_sync::thread::spawn(move || {
                    while stop.load(Ordering::Relaxed) == 0 {
                        let snap = holder.read();
                        assert_eq!(snap.0, !snap.1, "torn snapshot observed");
                    }
                })
            })
            .collect();
        for i in 2..200u64 {
            holder.swap(Arc::new((i, !i)));
        }
        stop.store(1, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
    }
}
