//! The concurrent query service: a batch-forming front end over a shared
//! [`DsrIndex`].

use dsr_sync::Arc;
use std::time::{Duration, Instant};

use dsr_cluster::{
    BatchStats, CacheStats, CommStats, DynTransport, FailoverSnapshot, TransportError,
    TransportKind, UpdateStats,
};
use dsr_core::{coalesce_updates, DsrEngine, DsrIndex, SetQuery, UpdateOp, UpdateOutcome};
use dsr_graph::VertexId;

use crate::batcher::{Admission, Batcher, BatcherConfig, Entry, RoundCost, ServiceError, Waiter};
use crate::cache::{CachedPairs, ShardedCache, SigKey};
use crate::snapshot::SnapshotHolder;

/// Why an update could not be applied.
#[derive(Debug)]
pub enum UpdateError {
    /// Other `Arc` clones of the index are outstanding (a caller holding
    /// [`QueryService::index`]), so mutating in place would race with
    /// concurrent readers. Either drop the outstanding clones, enable
    /// [`ServiceConfig::clone_on_write`], or rebuild offline and
    /// [`install_index`](QueryService::install_index).
    IndexShared,
    /// The service's transport failed while shipping the refresh deltas
    /// (e.g. a TCP worker died mid-exchange). On the in-place path the
    /// owned index may be left partially refreshed — prefer
    /// [`ServiceConfig::clone_on_write`] on fallible transports, where the
    /// half-applied fork is discarded and readers keep the last good
    /// index.
    Transport(TransportError),
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::IndexShared => f.write_str(
                "index Arc is shared with outstanding readers; drop the clones, enable \
                 clone_on_write, or rebuild and install_index",
            ),
            UpdateError::Transport(err) => write!(f, "update delta exchange failed: {err}"),
        }
    }
}

impl std::error::Error for UpdateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UpdateError::IndexShared => None,
            UpdateError::Transport(err) => Some(err),
        }
    }
}

impl From<TransportError> for UpdateError {
    fn from(err: TransportError) -> Self {
        UpdateError::Transport(err)
    }
}

/// Configuration of a [`QueryService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum number of cached query results (clamped to at least 1).
    pub cache_capacity: usize,
    /// Whether the result cache is consulted at all. Disabling it turns
    /// every [`QueryService::query`] into a fused execution (still batched
    /// across clients, never cached).
    pub cache_enabled: bool,
    /// Number of independently locked cache shards. Clamped so each shard
    /// keeps a meaningful LRU capacity (see
    /// [`ShardedCache::MIN_SHARD_CAPACITY`]) — tiny caches collapse to a
    /// single shard with exact global LRU semantics. More shards shrink
    /// hit-path lock contention between client threads.
    pub cache_shards: usize,
    /// Size cap of the batch former: the scheduler stops waiting and
    /// executes as soon as this many queries are pending. Groups submitted
    /// by one [`QueryService::query_batch`] call are indivisible, so a
    /// formed batch can exceed the cap by the tail group's size.
    pub max_batch: usize,
    /// Bounded forming window in microseconds: a cache-missing query waits
    /// at most this long for other clients' misses to fuse with before the
    /// batch executes. `0` disables the window (every submission executes
    /// immediately with whatever queued meanwhile) — single-client latency
    /// is then optimal but cross-client fusion only happens under true
    /// concurrency.
    pub max_wait_us: u64,
    /// Admission limit: maximum number of submitted-but-unanswered queries
    /// before backpressure. [`QueryService::try_query`] /
    /// [`QueryService::try_submit`] fail fast with
    /// [`ServiceError::Overloaded`]; the blocking entry points wait for
    /// room instead.
    pub admission_depth: usize,
    /// Which communication backend the service's engine runs over:
    /// [`TransportKind::InProcess`] (zero-copy moves, the default),
    /// [`TransportKind::Wire`] (serialized framed bytes through OS pipes)
    /// or [`TransportKind::Tcp`] (framed bytes through loopback TCP worker
    /// endpoints; to front **external** `dsr-node` workers, connect a
    /// [`TcpTransport`](dsr_cluster::TcpTransport) yourself and use
    /// [`QueryService::with_config_and_transport`]). The backend is
    /// instantiated once at construction and shared by every query this
    /// service executes — and by the refresh exchange of every update
    /// applied through [`QueryService::apply_updates`].
    pub transport: TransportKind,
    /// Fallback for updates while the index `Arc` is shared: when `true`,
    /// [`QueryService::update_in_place`] / [`QueryService::apply_updates`]
    /// fork the index ([`DsrIndex::fork`]), apply the update to the fork
    /// and atomically swap it in instead of returning
    /// [`UpdateError::IndexShared`]. Costs one local-index rebuild per
    /// partition; off by default.
    pub clone_on_write: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_capacity: 1024,
            cache_enabled: true,
            cache_shards: 8,
            max_batch: 64,
            max_wait_us: 200,
            admission_depth: 1024,
            transport: TransportKind::InProcess,
            clone_on_write: false,
        }
    }
}

impl ServiceConfig {
    /// The default configuration with the transport selected by the
    /// `DSR_TRANSPORT` environment variable, parsed by the shared
    /// [`FromStr`](std::str::FromStr) impl of [`TransportKind`] (an invalid
    /// value fails loudly, listing the accepted names).
    pub fn from_env() -> Self {
        ServiceConfig {
            transport: TransportKind::from_env(),
            ..ServiceConfig::default()
        }
    }
}

/// Which ownership path [`QueryService::mutate_index`] took — callers use
/// it to decide whether a failed mutation could have corrupted the
/// installed index (in place) or only a discarded fork.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UpdatePath {
    /// The `Arc` was exclusive: the installed index itself was mutated.
    InPlace,
    /// Clone-on-write: a fork was mutated (and installed only on approved
    /// success).
    Fork,
}

/// Outcome of a batched service call.
#[derive(Debug, Clone)]
pub struct BatchReply {
    /// One answer per input query, in input order. Answers are `Arc`-shared
    /// with the cache, so repeated queries cost no copies.
    pub results: Vec<CachedPairs>,
    /// How many of the input queries were answered from the cache.
    pub cache_hits: usize,
    /// How many distinct queries were actually executed (cache misses after
    /// in-batch deduplication; under concurrency some may instead be
    /// resolved by another client's simultaneous execution).
    pub executed: usize,
    /// Communication rounds of the fused execution(s) that answered this
    /// batch (0 when every query hit the cache).
    pub rounds: u64,
    /// Messages exchanged by the fused execution(s).
    pub messages: u64,
    /// Bytes exchanged by the fused execution(s).
    pub bytes: u64,
    /// Wall-clock time of the whole call (probe + batch formation +
    /// execution + insert).
    pub elapsed: Duration,
}

/// The state shared between client threads and the batch-forming
/// scheduler thread.
pub(crate) struct Core {
    pub(crate) snapshot: SnapshotHolder<DsrIndex>,
    pub(crate) cache: ShardedCache,
    pub(crate) cache_enabled: bool,
    pub(crate) transport: DynTransport,
    pub(crate) admission: Admission,
    pub(crate) stats: CacheStats,
    pub(crate) comm: CommStats,
    pub(crate) batch: BatchStats,
}

/// A pending (or immediately answered) single-query submission — the
/// two-phase half of [`QueryService::query`]. Obtain one with
/// [`QueryService::submit`] / [`QueryService::try_submit`], then collect
/// the answer with [`QueryTicket::wait`].
#[derive(Debug)]
pub struct QueryTicket {
    inner: TicketInner,
}

enum TicketInner {
    /// Answered from the cache at submission time.
    Ready(CachedPairs),
    /// Queued for fused execution; slot 0 of a single-entry group.
    Pending(Arc<Waiter>),
}

impl std::fmt::Debug for TicketInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TicketInner::Ready(_) => f.write_str("Ready"),
            TicketInner::Pending(_) => f.write_str("Pending"),
        }
    }
}

impl QueryTicket {
    /// Whether the submission was answered from the cache without touching
    /// the scheduler (waiting on it will not block).
    pub fn is_ready(&self) -> bool {
        matches!(self.inner, TicketInner::Ready(_))
    }

    /// Blocks until the query is answered.
    ///
    /// # Errors
    /// [`ServiceError::Transport`] when the fused execution containing
    /// this query failed on the service transport.
    pub fn wait(self) -> Result<CachedPairs, ServiceError> {
        match self.inner {
            TicketInner::Ready(value) => Ok(value),
            TicketInner::Pending(waiter) => {
                let mut fulfillments = waiter.wait()?;
                let (value, _cost) = fulfillments.pop().expect("single-slot group");
                Ok(value)
            }
        }
    }
}

/// A thread-safe query-serving front end over a shared [`DsrIndex`].
///
/// The service can be hammered from any number of client threads
/// concurrently. Queries flow through a **batch former** (see the
/// [`batcher`](crate::batcher) module): cache hits are answered directly
/// from the sharded result cache, while cache misses from *all* clients
/// are fused by a dedicated scheduler thread into shared
/// scatter/exchange/gather runs — 3 communication rounds per formed batch
/// instead of 3 per query. Per-slave work runs on the process-wide
/// persistent [`SlavePool`](dsr_cluster::SlavePool), so concurrent batches
/// interleave at slave-task granularity instead of spawning threads.
///
/// # Caching and updates
///
/// Results are cached in a bounded sharded LRU keyed on the normalized
/// `(sources, targets)` signature, with hit/miss counters surfaced through
/// [`CacheStats`]. The cache is coupled to the index by a generation
/// counter:
///
/// * [`QueryService::install_index`] swaps in a new index, clears the cache
///   and bumps the generation, so no stale answer survives an index swap —
///   in-flight queries that started against the old index will compute the
///   old answer but are **not** inserted into the cache (their generation
///   check fails).
/// * [`QueryService::update_in_place`] applies an incremental update
///   (`DsrIndex::insert_edges` / `delete_edges`, Section 3.3.3 of the
///   paper) directly to the owned index when no other `Arc` clones are
///   outstanding, then invalidates the cache the same way.
/// * [`QueryService::query_uncached`] bypasses the cache **and** the batch
///   former entirely — the escape hatch for callers that must observe the
///   latest index state without touching cached entries (e.g.
///   read-your-writes checks right after an update).
pub struct QueryService {
    // Declared before `core` so Drop joins the scheduler thread first.
    batcher: Batcher,
    core: Arc<Core>,
    clone_on_write: bool,
    /// Aggregate refresh-exchange cost of every update batch applied
    /// through this service (rounds/messages/bytes of shipped deltas).
    updates_comm: CommStats,
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService")
            .field("cache_enabled", &self.core.cache_enabled)
            .field("cache", &self.core.cache)
            .finish()
    }
}

impl QueryService {
    /// Creates a service over `index` with the default configuration.
    pub fn new(index: Arc<DsrIndex>) -> Self {
        Self::with_config(index, ServiceConfig::default())
    }

    /// Creates a service over `index` with an explicit configuration.
    pub fn with_config(index: Arc<DsrIndex>, config: ServiceConfig) -> Self {
        let transport = config.transport.create();
        Self::with_config_and_transport(index, config, transport)
    }

    /// Creates a service over `index` with an explicit configuration **and
    /// an already-constructed transport** — the entry point for fronting a
    /// remote cluster: connect a
    /// [`TcpTransport`](dsr_cluster::TcpTransport) to the `dsr-node`
    /// workers and hand it over wrapped in
    /// [`DynTransport::Tcp`](dsr_cluster::DynTransport). The
    /// `config.transport` field is ignored in favor of the given backend.
    pub fn with_config_and_transport(
        index: Arc<DsrIndex>,
        config: ServiceConfig,
        transport: DynTransport,
    ) -> Self {
        let core = Arc::new(Core {
            snapshot: SnapshotHolder::new(index),
            cache: ShardedCache::new(config.cache_capacity, config.cache_shards),
            cache_enabled: config.cache_enabled,
            transport,
            admission: Admission::new(config.admission_depth),
            stats: CacheStats::new(),
            comm: CommStats::new(),
            batch: BatchStats::new(),
        });
        let batcher = Batcher::spawn(
            Arc::clone(&core),
            BatcherConfig {
                max_batch: config.max_batch.max(1),
                max_wait: Duration::from_micros(config.max_wait_us),
            },
        );
        QueryService {
            batcher,
            core,
            clone_on_write: config.clone_on_write,
            updates_comm: CommStats::new(),
        }
    }

    /// A clone of the currently installed index.
    pub fn index(&self) -> Arc<DsrIndex> {
        self.core.snapshot.read()
    }

    /// Which transport backend this service executes queries over.
    pub fn transport_kind(&self) -> TransportKind {
        self.core.transport.kind()
    }

    /// The transport this service executes queries over, for callers that
    /// need direct access to the backend (e.g. to inject faults or rejoin
    /// suspect workers on a [`DynTransport::Tcp`] cluster).
    pub fn transport(&self) -> &DynTransport {
        &self.core.transport
    }

    /// Failover counters for this service's transport: retries, suspects
    /// and resyncs accumulated while routing around dead replicas. All
    /// zeros on the in-process and pipe backends (which cannot fail) and on
    /// a fault-free TCP cluster — [`FailoverSnapshot::is_zero`] is the
    /// degraded-mode check.
    pub fn failover_stats(&self) -> FailoverSnapshot {
        self.core
            .transport
            .failover_stats()
            .map(|stats| stats.snapshot())
            .unwrap_or_default()
    }

    /// Cache hit/miss/eviction counters.
    pub fn cache_stats(&self) -> &CacheStats {
        &self.core.stats
    }

    /// Aggregate communication counters across every query this service has
    /// executed (cache hits add nothing — that is the point of the cache).
    pub fn comm_stats(&self) -> &CommStats {
        &self.core.comm
    }

    /// Batch-former counters: formed-batch size histogram, queued wait and
    /// the fusion ratio (queries per communication round).
    pub fn batch_stats(&self) -> &BatchStats {
        &self.core.batch
    }

    /// Number of currently cached results.
    pub fn cache_len(&self) -> usize {
        self.core.cache.len()
    }

    /// Probes the cache and, on a miss, enqueues the query into the batch
    /// former, blocking for admission if the service is saturated. The
    /// returned [`QueryTicket`] collects the answer.
    ///
    /// Submitting without immediately waiting is how a single client
    /// presents concurrent work: submit several queries, then
    /// [`flush`](QueryService::flush) and wait on the tickets — the misses
    /// fuse into one protocol run exactly like misses from distinct
    /// threads.
    pub fn submit(&self, sources: &[VertexId], targets: &[VertexId]) -> QueryTicket {
        self.submit_inner(sources, targets, true)
            .expect("blocking admission cannot be refused")
    }

    /// Non-blocking [`submit`](QueryService::submit): fails fast with
    /// [`ServiceError::Overloaded`] instead of waiting for admission when
    /// [`ServiceConfig::admission_depth`] queries are already in flight.
    ///
    /// # Errors
    /// [`ServiceError::Overloaded`] on a saturated admission queue.
    pub fn try_submit(
        &self,
        sources: &[VertexId],
        targets: &[VertexId],
    ) -> Result<QueryTicket, ServiceError> {
        self.submit_inner(sources, targets, false)
    }

    fn submit_inner(
        &self,
        sources: &[VertexId],
        targets: &[VertexId],
        blocking: bool,
    ) -> Result<QueryTicket, ServiceError> {
        let key = SigKey::new(sources, targets);
        if self.core.cache_enabled {
            if let Some(hit) = self.core.cache.get(&key) {
                self.core.stats.record_hit();
                return Ok(QueryTicket {
                    inner: TicketInner::Ready(hit),
                });
            }
            self.core.stats.record_miss();
        }
        if blocking {
            self.core.admission.acquire_blocking(1);
        } else {
            self.core.admission.try_acquire(1)?;
        }
        let waiter = Waiter::new(1);
        self.batcher.submit(vec![Entry {
            key,
            waiter: Arc::clone(&waiter),
            slot: 0,
            enqueued: Instant::now(),
        }]);
        Ok(QueryTicket {
            inner: TicketInner::Pending(waiter),
        })
    }

    /// Asks the batch former to execute whatever is pending right now
    /// instead of waiting out the forming window — pair with
    /// [`submit`](QueryService::submit) when the caller knows no more work
    /// is coming.
    pub fn flush(&self) {
        self.batcher.flush();
    }

    /// Answers `S ; T`, consulting the result cache; misses fuse with
    /// concurrent clients' misses into shared protocol rounds.
    ///
    /// Blocks for admission when the service is saturated (use
    /// [`try_query`](QueryService::try_query) for fail-fast backpressure).
    ///
    /// # Panics
    /// On transport failure, like the underlying
    /// [`DsrEngine::set_reachability`] — the in-process and pipe backends
    /// never fail; TCP-fronted callers who need the typed error use
    /// [`try_query`](QueryService::try_query) or
    /// [`query_batch`](QueryService::query_batch).
    pub fn query(&self, sources: &[VertexId], targets: &[VertexId]) -> CachedPairs {
        match self.submit(sources, targets).wait() {
            Ok(value) => value,
            Err(err) => panic!("service query failed: {err}"),
        }
    }

    /// Fail-fast [`query`](QueryService::query): returns
    /// [`ServiceError::Overloaded`] instead of blocking when the admission
    /// queue is saturated, and [`ServiceError::Transport`] instead of
    /// panicking when the fused execution fails.
    ///
    /// # Errors
    /// [`ServiceError::Overloaded`] on a saturated admission queue,
    /// [`ServiceError::Transport`] when the fused run failed.
    pub fn try_query(
        &self,
        sources: &[VertexId],
        targets: &[VertexId],
    ) -> Result<CachedPairs, ServiceError> {
        self.try_submit(sources, targets)?.wait()
    }

    /// Answers `S ; T` without touching the cache or the batch former (no
    /// lookup, no insert, no queueing).
    ///
    /// This is the documented bypass path for post-update reads: it always
    /// evaluates against the currently installed index.
    pub fn query_uncached(
        &self,
        sources: &[VertexId],
        targets: &[VertexId],
    ) -> Vec<(VertexId, VertexId)> {
        let index = self.index();
        let engine = DsrEngine::with_transport(&index, &self.core.transport);
        let outcome = engine.set_reachability(sources, targets);
        self.core
            .comm
            .add(outcome.rounds, outcome.messages, outcome.bytes);
        outcome.pairs
    }

    /// Answers a whole batch of queries with a single
    /// scatter/exchange/gather sequence for all cache misses.
    ///
    /// The batch is probed against the cache; the misses are submitted to
    /// the batch former as one indivisible group and flushed, so a lone
    /// caller still pays exactly one fused 3-round execution — and under
    /// concurrency the group shares its rounds with other clients' misses
    /// that queued in the same window. Identical signatures within the
    /// batch are deduplicated so each distinct miss is executed exactly
    /// once.
    ///
    /// # Errors
    /// [`ServiceError::Transport`] when the fused execution fails (e.g. a
    /// TCP worker disconnecting) — nothing is cached from a failed batch —
    /// and never [`ServiceError::Overloaded`]: a whole batch blocks for
    /// admission. The in-process and pipe backends never fail.
    pub fn query_batch(&self, queries: &[SetQuery]) -> Result<BatchReply, ServiceError> {
        let start = Instant::now();
        let mut results: Vec<Option<CachedPairs>> = vec![None; queries.len()];
        let mut cache_hits = 0usize;
        let mut miss_keys: Vec<SigKey> = Vec::new();
        let mut miss_slots: Vec<usize> = Vec::new(); // waiter slot -> query index
        for (qi, query) in queries.iter().enumerate() {
            let key = SigKey::from_query(query);
            if self.core.cache_enabled {
                if let Some(hit) = self.core.cache.get(&key) {
                    self.core.stats.record_hit();
                    cache_hits += 1;
                    results[qi] = Some(hit);
                    continue;
                }
                self.core.stats.record_miss();
            }
            miss_slots.push(qi);
            miss_keys.push(key);
        }

        let (mut rounds, mut messages, mut bytes) = (0u64, 0u64, 0u64);
        let mut executed = 0usize;
        if !miss_keys.is_empty() {
            self.core.admission.acquire_blocking(miss_keys.len());
            let waiter = Waiter::new(miss_keys.len());
            let enqueued = Instant::now();
            self.batcher.submit(
                miss_keys
                    .iter()
                    .enumerate()
                    .map(|(slot, key)| Entry {
                        key: key.clone(),
                        waiter: Arc::clone(&waiter),
                        slot,
                        enqueued,
                    })
                    .collect(),
            );
            // The caller already presented the whole batch: nothing is
            // gained by waiting out the forming window.
            self.batcher.flush();
            let fulfillments = waiter.wait()?;

            // Aggregate the reply: count each distinct executed signature
            // once, and each fused run's cost once (duplicates and
            // scheduler-side cache resolutions share `Arc`s).
            let mut executed_sigs: Vec<&SigKey> = Vec::new();
            let mut costs: Vec<Arc<RoundCost>> = Vec::new();
            for (slot, (value, cost)) in fulfillments.into_iter().enumerate() {
                if let Some(cost) = cost {
                    let key = &miss_keys[slot];
                    if !executed_sigs.contains(&key) {
                        executed_sigs.push(key);
                        executed += 1;
                    }
                    if !costs.iter().any(|seen| Arc::ptr_eq(seen, &cost)) {
                        rounds += cost.rounds;
                        messages += cost.messages;
                        bytes += cost.bytes;
                        costs.push(cost);
                    }
                }
                results[miss_slots[slot]] = Some(value);
            }
        }

        Ok(BatchReply {
            results: results
                .into_iter()
                .map(|slot| slot.expect("every query answered"))
                .collect(),
            cache_hits,
            executed,
            rounds,
            messages,
            bytes,
            elapsed: start.elapsed(),
        })
    }

    /// Swaps in a new index and invalidates the cache.
    ///
    /// The swap never stalls the read side: each snapshot slot is locked
    /// only for a pointer store (see
    /// [`SnapshotHolder`]). Use this
    /// after rebuilding an index offline (or applying updates to a
    /// privately owned one). Queries started before the swap finish
    /// against the old index but cannot pollute the cache (generation
    /// check).
    pub fn install_index(&self, index: Arc<DsrIndex>) {
        self.core.snapshot.swap(index);
        self.invalidate_cache();
    }

    /// Applies an incremental update (e.g. [`DsrIndex::insert_edges`] /
    /// [`DsrIndex::delete_edges`]) directly to the owned index, then
    /// invalidates the cache.
    ///
    /// When other `Arc` clones of the index are outstanding (e.g. a caller
    /// holding [`QueryService::index`], or the scheduler mid-execution),
    /// the service cannot mutate state that concurrent readers may be
    /// traversing:
    ///
    /// * with [`ServiceConfig::clone_on_write`] enabled, the index is
    ///   forked, `mutate` runs on the fork, and the fork is atomically
    ///   swapped in (readers keep their old snapshot);
    /// * otherwise the call fails with [`UpdateError::IndexShared`]
    ///   **without running `mutate`** — explicitly, so updates can no
    ///   longer be dropped silently.
    ///
    /// Cache invalidation is generation-correct on both paths: queries
    /// that started against the pre-update index cannot insert stale
    /// answers after the invalidation.
    pub fn update_in_place<R>(
        &self,
        mutate: impl FnOnce(&mut DsrIndex) -> R,
    ) -> Result<R, UpdateError> {
        // An arbitrary mutation's effect is unknowable: conservatively
        // treat every call as a change (install the fork, drop the cache).
        let (result, _path) = self.mutate_index(mutate, |_| true)?;
        self.invalidate_cache();
        Ok(result)
    }

    /// The single implementation of the ownership dance shared by
    /// [`QueryService::update_in_place`] and
    /// [`QueryService::apply_updates`]: runs `mutate` against the owned
    /// index when the `Arc` is exclusive, or against a fork under
    /// [`ServiceConfig::clone_on_write`] (the fork is installed only when
    /// `install_fork` approves its result), or fails with
    /// [`UpdateError::IndexShared`]. Returns which path ran; cache
    /// invalidation is the caller's decision — it depends on the result
    /// *and* the path (see `apply_updates`' error handling).
    ///
    /// Exclusivity is established by
    /// [`SnapshotHolder::update`](crate::snapshot::SnapshotHolder::update):
    /// all snapshot slots are locked and consolidated, so `Arc::get_mut`
    /// succeeds exactly when no externally pinned clone is outstanding.
    fn mutate_index<R>(
        &self,
        mutate: impl FnOnce(&mut DsrIndex) -> R,
        install_fork: impl FnOnce(&R) -> bool,
    ) -> Result<(R, UpdatePath), UpdateError> {
        self.core.snapshot.update(|slot| match Arc::get_mut(slot) {
            Some(index) => Ok((mutate(index), UpdatePath::InPlace)),
            None if self.clone_on_write => {
                let mut fork = slot.fork();
                let result = mutate(&mut fork);
                if install_fork(&result) {
                    *slot = Arc::new(fork);
                }
                Ok((result, UpdatePath::Fork))
            }
            None => Err(UpdateError::IndexShared),
        })
    }

    /// Applies a batch of edge updates through the differential pipeline
    /// (Section 3.3.3): back-to-back operations on the same edge are
    /// coalesced to the last one ([`coalesce_updates`]), only affected
    /// partitions refresh their summaries, and the refresh deltas ship
    /// through this service's transport — their measured cost accumulates
    /// in [`QueryService::update_stats`].
    ///
    /// Shares [`QueryService::update_in_place`]'s ownership semantics
    /// (including the [`ServiceConfig::clone_on_write`] fallback) and its
    /// generation-correct cache invalidation — with one refinement: a
    /// batch that turns out to be a complete no-op (duplicates,
    /// already-absent deletions) leaves the result cache untouched, so
    /// idempotent replays cannot collapse the hit rate.
    pub fn apply_updates(&self, ops: &[UpdateOp]) -> Result<UpdateOutcome, UpdateError> {
        let ops = coalesce_updates(ops);
        let (result, path) = self.mutate_index(
            |index| index.apply_updates_with_transport(&ops, &self.core.transport),
            // Only a successful, actually-changing batch installs the
            // fork; a half-applied fork (transport failure) is discarded.
            |result| result.as_ref().is_ok_and(|o| o.rebuilt_compounds),
        )?;
        let invalidate = match (&result, path) {
            // On success only real changes invalidate.
            (Ok(outcome), _) => outcome.rebuilt_compounds,
            // A transport failure on the in-place path may leave the owned
            // index partially refreshed: cached pre-update answers must
            // not survive either.
            (Err(_), UpdatePath::InPlace) => true,
            // The discarded fork left the installed index (and therefore
            // the cache) untouched.
            (Err(_), UpdatePath::Fork) => false,
        };
        if invalidate {
            self.invalidate_cache();
        }
        let outcome = result?;
        self.updates_comm.add(
            outcome.stats.update_rounds,
            outcome.stats.update_messages,
            outcome.stats.update_bytes,
        );
        Ok(outcome)
    }

    /// Aggregate communication cost of every update batch applied through
    /// [`QueryService::apply_updates`]: measured wire bytes of the shipped
    /// summary deltas, reported in the same units as
    /// [`QueryService::comm_stats`].
    pub fn update_stats(&self) -> UpdateStats {
        UpdateStats::from_comm(&self.updates_comm)
    }

    /// Clears the cache and bumps its generation.
    pub fn invalidate_cache(&self) {
        self.core.cache.invalidate();
        self.core.stats.record_invalidation();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsr_graph::DiGraph;
    use dsr_partition::Partitioning;
    use dsr_reach::LocalIndexKind;

    fn chain_service() -> QueryService {
        // 0 -> 1 -> 2 -> 3 -> 4 -> 5 across two partitions.
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let p = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        QueryService::new(Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs)))
    }

    #[test]
    fn repeated_query_hits_cache() {
        let service = chain_service();
        let first = service.query(&[0], &[5]);
        assert_eq!(*first, vec![(0, 5)]);
        assert_eq!(service.cache_stats().misses(), 1);
        let second = service.query(&[0], &[5]);
        assert!(Arc::ptr_eq(&first, &second), "hit returns the shared Arc");
        assert_eq!(service.cache_stats().hits(), 1);
        // A hit performs no communication: the aggregate counters only hold
        // the first (miss) execution.
        assert_eq!(service.comm_stats().rounds(), 3);
        // The miss went through the batch former: one formed batch of one.
        assert_eq!(service.batch_stats().batches(), 1);
        assert_eq!(service.batch_stats().queries(), 1);
        assert_eq!(service.batch_stats().executed(), 1);
    }

    #[test]
    fn normalization_unifies_equivalent_queries() {
        let service = chain_service();
        service.query(&[0, 1, 0], &[5, 4]);
        service.query(&[1, 0], &[4, 5, 5]);
        assert_eq!(service.cache_stats().hits(), 1);
        assert_eq!(service.cache_stats().misses(), 1);
        assert_eq!(service.cache_len(), 1);
    }

    #[test]
    fn failover_stats_are_zero_off_the_tcp_backend() {
        let service = chain_service();
        service.query(&[0], &[5]);
        let snapshot = service.failover_stats();
        assert!(snapshot.is_zero(), "in-process backend never fails over");
        assert!(service.transport().failover_stats().is_none());
    }

    #[test]
    fn failover_stats_surface_tcp_degradation() {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let p = Partitioning::new(vec![0, 0, 1, 1, 2, 2], 3);
        let index = Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs));
        let transport = DynTransport::Tcp(dsr_cluster::TcpTransport::loopback_replicated(2));
        let service =
            QueryService::with_config_and_transport(index, ServiceConfig::default(), transport);
        assert!(
            service.failover_stats().is_zero(),
            "fault-free run is clean"
        );

        // Kill one worker mid-run; the service routes around it and the
        // degraded-mode counters light up.
        let tcp = service.transport().as_tcp().expect("tcp backend");
        tcp.inject_faults(dsr_cluster::FaultPlan::new().disconnect(1));
        let pairs = service.query(&[0], &[5]);
        assert_eq!(*pairs, vec![(0, 5)]);
        let snapshot = service.failover_stats();
        assert!(!snapshot.is_zero(), "failover was exercised");
        assert!(snapshot.retries >= 1);
        assert_eq!(snapshot.suspects, 1);
    }

    #[test]
    fn uncached_bypass_does_not_touch_cache() {
        let service = chain_service();
        assert_eq!(service.query_uncached(&[0], &[5]), vec![(0, 5)]);
        assert_eq!(service.cache_stats().hits(), 0);
        assert_eq!(service.cache_stats().misses(), 0);
        assert_eq!(service.cache_len(), 0);
        assert_eq!(service.batch_stats().batches(), 0, "bypasses the former");
    }

    #[test]
    fn batch_mixes_hits_and_misses() {
        let service = chain_service();
        service.query(&[0], &[5]);
        let reply = service
            .query_batch(&[
                SetQuery::new(vec![0], vec![5]),    // hit
                SetQuery::new(vec![1], vec![4]),    // miss
                SetQuery::new(vec![1, 1], vec![4]), // same signature: deduplicated
                SetQuery::new(vec![5], vec![0]),    // miss, empty answer
            ])
            .expect("in-process transport");
        assert_eq!(reply.cache_hits, 1);
        assert_eq!(reply.executed, 2, "in-batch duplicates run once");
        assert_eq!(*reply.results[0], vec![(0, 5)]);
        assert_eq!(*reply.results[1], vec![(1, 4)]);
        assert!(Arc::ptr_eq(&reply.results[1], &reply.results[2]));
        assert!(reply.results[3].is_empty());
        assert_eq!(
            reply.rounds, 3,
            "one scatter/exchange/gather for the misses"
        );
    }

    #[test]
    fn all_hit_batch_is_communication_free() {
        let service = chain_service();
        service.query(&[0], &[5]);
        let reply = service
            .query_batch(&[SetQuery::new(vec![0], vec![5])])
            .expect("in-process transport");
        assert_eq!(reply.cache_hits, 1);
        assert_eq!(reply.executed, 0);
        assert_eq!((reply.rounds, reply.messages, reply.bytes), (0, 0, 0));
    }

    #[test]
    fn submitted_tickets_fuse_into_one_round_trip() {
        let service = chain_service();
        // Two-phase submission: a single client presents concurrent work.
        let tickets: Vec<QueryTicket> = (0..4).map(|i| service.submit(&[i], &[5])).collect();
        assert!(!tickets[0].is_ready(), "cold queries queue");
        service.flush();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let pairs = ticket.wait().expect("in-process transport");
            assert_eq!(*pairs, vec![(i as VertexId, 5)]);
        }
        // All four distinct misses fused into one 3-round execution.
        assert_eq!(service.comm_stats().rounds(), 3);
        assert_eq!(service.batch_stats().executed(), 4);
        assert!(service.batch_stats().fusion_ratio() > 1.0);
        // A repeated submit resolves instantly from the cache.
        assert!(service.submit(&[0], &[5]).is_ready());
    }

    #[test]
    fn saturated_admission_queue_returns_overloaded() {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let p = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        let service = QueryService::with_config(
            Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs)),
            ServiceConfig {
                admission_depth: 2,
                max_batch: 64,
                // A forming window far longer than the test: the two
                // queued queries stay in flight until the explicit flush.
                max_wait_us: 60_000_000,
                ..ServiceConfig::default()
            },
        );
        let a = service.try_submit(&[0], &[5]).expect("first admitted");
        let b = service.try_submit(&[1], &[5]).expect("second admitted");
        let refused = service.try_submit(&[2], &[5]);
        assert!(
            matches!(
                refused,
                Err(ServiceError::Overloaded {
                    queued: 2,
                    limit: 2
                })
            ),
            "saturated queue refuses instead of deadlocking"
        );
        let err = refused.unwrap_err();
        assert!(err.to_string().contains("overloaded"));
        service.flush();
        assert_eq!(*a.wait().expect("in-process"), vec![(0, 5)]);
        assert_eq!(*b.wait().expect("in-process"), vec![(1, 5)]);
        // Completion released the admission slots.
        assert!(service.try_submit(&[2], &[5]).is_ok());
    }

    #[test]
    fn update_in_place_invalidates_cache() {
        let service = chain_service();
        assert!(service.query(&[5], &[0]).is_empty());
        let outcome = service
            .update_in_place(|index| index.insert_edge(5, 0))
            .expect("no outstanding index clones");
        assert!(outcome.rebuilt_compounds);
        assert_eq!(service.cache_len(), 0, "update invalidated the cache");
        assert_eq!(*service.query(&[5], &[0]), vec![(5, 0)]);
    }

    #[test]
    fn update_in_place_refuses_shared_index_with_explicit_error() {
        let service = chain_service();
        let pinned = service.index();
        assert!(matches!(
            service
                .update_in_place(|index| index.insert_edge(5, 0))
                .unwrap_err(),
            UpdateError::IndexShared
        ));
        // The error is a real std::error::Error with actionable text.
        let err: Box<dyn std::error::Error> = Box::new(UpdateError::IndexShared);
        assert!(err.to_string().contains("clone_on_write"));
        drop(pinned);
        assert!(service
            .update_in_place(|index| index.insert_edge(5, 0))
            .is_ok());
    }

    #[test]
    fn clone_on_write_applies_updates_while_shared() {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let p = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        let service = QueryService::with_config(
            Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs)),
            ServiceConfig {
                clone_on_write: true,
                ..ServiceConfig::default()
            },
        );
        let pinned = service.index();
        let outcome = service
            .apply_updates(&[UpdateOp::Insert(5, 0)])
            .expect("clone-on-write path applies the update");
        assert!(outcome.rebuilt_compounds);
        // Readers holding the old snapshot still see the old graph …
        assert!(DsrEngine::new(&pinned)
            .set_reachability(&[5], &[0])
            .pairs
            .is_empty());
        // … while the service serves the updated fork.
        assert_eq!(*service.query(&[5], &[0]), vec![(5, 0)]);
    }

    #[test]
    fn noop_update_batches_leave_the_cache_intact() {
        let service = chain_service();
        service.query(&[0], &[5]);
        assert_eq!(service.cache_len(), 1);
        // Re-inserting an existing edge is a full no-op: the hot cache
        // must survive (idempotent replays cannot collapse the hit rate).
        let outcome = service
            .apply_updates(&[UpdateOp::Insert(0, 1)])
            .expect("index exclusively owned");
        assert!(!outcome.rebuilt_compounds);
        assert_eq!(service.cache_len(), 1, "no-op does not invalidate");
        assert_eq!(service.cache_stats().invalidations(), 0);
        // A real update still invalidates.
        service
            .apply_updates(&[UpdateOp::Insert(5, 0)])
            .expect("index exclusively owned");
        assert_eq!(service.cache_len(), 0);
        assert_eq!(service.cache_stats().invalidations(), 1);
    }

    #[test]
    fn noop_update_on_a_shared_index_does_not_swap_the_fork() {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let p = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        let service = QueryService::with_config(
            Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs)),
            ServiceConfig {
                clone_on_write: true,
                ..ServiceConfig::default()
            },
        );
        let pinned = service.index();
        let outcome = service
            .apply_updates(&[UpdateOp::Insert(0, 1)]) // duplicate: no-op
            .expect("clone-on-write path");
        assert!(!outcome.rebuilt_compounds);
        assert!(
            Arc::ptr_eq(&pinned, &service.index()),
            "untouched fork is discarded, not installed"
        );
    }

    #[test]
    fn apply_updates_coalesces_and_records_stats() {
        let service = chain_service();
        // Insert-then-delete of the same edge coalesces to the delete of
        // an absent edge: a full no-op, zero messages.
        let outcome = service
            .apply_updates(&[UpdateOp::Insert(5, 0), UpdateOp::Delete(5, 0)])
            .expect("index exclusively owned");
        assert!(outcome.refreshed_summaries.is_empty());
        assert!(outcome.stats.is_zero());
        assert!(service.update_stats().is_zero());
        // A real cut-edge insertion ships its two deltas and accumulates.
        let outcome = service
            .apply_updates(&[UpdateOp::Insert(5, 0)])
            .expect("index exclusively owned");
        assert_eq!(outcome.refreshed_summaries, vec![0, 1]);
        let total = service.update_stats();
        assert_eq!(total.update_rounds, 1);
        assert_eq!(total.update_messages, 2, "two deltas, one peer each");
        assert!(total.update_bytes > 0);
        assert_eq!(*service.query(&[5], &[0]), vec![(5, 0)]);
    }

    #[test]
    fn install_index_swaps_and_invalidates() {
        let service = chain_service();
        assert!(service.query(&[5], &[0]).is_empty());
        // Rebuild with a back edge and install.
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let p = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        service.install_index(Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs)));
        assert_eq!(service.cache_stats().invalidations(), 1);
        assert_eq!(*service.query(&[5], &[0]), vec![(5, 0)]);
    }

    #[test]
    fn disabled_cache_never_stores() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let p = Partitioning::new(vec![0, 0, 1], 2);
        let service = QueryService::with_config(
            Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs)),
            ServiceConfig {
                cache_capacity: 8,
                cache_enabled: false,
                ..ServiceConfig::default()
            },
        );
        service.query(&[0], &[2]);
        service.query(&[0], &[2]);
        assert_eq!(service.cache_len(), 0);
        assert_eq!(service.cache_stats().hits(), 0);
        // Both executions went through the former (no cache to resolve
        // the repeat).
        assert_eq!(service.batch_stats().executed(), 2);
    }

    #[test]
    fn wire_transport_service_agrees_with_in_process() {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let p = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        let index = Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs));
        let in_process = QueryService::new(Arc::clone(&index));
        let wired = QueryService::with_config(
            Arc::clone(&index),
            ServiceConfig {
                transport: TransportKind::Wire,
                ..ServiceConfig::default()
            },
        );
        assert_eq!(wired.transport_kind(), TransportKind::Wire);
        let queries = [
            SetQuery::new(vec![0, 1], vec![4, 5]),
            SetQuery::new(vec![5], vec![0]),
            SetQuery::new(vec![2], vec![3]),
        ];
        let a = in_process.query_batch(&queries).expect("in-process");
        let b = wired.query_batch(&queries).expect("wire");
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(**x, **y, "wire answers must be byte-identical");
        }
        // Identical protocol cost: measured wire bytes == exact sizes.
        assert_eq!(
            in_process.comm_stats().snapshot(),
            wired.comm_stats().snapshot()
        );
    }

    #[test]
    fn tcp_transport_service_agrees_with_in_process() {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let p = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        let index = Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs));
        let in_process = QueryService::new(Arc::clone(&index));
        let tcp = QueryService::with_config(
            Arc::clone(&index),
            ServiceConfig {
                transport: TransportKind::Tcp,
                ..ServiceConfig::default()
            },
        );
        assert_eq!(tcp.transport_kind(), TransportKind::Tcp);
        let queries = [
            SetQuery::new(vec![0, 1], vec![4, 5]),
            SetQuery::new(vec![5], vec![0]),
        ];
        let a = in_process.query_batch(&queries).expect("in-process");
        let b = tcp.query_batch(&queries).expect("tcp loopback cluster");
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(**x, **y, "tcp answers must be byte-identical");
        }
        assert_eq!(
            in_process.comm_stats().snapshot(),
            tcp.comm_stats().snapshot(),
            "tcp protocol cost equals the in-process accounting"
        );
        // Updates through the service ship their deltas over TCP too
        // (exclusively owned index: the in-place path).
        let g2 = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let p2 = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        let owned = QueryService::with_config(
            Arc::new(DsrIndex::build(&g2, p2, LocalIndexKind::Dfs)),
            ServiceConfig {
                transport: TransportKind::Tcp,
                ..ServiceConfig::default()
            },
        );
        let out = owned
            .apply_updates(&[UpdateOp::Insert(5, 0)])
            .expect("tcp update");
        assert!(out.rebuilt_compounds);
        assert!(owned.update_stats().update_bytes > 0);
        assert_eq!(*owned.query(&[5], &[0]), vec![(5, 0)]);
    }

    #[test]
    fn eviction_counter_moves_on_tiny_cache() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let p = Partitioning::new(vec![0, 0, 1, 1], 2);
        let service = QueryService::with_config(
            Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs)),
            ServiceConfig {
                cache_capacity: 1,
                cache_enabled: true,
                ..ServiceConfig::default()
            },
        );
        service.query(&[0], &[3]);
        service.query(&[1], &[3]);
        assert_eq!(service.cache_stats().evictions(), 1);
        assert_eq!(service.cache_len(), 1);
    }
}
