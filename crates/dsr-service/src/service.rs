//! The concurrent query service.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use dsr_cluster::{
    CacheStats, CommStats, DynTransport, TransportError, TransportKind, UpdateStats,
};
use dsr_core::{coalesce_updates, DsrEngine, DsrIndex, SetQuery, UpdateOp, UpdateOutcome};
use dsr_graph::VertexId;

use crate::cache::{CachedPairs, QueryCache, QueryKey};

/// Why an update could not be applied.
#[derive(Debug)]
pub enum UpdateError {
    /// Other `Arc` clones of the index are outstanding (a caller holding
    /// [`QueryService::index`]), so mutating in place would race with
    /// concurrent readers. Either drop the outstanding clones, enable
    /// [`ServiceConfig::clone_on_write`], or rebuild offline and
    /// [`install_index`](QueryService::install_index).
    IndexShared,
    /// The service's transport failed while shipping the refresh deltas
    /// (e.g. a TCP worker died mid-exchange). On the in-place path the
    /// owned index may be left partially refreshed — prefer
    /// [`ServiceConfig::clone_on_write`] on fallible transports, where the
    /// half-applied fork is discarded and readers keep the last good
    /// index.
    Transport(TransportError),
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::IndexShared => f.write_str(
                "index Arc is shared with outstanding readers; drop the clones, enable \
                 clone_on_write, or rebuild and install_index",
            ),
            UpdateError::Transport(err) => write!(f, "update delta exchange failed: {err}"),
        }
    }
}

impl std::error::Error for UpdateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UpdateError::IndexShared => None,
            UpdateError::Transport(err) => Some(err),
        }
    }
}

impl From<TransportError> for UpdateError {
    fn from(err: TransportError) -> Self {
        UpdateError::Transport(err)
    }
}

/// Configuration of a [`QueryService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum number of cached query results (clamped to at least 1).
    pub cache_capacity: usize,
    /// Whether the result cache is consulted at all. Disabling it turns
    /// every [`QueryService::query`] into [`QueryService::query_uncached`].
    pub cache_enabled: bool,
    /// Which communication backend the service's engine runs over:
    /// [`TransportKind::InProcess`] (zero-copy moves, the default),
    /// [`TransportKind::Wire`] (serialized framed bytes through OS pipes)
    /// or [`TransportKind::Tcp`] (framed bytes through loopback TCP worker
    /// endpoints; to front **external** `dsr-node` workers, connect a
    /// [`TcpTransport`](dsr_cluster::TcpTransport) yourself and use
    /// [`QueryService::with_config_and_transport`]). The backend is
    /// instantiated once at construction and shared by every query this
    /// service executes — and by the refresh exchange of every update
    /// applied through [`QueryService::apply_updates`].
    pub transport: TransportKind,
    /// Fallback for updates while the index `Arc` is shared: when `true`,
    /// [`QueryService::update_in_place`] / [`QueryService::apply_updates`]
    /// fork the index ([`DsrIndex::fork`]), apply the update to the fork
    /// and atomically swap it in instead of returning
    /// [`UpdateError::IndexShared`]. Costs one local-index rebuild per
    /// partition; off by default.
    pub clone_on_write: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_capacity: 1024,
            cache_enabled: true,
            transport: TransportKind::InProcess,
            clone_on_write: false,
        }
    }
}

impl ServiceConfig {
    /// The default configuration with the transport selected by the
    /// `DSR_TRANSPORT` environment variable, parsed by the shared
    /// [`FromStr`](std::str::FromStr) impl of [`TransportKind`] (an invalid
    /// value fails loudly, listing the accepted names).
    pub fn from_env() -> Self {
        ServiceConfig {
            transport: TransportKind::from_env(),
            ..ServiceConfig::default()
        }
    }
}

/// Which ownership path [`QueryService::mutate_index`] took — callers use
/// it to decide whether a failed mutation could have corrupted the
/// installed index (in place) or only a discarded fork.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UpdatePath {
    /// The `Arc` was exclusive: the installed index itself was mutated.
    InPlace,
    /// Clone-on-write: a fork was mutated (and installed only on approved
    /// success).
    Fork,
}

/// Outcome of a batched service call.
#[derive(Debug, Clone)]
pub struct BatchReply {
    /// One answer per input query, in input order. Answers are `Arc`-shared
    /// with the cache, so repeated queries cost no copies.
    pub results: Vec<CachedPairs>,
    /// How many of the input queries were answered from the cache.
    pub cache_hits: usize,
    /// How many distinct queries were actually executed (cache misses after
    /// in-batch deduplication).
    pub executed: usize,
    /// Communication rounds of the single batched execution (0 when every
    /// query hit the cache).
    pub rounds: u64,
    /// Messages exchanged by the batched execution.
    pub messages: u64,
    /// Bytes exchanged by the batched execution.
    pub bytes: u64,
    /// Wall-clock time of the whole call (probe + execution + insert).
    pub elapsed: Duration,
}

/// A thread-safe query-serving front end over a shared [`DsrIndex`].
///
/// The service owns an `Arc<DsrIndex>` and can be hammered from any number
/// of client threads concurrently: queries borrow the index immutably and
/// the per-slave work runs on the process-wide persistent
/// [`SlavePool`](dsr_cluster::SlavePool), so concurrent queries interleave
/// at slave-task granularity instead of serializing or spawning threads.
///
/// # Caching and updates
///
/// Results are cached in a bounded LRU keyed on the normalized
/// `(sources, targets)` signature, with hit/miss counters surfaced through
/// [`CacheStats`]. The cache is coupled to the index by a generation
/// counter:
///
/// * [`QueryService::install_index`] swaps in a new index, clears the cache
///   and bumps the generation, so no stale answer survives an index swap —
///   in-flight queries that started against the old index will compute the
///   old answer but are **not** inserted into the cache (their generation
///   check fails).
/// * [`QueryService::update_in_place`] applies an incremental update
///   (`DsrIndex::insert_edges` / `delete_edges`, Section 3.3.3 of the
///   paper) directly to the owned index when no other `Arc` clones are
///   outstanding, then invalidates the cache the same way.
/// * [`QueryService::query_uncached`] bypasses the cache entirely — the
///   escape hatch for callers that must observe the latest index state
///   without touching cached entries (e.g. read-your-writes checks right
///   after an update).
pub struct QueryService {
    index: RwLock<Arc<DsrIndex>>,
    cache: Mutex<QueryCache>,
    cache_enabled: bool,
    clone_on_write: bool,
    transport: DynTransport,
    stats: CacheStats,
    comm: CommStats,
    /// Aggregate refresh-exchange cost of every update batch applied
    /// through this service (rounds/messages/bytes of shipped deltas).
    updates_comm: CommStats,
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService")
            .field("cache_enabled", &self.cache_enabled)
            .field("cache", &self.cache.lock().expect("cache poisoned"))
            .finish()
    }
}

impl QueryService {
    /// Creates a service over `index` with the default configuration.
    pub fn new(index: Arc<DsrIndex>) -> Self {
        Self::with_config(index, ServiceConfig::default())
    }

    /// Creates a service over `index` with an explicit configuration.
    pub fn with_config(index: Arc<DsrIndex>, config: ServiceConfig) -> Self {
        let transport = config.transport.create();
        Self::with_config_and_transport(index, config, transport)
    }

    /// Creates a service over `index` with an explicit configuration **and
    /// an already-constructed transport** — the entry point for fronting a
    /// remote cluster: connect a
    /// [`TcpTransport`](dsr_cluster::TcpTransport) to the `dsr-node`
    /// workers and hand it over wrapped in
    /// [`DynTransport::Tcp`](dsr_cluster::DynTransport). The
    /// `config.transport` field is ignored in favor of the given backend.
    pub fn with_config_and_transport(
        index: Arc<DsrIndex>,
        config: ServiceConfig,
        transport: DynTransport,
    ) -> Self {
        QueryService {
            index: RwLock::new(index),
            cache: Mutex::new(QueryCache::new(config.cache_capacity)),
            cache_enabled: config.cache_enabled,
            clone_on_write: config.clone_on_write,
            transport,
            stats: CacheStats::new(),
            comm: CommStats::new(),
            updates_comm: CommStats::new(),
        }
    }

    /// A clone of the currently installed index.
    pub fn index(&self) -> Arc<DsrIndex> {
        Arc::clone(&self.index.read().expect("index lock poisoned"))
    }

    /// Which transport backend this service executes queries over.
    pub fn transport_kind(&self) -> TransportKind {
        self.transport.kind()
    }

    /// Cache hit/miss/eviction counters.
    pub fn cache_stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Aggregate communication counters across every query this service has
    /// executed (cache hits add nothing — that is the point of the cache).
    pub fn comm_stats(&self) -> &CommStats {
        &self.comm
    }

    /// Number of currently cached results.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().expect("cache poisoned").len()
    }

    /// Answers `S ; T`, consulting the result cache.
    pub fn query(&self, sources: &[VertexId], targets: &[VertexId]) -> CachedPairs {
        if !self.cache_enabled {
            return Arc::new(self.query_uncached(sources, targets));
        }
        let key = SetQuery::new(sources.to_vec(), targets.to_vec()).signature();
        let generation = {
            let mut cache = self.cache.lock().expect("cache poisoned");
            if let Some(hit) = cache.get(&key) {
                self.stats.record_hit();
                return hit;
            }
            cache.generation()
        };
        self.stats.record_miss();
        let index = self.index();
        let engine = DsrEngine::with_transport(&index, &self.transport);
        let outcome = engine.set_reachability(&key.0, &key.1);
        self.comm
            .add(outcome.rounds, outcome.messages, outcome.bytes);
        let value = Arc::new(outcome.pairs);
        self.insert_if_current(generation, key, Arc::clone(&value));
        value
    }

    /// Answers `S ; T` without touching the cache (no lookup, no insert).
    ///
    /// This is the documented bypass path for post-update reads: it always
    /// evaluates against the currently installed index.
    pub fn query_uncached(
        &self,
        sources: &[VertexId],
        targets: &[VertexId],
    ) -> Vec<(VertexId, VertexId)> {
        let index = self.index();
        let engine = DsrEngine::with_transport(&index, &self.transport);
        let outcome = engine.set_reachability(sources, targets);
        self.comm
            .add(outcome.rounds, outcome.messages, outcome.bytes);
        outcome.pairs
    }

    /// Answers a whole batch of queries with a single
    /// scatter/exchange/gather sequence for all cache misses.
    ///
    /// The batch is first probed against the cache; identical signatures
    /// within the batch are deduplicated so each distinct miss is executed
    /// exactly once. The remaining misses run through
    /// [`DsrEngine::set_reachability_batch`], which performs 3 communication
    /// rounds total regardless of the number of queries.
    ///
    /// # Errors
    /// Returns the typed [`TransportError`] when the service's transport
    /// fails mid-batch (e.g. a TCP worker disconnecting). Nothing is
    /// cached from a failed batch. The in-process and pipe backends never
    /// fail.
    pub fn query_batch(&self, queries: &[SetQuery]) -> Result<BatchReply, TransportError> {
        let start = Instant::now();
        let keys: Vec<QueryKey> = queries.iter().map(SetQuery::signature).collect();
        let mut results: Vec<Option<CachedPairs>> = vec![None; queries.len()];

        // Probe the cache and deduplicate misses in one pass (hash-indexed,
        // so the work under the cache lock stays linear in the batch size).
        let mut miss_keys: Vec<QueryKey> = Vec::new();
        let mut miss_index: HashMap<&QueryKey, usize> = HashMap::new();
        let mut miss_of: Vec<usize> = Vec::new(); // unfilled slot -> miss index
        let mut cache_hits = 0usize;
        let generation = {
            let mut cache = self.cache.lock().expect("cache poisoned");
            for (qi, key) in keys.iter().enumerate() {
                if self.cache_enabled {
                    if let Some(hit) = cache.get(key) {
                        self.stats.record_hit();
                        cache_hits += 1;
                        results[qi] = Some(hit);
                        continue;
                    }
                    self.stats.record_miss();
                }
                match miss_index.get(key) {
                    Some(&mi) => miss_of.push(mi),
                    None => {
                        miss_index.insert(key, miss_keys.len());
                        miss_of.push(miss_keys.len());
                        miss_keys.push(key.clone());
                    }
                }
            }
            cache.generation()
        };
        drop(miss_index);

        // Execute every distinct miss in one batched protocol run.
        let (rounds, messages, bytes) = if miss_keys.is_empty() {
            (0, 0, 0)
        } else {
            let index = self.index();
            let engine = DsrEngine::with_transport(&index, &self.transport);
            let miss_queries: Vec<SetQuery> = miss_keys
                .iter()
                .map(|(s, t)| SetQuery::new(s.clone(), t.clone()))
                .collect();
            let outcome = engine.set_reachability_batch(&miss_queries)?;
            self.comm
                .add(outcome.rounds, outcome.messages, outcome.bytes);
            let values: Vec<CachedPairs> = outcome.results.into_iter().map(Arc::new).collect();
            if self.cache_enabled {
                for (key, value) in miss_keys.iter().zip(&values) {
                    self.insert_if_current(generation, key.clone(), Arc::clone(value));
                }
            }
            let mut miss_iter = miss_of.iter();
            for slot in results.iter_mut().filter(|slot| slot.is_none()) {
                let mi = *miss_iter.next().expect("one miss index per unfilled slot");
                *slot = Some(Arc::clone(&values[mi]));
            }
            (outcome.rounds, outcome.messages, outcome.bytes)
        };

        Ok(BatchReply {
            results: results
                .into_iter()
                .map(|slot| slot.expect("every query answered"))
                .collect(),
            cache_hits,
            executed: miss_keys.len(),
            rounds,
            messages,
            bytes,
            elapsed: start.elapsed(),
        })
    }

    /// Swaps in a new index and invalidates the cache.
    ///
    /// Use this after rebuilding an index offline (or applying updates to a
    /// privately owned one). Queries started before the swap finish against
    /// the old index but cannot pollute the cache (generation check).
    pub fn install_index(&self, index: Arc<DsrIndex>) {
        {
            let mut slot = self.index.write().expect("index lock poisoned");
            *slot = index;
        }
        self.invalidate_cache();
    }

    /// Applies an incremental update (e.g. [`DsrIndex::insert_edges`] /
    /// [`DsrIndex::delete_edges`]) directly to the owned index, then
    /// invalidates the cache.
    ///
    /// When other `Arc` clones of the index are outstanding (e.g. a caller
    /// holding [`QueryService::index`]), the service cannot mutate state
    /// that concurrent readers may be traversing:
    ///
    /// * with [`ServiceConfig::clone_on_write`] enabled, the index is
    ///   forked, `mutate` runs on the fork, and the fork is atomically
    ///   swapped in (readers keep their old snapshot);
    /// * otherwise the call fails with [`UpdateError::IndexShared`]
    ///   **without running `mutate`** — explicitly, so updates can no
    ///   longer be dropped silently.
    ///
    /// Cache invalidation is generation-correct on both paths: queries
    /// that started against the pre-update index cannot insert stale
    /// answers after the invalidation.
    pub fn update_in_place<R>(
        &self,
        mutate: impl FnOnce(&mut DsrIndex) -> R,
    ) -> Result<R, UpdateError> {
        // An arbitrary mutation's effect is unknowable: conservatively
        // treat every call as a change (install the fork, drop the cache).
        let (result, _path) = self.mutate_index(mutate, |_| true)?;
        self.invalidate_cache();
        Ok(result)
    }

    /// The single implementation of the ownership dance shared by
    /// [`QueryService::update_in_place`] and
    /// [`QueryService::apply_updates`]: runs `mutate` against the owned
    /// index when the `Arc` is exclusive, or against a fork under
    /// [`ServiceConfig::clone_on_write`] (the fork is installed only when
    /// `install_fork` approves its result), or fails with
    /// [`UpdateError::IndexShared`]. Returns which path ran; cache
    /// invalidation is the caller's decision — it depends on the result
    /// *and* the path (see `apply_updates`' error handling).
    fn mutate_index<R>(
        &self,
        mutate: impl FnOnce(&mut DsrIndex) -> R,
        install_fork: impl FnOnce(&R) -> bool,
    ) -> Result<(R, UpdatePath), UpdateError> {
        let mut slot = self.index.write().expect("index lock poisoned");
        match Arc::get_mut(&mut slot) {
            Some(index) => Ok((mutate(index), UpdatePath::InPlace)),
            None if self.clone_on_write => {
                let mut fork = slot.fork();
                let result = mutate(&mut fork);
                if install_fork(&result) {
                    *slot = Arc::new(fork);
                }
                Ok((result, UpdatePath::Fork))
            }
            None => Err(UpdateError::IndexShared),
        }
    }

    /// Applies a batch of edge updates through the differential pipeline
    /// (Section 3.3.3): back-to-back operations on the same edge are
    /// coalesced to the last one ([`coalesce_updates`]), only affected
    /// partitions refresh their summaries, and the refresh deltas ship
    /// through this service's transport — their measured cost accumulates
    /// in [`QueryService::update_stats`].
    ///
    /// Shares [`QueryService::update_in_place`]'s ownership semantics
    /// (including the [`ServiceConfig::clone_on_write`] fallback) and its
    /// generation-correct cache invalidation — with one refinement: a
    /// batch that turns out to be a complete no-op (duplicates,
    /// already-absent deletions) leaves the result cache untouched, so
    /// idempotent replays cannot collapse the hit rate.
    pub fn apply_updates(&self, ops: &[UpdateOp]) -> Result<UpdateOutcome, UpdateError> {
        let ops = coalesce_updates(ops);
        let (result, path) = self.mutate_index(
            |index| index.apply_updates_with_transport(&ops, &self.transport),
            // Only a successful, actually-changing batch installs the
            // fork; a half-applied fork (transport failure) is discarded.
            |result| result.as_ref().is_ok_and(|o| o.rebuilt_compounds),
        )?;
        let invalidate = match (&result, path) {
            // On success only real changes invalidate.
            (Ok(outcome), _) => outcome.rebuilt_compounds,
            // A transport failure on the in-place path may leave the owned
            // index partially refreshed: cached pre-update answers must
            // not survive either.
            (Err(_), UpdatePath::InPlace) => true,
            // The discarded fork left the installed index (and therefore
            // the cache) untouched.
            (Err(_), UpdatePath::Fork) => false,
        };
        if invalidate {
            self.invalidate_cache();
        }
        let outcome = result?;
        self.updates_comm.add(
            outcome.stats.update_rounds,
            outcome.stats.update_messages,
            outcome.stats.update_bytes,
        );
        Ok(outcome)
    }

    /// Aggregate communication cost of every update batch applied through
    /// [`QueryService::apply_updates`]: measured wire bytes of the shipped
    /// summary deltas, reported in the same units as
    /// [`QueryService::comm_stats`].
    pub fn update_stats(&self) -> UpdateStats {
        UpdateStats::from_comm(&self.updates_comm)
    }

    /// Clears the cache and bumps its generation.
    pub fn invalidate_cache(&self) {
        self.cache.lock().expect("cache poisoned").invalidate();
        self.stats.record_invalidation();
    }

    /// Inserts a computed result unless the cache generation moved while it
    /// was being computed (an index swap would make the entry stale).
    fn insert_if_current(&self, generation: u64, key: QueryKey, value: CachedPairs) {
        let mut cache = self.cache.lock().expect("cache poisoned");
        if cache.generation() != generation {
            return;
        }
        if cache.insert(key, value) {
            self.stats.record_eviction();
        }
        self.stats.record_insertion();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsr_graph::DiGraph;
    use dsr_partition::Partitioning;
    use dsr_reach::LocalIndexKind;

    fn chain_service() -> QueryService {
        // 0 -> 1 -> 2 -> 3 -> 4 -> 5 across two partitions.
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let p = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        QueryService::new(Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs)))
    }

    #[test]
    fn repeated_query_hits_cache() {
        let service = chain_service();
        let first = service.query(&[0], &[5]);
        assert_eq!(*first, vec![(0, 5)]);
        assert_eq!(service.cache_stats().misses(), 1);
        let second = service.query(&[0], &[5]);
        assert!(Arc::ptr_eq(&first, &second), "hit returns the shared Arc");
        assert_eq!(service.cache_stats().hits(), 1);
        // A hit performs no communication: the aggregate counters only hold
        // the first (miss) execution.
        assert_eq!(service.comm_stats().rounds(), 3);
    }

    #[test]
    fn normalization_unifies_equivalent_queries() {
        let service = chain_service();
        service.query(&[0, 1, 0], &[5, 4]);
        service.query(&[1, 0], &[4, 5, 5]);
        assert_eq!(service.cache_stats().hits(), 1);
        assert_eq!(service.cache_stats().misses(), 1);
        assert_eq!(service.cache_len(), 1);
    }

    #[test]
    fn uncached_bypass_does_not_touch_cache() {
        let service = chain_service();
        assert_eq!(service.query_uncached(&[0], &[5]), vec![(0, 5)]);
        assert_eq!(service.cache_stats().hits(), 0);
        assert_eq!(service.cache_stats().misses(), 0);
        assert_eq!(service.cache_len(), 0);
    }

    #[test]
    fn batch_mixes_hits_and_misses() {
        let service = chain_service();
        service.query(&[0], &[5]);
        let reply = service
            .query_batch(&[
                SetQuery::new(vec![0], vec![5]),    // hit
                SetQuery::new(vec![1], vec![4]),    // miss
                SetQuery::new(vec![1, 1], vec![4]), // same signature: deduplicated
                SetQuery::new(vec![5], vec![0]),    // miss, empty answer
            ])
            .expect("in-process transport");
        assert_eq!(reply.cache_hits, 1);
        assert_eq!(reply.executed, 2, "in-batch duplicates run once");
        assert_eq!(*reply.results[0], vec![(0, 5)]);
        assert_eq!(*reply.results[1], vec![(1, 4)]);
        assert!(Arc::ptr_eq(&reply.results[1], &reply.results[2]));
        assert!(reply.results[3].is_empty());
        assert_eq!(
            reply.rounds, 3,
            "one scatter/exchange/gather for the misses"
        );
    }

    #[test]
    fn all_hit_batch_is_communication_free() {
        let service = chain_service();
        service.query(&[0], &[5]);
        let reply = service
            .query_batch(&[SetQuery::new(vec![0], vec![5])])
            .expect("in-process transport");
        assert_eq!(reply.cache_hits, 1);
        assert_eq!(reply.executed, 0);
        assert_eq!((reply.rounds, reply.messages, reply.bytes), (0, 0, 0));
    }

    #[test]
    fn update_in_place_invalidates_cache() {
        let service = chain_service();
        assert!(service.query(&[5], &[0]).is_empty());
        let outcome = service
            .update_in_place(|index| index.insert_edge(5, 0))
            .expect("no outstanding index clones");
        assert!(outcome.rebuilt_compounds);
        assert_eq!(service.cache_len(), 0, "update invalidated the cache");
        assert_eq!(*service.query(&[5], &[0]), vec![(5, 0)]);
    }

    #[test]
    fn update_in_place_refuses_shared_index_with_explicit_error() {
        let service = chain_service();
        let pinned = service.index();
        assert!(matches!(
            service
                .update_in_place(|index| index.insert_edge(5, 0))
                .unwrap_err(),
            UpdateError::IndexShared
        ));
        // The error is a real std::error::Error with actionable text.
        let err: Box<dyn std::error::Error> = Box::new(UpdateError::IndexShared);
        assert!(err.to_string().contains("clone_on_write"));
        drop(pinned);
        assert!(service
            .update_in_place(|index| index.insert_edge(5, 0))
            .is_ok());
    }

    #[test]
    fn clone_on_write_applies_updates_while_shared() {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let p = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        let service = QueryService::with_config(
            Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs)),
            ServiceConfig {
                clone_on_write: true,
                ..ServiceConfig::default()
            },
        );
        let pinned = service.index();
        let outcome = service
            .apply_updates(&[UpdateOp::Insert(5, 0)])
            .expect("clone-on-write path applies the update");
        assert!(outcome.rebuilt_compounds);
        // Readers holding the old snapshot still see the old graph …
        assert!(DsrEngine::new(&pinned)
            .set_reachability(&[5], &[0])
            .pairs
            .is_empty());
        // … while the service serves the updated fork.
        assert_eq!(*service.query(&[5], &[0]), vec![(5, 0)]);
    }

    #[test]
    fn noop_update_batches_leave_the_cache_intact() {
        let service = chain_service();
        service.query(&[0], &[5]);
        assert_eq!(service.cache_len(), 1);
        // Re-inserting an existing edge is a full no-op: the hot cache
        // must survive (idempotent replays cannot collapse the hit rate).
        let outcome = service
            .apply_updates(&[UpdateOp::Insert(0, 1)])
            .expect("index exclusively owned");
        assert!(!outcome.rebuilt_compounds);
        assert_eq!(service.cache_len(), 1, "no-op does not invalidate");
        assert_eq!(service.cache_stats().invalidations(), 0);
        // A real update still invalidates.
        service
            .apply_updates(&[UpdateOp::Insert(5, 0)])
            .expect("index exclusively owned");
        assert_eq!(service.cache_len(), 0);
        assert_eq!(service.cache_stats().invalidations(), 1);
    }

    #[test]
    fn noop_update_on_a_shared_index_does_not_swap_the_fork() {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let p = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        let service = QueryService::with_config(
            Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs)),
            ServiceConfig {
                clone_on_write: true,
                ..ServiceConfig::default()
            },
        );
        let pinned = service.index();
        let outcome = service
            .apply_updates(&[UpdateOp::Insert(0, 1)]) // duplicate: no-op
            .expect("clone-on-write path");
        assert!(!outcome.rebuilt_compounds);
        assert!(
            Arc::ptr_eq(&pinned, &service.index()),
            "untouched fork is discarded, not installed"
        );
    }

    #[test]
    fn apply_updates_coalesces_and_records_stats() {
        let service = chain_service();
        // Insert-then-delete of the same edge coalesces to the delete of
        // an absent edge: a full no-op, zero messages.
        let outcome = service
            .apply_updates(&[UpdateOp::Insert(5, 0), UpdateOp::Delete(5, 0)])
            .expect("index exclusively owned");
        assert!(outcome.refreshed_summaries.is_empty());
        assert!(outcome.stats.is_zero());
        assert!(service.update_stats().is_zero());
        // A real cut-edge insertion ships its two deltas and accumulates.
        let outcome = service
            .apply_updates(&[UpdateOp::Insert(5, 0)])
            .expect("index exclusively owned");
        assert_eq!(outcome.refreshed_summaries, vec![0, 1]);
        let total = service.update_stats();
        assert_eq!(total.update_rounds, 1);
        assert_eq!(total.update_messages, 2, "two deltas, one peer each");
        assert!(total.update_bytes > 0);
        assert_eq!(*service.query(&[5], &[0]), vec![(5, 0)]);
    }

    #[test]
    fn install_index_swaps_and_invalidates() {
        let service = chain_service();
        assert!(service.query(&[5], &[0]).is_empty());
        // Rebuild with a back edge and install.
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let p = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        service.install_index(Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs)));
        assert_eq!(service.cache_stats().invalidations(), 1);
        assert_eq!(*service.query(&[5], &[0]), vec![(5, 0)]);
    }

    #[test]
    fn disabled_cache_never_stores() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let p = Partitioning::new(vec![0, 0, 1], 2);
        let service = QueryService::with_config(
            Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs)),
            ServiceConfig {
                cache_capacity: 8,
                cache_enabled: false,
                ..ServiceConfig::default()
            },
        );
        service.query(&[0], &[2]);
        service.query(&[0], &[2]);
        assert_eq!(service.cache_len(), 0);
        assert_eq!(service.cache_stats().hits(), 0);
    }

    #[test]
    fn wire_transport_service_agrees_with_in_process() {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let p = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        let index = Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs));
        let in_process = QueryService::new(Arc::clone(&index));
        let wired = QueryService::with_config(
            Arc::clone(&index),
            ServiceConfig {
                transport: TransportKind::Wire,
                ..ServiceConfig::default()
            },
        );
        assert_eq!(wired.transport_kind(), TransportKind::Wire);
        let queries = [
            SetQuery::new(vec![0, 1], vec![4, 5]),
            SetQuery::new(vec![5], vec![0]),
            SetQuery::new(vec![2], vec![3]),
        ];
        let a = in_process.query_batch(&queries).expect("in-process");
        let b = wired.query_batch(&queries).expect("wire");
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(**x, **y, "wire answers must be byte-identical");
        }
        // Identical protocol cost: measured wire bytes == exact sizes.
        assert_eq!(
            in_process.comm_stats().snapshot(),
            wired.comm_stats().snapshot()
        );
    }

    #[test]
    fn tcp_transport_service_agrees_with_in_process() {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let p = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        let index = Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs));
        let in_process = QueryService::new(Arc::clone(&index));
        let tcp = QueryService::with_config(
            Arc::clone(&index),
            ServiceConfig {
                transport: TransportKind::Tcp,
                ..ServiceConfig::default()
            },
        );
        assert_eq!(tcp.transport_kind(), TransportKind::Tcp);
        let queries = [
            SetQuery::new(vec![0, 1], vec![4, 5]),
            SetQuery::new(vec![5], vec![0]),
        ];
        let a = in_process.query_batch(&queries).expect("in-process");
        let b = tcp.query_batch(&queries).expect("tcp loopback cluster");
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(**x, **y, "tcp answers must be byte-identical");
        }
        assert_eq!(
            in_process.comm_stats().snapshot(),
            tcp.comm_stats().snapshot(),
            "tcp protocol cost equals the in-process accounting"
        );
        // Updates through the service ship their deltas over TCP too
        // (exclusively owned index: the in-place path).
        let g2 = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let p2 = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        let owned = QueryService::with_config(
            Arc::new(DsrIndex::build(&g2, p2, LocalIndexKind::Dfs)),
            ServiceConfig {
                transport: TransportKind::Tcp,
                ..ServiceConfig::default()
            },
        );
        let out = owned
            .apply_updates(&[UpdateOp::Insert(5, 0)])
            .expect("tcp update");
        assert!(out.rebuilt_compounds);
        assert!(owned.update_stats().update_bytes > 0);
        assert_eq!(*owned.query(&[5], &[0]), vec![(5, 0)]);
    }

    #[test]
    fn eviction_counter_moves_on_tiny_cache() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let p = Partitioning::new(vec![0, 0, 1, 1], 2);
        let service = QueryService::with_config(
            Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs)),
            ServiceConfig {
                cache_capacity: 1,
                cache_enabled: true,
                ..ServiceConfig::default()
            },
        );
        service.query(&[0], &[3]);
        service.query(&[1], &[3]);
        assert_eq!(service.cache_stats().evictions(), 1);
        assert_eq!(service.cache_len(), 1);
    }
}
