//! The concurrent query service: snapshot-isolated serving over a
//! generation-chained [`DsrIndex`].
//!
//! Every install or mutating update batch advances a
//! [`GenerationChain`] of numbered,
//! immutable snapshots. The default query paths run against the *latest*
//! generation; [`QueryService::snapshot`] hands out a pinned
//! [`SnapshotRef`] whose view — index **and** cache namespace — stays
//! frozen while updates advance the chain underneath it.

use dsr_sync::atomic::{AtomicU64, Ordering};
use dsr_sync::Arc;
use std::time::{Duration, Instant};

use dsr_cluster::{
    BatchStats, CacheStats, CommStats, DynTransport, FailoverSnapshot, TransportError,
    TransportKind, UpdateStats,
};
use dsr_core::{coalesce_updates, DsrEngine, DsrIndex, SetQuery, UpdateOp, UpdateOutcome};
use dsr_graph::VertexId;

use crate::batcher::{Admission, Batcher, BatcherConfig, Entry, RoundCost, ServiceError, Waiter};
use crate::cache::{CachedPairs, ShardedCache, SigKey};
use crate::snapshot::{ExclusiveRefused, Generation, GenerationChain, GenerationId};

/// Why an update could not be applied.
#[derive(Debug)]
pub enum UpdateError {
    /// Pinned [`SnapshotRef`]s hold the latest generation, so
    /// [`UpdateMode::InPlace`] cannot mutate it without tearing their
    /// consistent view. Wait for the pins to drop, or use
    /// [`UpdateMode::ForkAndSwap`] / [`UpdateMode::Auto`], which fork
    /// around the readers.
    PinnedReaders {
        /// The pinned latest generation.
        generation: GenerationId,
        /// How many pins were outstanding at the attempt.
        pins: usize,
    },
    /// Raw `Arc` clones of the index (from [`QueryService::index`]) are
    /// outstanding, so mutating in place would race with concurrent
    /// readers. Either drop the clones, use [`UpdateMode::ForkAndSwap`] /
    /// [`UpdateMode::Auto`], or rebuild offline and
    /// [`install_index`](QueryService::install_index).
    IndexShared,
    /// The service's transport failed while shipping the refresh deltas
    /// (e.g. a TCP worker died mid-exchange). On the in-place path the
    /// owned index may be left partially refreshed — the consumed
    /// generation's cache namespace is retired either way, so no stale
    /// answer survives; prefer [`UpdateMode::ForkAndSwap`] on fallible
    /// transports, where the half-applied fork is discarded and readers
    /// keep the last good generation.
    Transport(TransportError),
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::PinnedReaders { generation, pins } => write!(
                f,
                "generation {generation} is pinned by {pins} SnapshotRef(s); drop the pins or \
                 update with UpdateMode::ForkAndSwap / UpdateMode::Auto"
            ),
            UpdateError::IndexShared => f.write_str(
                "index Arc is shared with outstanding readers; drop the clones, use \
                 UpdateMode::ForkAndSwap (or Auto, or the legacy clone_on_write), or rebuild \
                 and install_index",
            ),
            UpdateError::Transport(err) => write!(f, "update delta exchange failed: {err}"),
        }
    }
}

impl std::error::Error for UpdateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UpdateError::Transport(err) => Some(err),
            _ => None,
        }
    }
}

impl From<TransportError> for UpdateError {
    fn from(err: TransportError) -> Self {
        UpdateError::Transport(err)
    }
}

impl From<ExclusiveRefused> for UpdateError {
    fn from(refused: ExclusiveRefused) -> Self {
        match refused {
            ExclusiveRefused::Pinned { generation, pins } => {
                UpdateError::PinnedReaders { generation, pins }
            }
            ExclusiveRefused::IndexShared { .. } => UpdateError::IndexShared,
        }
    }
}

/// How [`QueryService::update`] obtains a mutable index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateMode {
    /// Mutate the latest generation's index in place — the cheapest path,
    /// but it refuses (typed [`UpdateError::PinnedReaders`] /
    /// [`UpdateError::IndexShared`]) whenever the latest generation is
    /// pinned or its index `Arc` is shared. A *successful* in-place batch
    /// that changed anything still advances the generation chain: the
    /// mutated index is re-wrapped under a fresh id (provably unobserved
    /// — exclusivity was required), so cache namespaces stay
    /// generation-exact.
    InPlace,
    /// Fork the latest index ([`DsrIndex::fork`]), mutate the fork, and
    /// install it as a new generation only when the batch changed
    /// anything. Pinned readers keep their old generation; costs one
    /// local-index rebuild per partition.
    ForkAndSwap,
    /// Try [`InPlace`](UpdateMode::InPlace) first and fall back to
    /// [`ForkAndSwap`](UpdateMode::ForkAndSwap) when exclusivity is
    /// refused — the recommended default for mixed OLTP/analytical
    /// tenancy.
    #[default]
    Auto,
}

/// Per-query knobs for [`QueryService::submit_with`] /
/// [`QueryService::query_with`] / [`QueryService::query_batch_with`].
///
/// The default (`QueryOptions::default()`) is the behavior of the plain
/// entry points: consult the cache, run against the latest generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryOptions {
    /// Consult (and populate) the result cache. `false` replaces the old
    /// `query_uncached` escape hatch: the query is still fused through
    /// the batch former, but neither probes nor fills any namespace.
    pub cache: bool,
    /// Pin the query to an explicit retained generation instead of the
    /// latest. Fails with [`ServiceError::GenerationReclaimed`] once that
    /// generation's last [`SnapshotRef`] has dropped — hold a
    /// [`QueryService::snapshot`] to keep it alive.
    pub pin: Option<GenerationId>,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            cache: true,
            pin: None,
        }
    }
}

/// Configuration of a [`QueryService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum number of cached query results (clamped to at least 1).
    pub cache_capacity: usize,
    /// Whether the result cache is consulted at all. Disabling it turns
    /// every [`QueryService::query`] into a fused execution (still batched
    /// across clients, never cached).
    pub cache_enabled: bool,
    /// Number of independently locked cache shards. Clamped so each shard
    /// keeps a meaningful LRU capacity (see
    /// [`ShardedCache::MIN_SHARD_CAPACITY`]) — tiny caches collapse to a
    /// single shard with exact global LRU semantics. More shards shrink
    /// hit-path lock contention between client threads.
    pub cache_shards: usize,
    /// Size cap of the batch former: the scheduler stops waiting and
    /// executes as soon as this many queries are pending. Groups submitted
    /// by one [`QueryService::query_batch`] call are indivisible, so a
    /// formed batch can exceed the cap by the tail group's size.
    pub max_batch: usize,
    /// Bounded forming window in microseconds: a cache-missing query waits
    /// at most this long for other clients' misses to fuse with before the
    /// batch executes. `0` disables the window (every submission executes
    /// immediately with whatever queued meanwhile) — single-client latency
    /// is then optimal but cross-client fusion only happens under true
    /// concurrency.
    pub max_wait_us: u64,
    /// Admission limit: maximum number of submitted-but-unanswered queries
    /// before backpressure. [`QueryService::try_query`] /
    /// [`QueryService::try_submit`] fail fast with
    /// [`ServiceError::Overloaded`]; the blocking entry points wait for
    /// room instead.
    pub admission_depth: usize,
    /// Which communication backend the service's engine runs over:
    /// [`TransportKind::InProcess`] (zero-copy moves, the default),
    /// [`TransportKind::Wire`] (serialized framed bytes through OS pipes)
    /// or [`TransportKind::Tcp`] (framed bytes through loopback TCP worker
    /// endpoints; to front **external** `dsr-node` workers, connect a
    /// [`TcpTransport`](dsr_cluster::TcpTransport) yourself and use
    /// [`QueryService::with_config_and_transport`]). The backend is
    /// instantiated once at construction and shared by every query this
    /// service executes — and by the refresh exchange of every update
    /// applied through [`QueryService::update`].
    pub transport: TransportKind,
    /// Legacy input to the deprecated update entry points
    /// (`update_in_place` / `apply_updates`): when `true` they delegate
    /// with [`UpdateMode::Auto`] (fork around shared state) instead of
    /// [`UpdateMode::InPlace`]. New code passes an [`UpdateMode`] to
    /// [`QueryService::update`] directly and ignores this flag.
    pub clone_on_write: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_capacity: 1024,
            cache_enabled: true,
            cache_shards: 8,
            max_batch: 64,
            max_wait_us: 200,
            admission_depth: 1024,
            transport: TransportKind::InProcess,
            clone_on_write: false,
        }
    }
}

impl ServiceConfig {
    /// The default configuration with the transport selected by the
    /// `DSR_TRANSPORT` environment variable, parsed by the shared
    /// [`FromStr`](std::str::FromStr) impl of [`TransportKind`] (an invalid
    /// value fails loudly, listing the accepted names).
    pub fn from_env() -> Self {
        ServiceConfig {
            transport: TransportKind::from_env(),
            ..ServiceConfig::default()
        }
    }
}

/// Which ownership path [`QueryService::mutate_index`] took — callers use
/// it to decide whether a failed mutation could have corrupted the
/// installed index (in place) or only a discarded fork.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UpdatePath {
    /// Exclusivity was proven: the latest generation's index itself was
    /// mutated (and re-wrapped under a fresh generation id if changed).
    InPlace,
    /// A fork was mutated (and installed as a new generation only on
    /// approved success).
    Fork,
}

/// Outcome of a batched service call.
#[derive(Debug, Clone)]
pub struct BatchReply {
    /// One answer per input query, in input order. Answers are `Arc`-shared
    /// with the cache, so repeated queries cost no copies.
    pub results: Vec<CachedPairs>,
    /// How many of the input queries were answered from the cache.
    pub cache_hits: usize,
    /// How many distinct queries were actually executed (cache misses after
    /// in-batch deduplication; under concurrency some may instead be
    /// resolved by another client's simultaneous execution).
    pub executed: usize,
    /// Communication rounds of the fused execution(s) that answered this
    /// batch (0 when every query hit the cache).
    pub rounds: u64,
    /// Messages exchanged by the fused execution(s).
    pub messages: u64,
    /// Bytes exchanged by the fused execution(s).
    pub bytes: u64,
    /// Wall-clock time of the whole call (probe + batch formation +
    /// execution + insert).
    pub elapsed: Duration,
}

/// Generation-chain gauges of a [`QueryService`] — the MVCC counters the
/// mixed-tenant benchmark reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenerationStats {
    /// The id of the generation currently serving unpinned queries.
    pub latest: GenerationId,
    /// Generations currently alive: retained (pinned, superseded) plus the
    /// latest.
    pub retained: usize,
    /// Generations ever created (including generation 0).
    pub created: u64,
    /// Generations reclaimed so far (`created - reclaimed` = alive).
    pub reclaimed: u64,
}

/// Cache hits split by namespace kind: hits served from the latest
/// generation's namespace vs hits served to pinned readers from a
/// retained generation's namespace. `latest + pinned ==`
/// [`CacheStats::hits`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NamespaceHits {
    /// Hits in the latest generation's namespace.
    pub latest: u64,
    /// Hits in retained (pinned, superseded) generations' namespaces.
    pub pinned: u64,
}

/// The state shared between client threads and the batch-forming
/// scheduler thread.
pub(crate) struct Core {
    pub(crate) generations: GenerationChain,
    pub(crate) cache: ShardedCache,
    pub(crate) cache_enabled: bool,
    pub(crate) transport: DynTransport,
    pub(crate) admission: Admission,
    pub(crate) stats: CacheStats,
    pub(crate) comm: CommStats,
    pub(crate) batch: BatchStats,
    /// Cache hits answered from the latest generation's namespace.
    pub(crate) latest_hits: AtomicU64,
    /// Cache hits answered to pinned readers from retained namespaces.
    pub(crate) pinned_hits: AtomicU64,
}

impl Core {
    fn record_namespaced_hit(&self, generation: &Generation) {
        self.stats.record_hit();
        if generation.id() == self.generations.latest_id() {
            self.latest_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.pinned_hits.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A pending (or immediately answered) single-query submission — the
/// two-phase half of [`QueryService::query`]. Obtain one with
/// [`QueryService::submit`] / [`QueryService::try_submit`], then collect
/// the answer with [`QueryTicket::wait`].
#[derive(Debug)]
pub struct QueryTicket {
    inner: TicketInner,
}

enum TicketInner {
    /// Answered from the cache at submission time.
    Ready(CachedPairs),
    /// Queued for fused execution; slot 0 of a single-entry group.
    Pending(Arc<Waiter>),
}

impl std::fmt::Debug for TicketInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TicketInner::Ready(_) => f.write_str("Ready"),
            TicketInner::Pending(_) => f.write_str("Pending"),
        }
    }
}

impl QueryTicket {
    /// Whether the submission was answered from the cache without touching
    /// the scheduler (waiting on it will not block).
    pub fn is_ready(&self) -> bool {
        matches!(self.inner, TicketInner::Ready(_))
    }

    /// Blocks until the query is answered.
    ///
    /// # Errors
    /// [`ServiceError::Transport`] when the fused execution containing
    /// this query failed on the service transport.
    pub fn wait(self) -> Result<CachedPairs, ServiceError> {
        match self.inner {
            TicketInner::Ready(value) => Ok(value),
            TicketInner::Pending(waiter) => {
                let mut fulfillments = waiter.wait()?;
                let (value, _cost) = fulfillments.pop().expect("single-slot group");
                Ok(value)
            }
        }
    }
}

/// A pinned, consistent view of the service: one generation's index plus
/// its cache namespace, frozen for the lifetime of the ref.
///
/// Obtained with [`QueryService::snapshot`]. Holding a `SnapshotRef`
/// *pins* its generation: updates keep advancing the chain (via
/// [`UpdateMode::ForkAndSwap`] / [`UpdateMode::Auto`]), but this
/// generation — and every cached answer in its namespace — stays alive
/// and byte-identical until the ref drops. Queries through the ref still
/// fuse with other clients' traffic in the batch former; entries pinned
/// to different generations simply execute as separate fused runs.
///
/// Dropping the ref releases the pin and reclaims any generation whose
/// last pin this was (together with its cache namespace).
pub struct SnapshotRef<'a> {
    service: &'a QueryService,
    /// `Some` until drop: the pin itself. Wrapped in `Option` so `Drop`
    /// can release the pin *before* asking the service to reap.
    generation: Option<Arc<Generation>>,
}

impl SnapshotRef<'_> {
    fn pin(&self) -> &Arc<Generation> {
        self.generation.as_ref().expect("pinned until drop")
    }

    /// The pinned generation's id.
    pub fn generation(&self) -> GenerationId {
        self.pin().id()
    }

    /// The pinned generation's immutable index — for direct engine access
    /// (e.g. analytical algorithms that walk the raw graph).
    pub fn index(&self) -> &Arc<DsrIndex> {
        self.pin().index()
    }

    /// Answers `S ; T` against the pinned generation, consulting its
    /// cache namespace; misses fuse with concurrent traffic.
    ///
    /// # Panics
    /// On transport failure, like [`QueryService::query`].
    pub fn query(&self, sources: &[VertexId], targets: &[VertexId]) -> CachedPairs {
        match self.try_query(sources, targets) {
            Ok(value) => value,
            Err(err) => panic!("snapshot query failed: {err}"),
        }
    }

    /// Fail-typed [`query`](SnapshotRef::query).
    ///
    /// # Errors
    /// [`ServiceError::Transport`] when the fused execution fails.
    pub fn try_query(
        &self,
        sources: &[VertexId],
        targets: &[VertexId],
    ) -> Result<CachedPairs, ServiceError> {
        self.service
            .submit_pinned(Arc::clone(self.pin()), sources, targets, true, true)?
            .wait()
    }

    /// Answers a whole batch against the pinned generation with a single
    /// fused execution for all namespace misses — the workhorse of
    /// analytical [`Workload`](crate::Workload)s.
    ///
    /// # Errors
    /// [`ServiceError::Transport`] when the fused execution fails.
    pub fn query_batch(&self, queries: &[SetQuery]) -> Result<BatchReply, ServiceError> {
        self.service
            .query_batch_pinned(Arc::clone(self.pin()), queries, true)
    }
}

impl std::fmt::Debug for SnapshotRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotRef")
            .field("generation", &self.generation())
            .finish()
    }
}

impl Drop for SnapshotRef<'_> {
    fn drop(&mut self) {
        // Release the pin first: reap sees the true strong count.
        self.generation = None;
        self.service.reap_generations();
    }
}

/// A thread-safe query-serving front end over a generation chain of
/// [`DsrIndex`] snapshots.
///
/// The service can be hammered from any number of client threads
/// concurrently. Queries flow through a **batch former** (see the
/// [`batcher`](crate::batcher) module): cache hits are answered directly
/// from the sharded result cache, while cache misses from *all* clients
/// are fused by a dedicated scheduler thread into shared
/// scatter/exchange/gather runs — 3 communication rounds per formed batch
/// instead of 3 per query. Per-slave work runs on the process-wide
/// persistent [`SlavePool`](dsr_cluster::SlavePool), so concurrent batches
/// interleave at slave-task granularity instead of spawning threads.
///
/// # Snapshots, caching and updates
///
/// The installed index lives in a
/// [`GenerationChain`]: every
/// [`install_index`](QueryService::install_index) and every
/// [`update`](QueryService::update) batch that changes anything produces
/// a fresh, numbered, immutable generation. The result cache
/// ([`ShardedCache`]) is partitioned into **per-generation namespaces**:
///
/// * unpinned queries probe and fill the latest generation's namespace —
///   a no-op update batch keeps the generation, so the hot cache
///   survives idempotent replays;
/// * [`QueryService::snapshot`] pins the latest generation into a
///   [`SnapshotRef`]: its queries keep hitting the pinned namespace even
///   while updates advance the chain, so an analytical reader's hit rate
///   survives concurrent update batches;
/// * a generation — and its namespace — is reclaimed exactly when its
///   last pin drops ([`GenerationStats`] reports the gauges).
///
/// [`QueryService::update`] applies incremental update batches (Section
/// 3.3.3 of the paper) under an explicit [`UpdateMode`];
/// [`QueryOptions`] gives per-query control (cache bypass, explicit
/// generation pinning) over the read side.
pub struct QueryService {
    // Declared before `core` so Drop joins the scheduler thread first.
    batcher: Batcher,
    core: Arc<Core>,
    clone_on_write: bool,
    /// Aggregate refresh-exchange cost of every update batch applied
    /// through this service (rounds/messages/bytes of shipped deltas).
    updates_comm: CommStats,
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService")
            .field("generations", &self.core.generations)
            .field("cache_enabled", &self.core.cache_enabled)
            .field("cache", &self.core.cache)
            .finish()
    }
}

impl QueryService {
    /// Creates a service over `index` with the default configuration.
    pub fn new(index: Arc<DsrIndex>) -> Self {
        Self::with_config(index, ServiceConfig::default())
    }

    /// Creates a service over `index` with an explicit configuration.
    pub fn with_config(index: Arc<DsrIndex>, config: ServiceConfig) -> Self {
        let transport = config.transport.create();
        Self::with_config_and_transport(index, config, transport)
    }

    /// Creates a service over `index` with an explicit configuration **and
    /// an already-constructed transport** — the entry point for fronting a
    /// remote cluster: connect a
    /// [`TcpTransport`](dsr_cluster::TcpTransport) to the `dsr-node`
    /// workers and hand it over wrapped in
    /// [`DynTransport::Tcp`](dsr_cluster::DynTransport). The
    /// `config.transport` field is ignored in favor of the given backend.
    pub fn with_config_and_transport(
        index: Arc<DsrIndex>,
        config: ServiceConfig,
        transport: DynTransport,
    ) -> Self {
        let core = Arc::new(Core {
            generations: GenerationChain::new(index),
            cache: ShardedCache::new(config.cache_capacity, config.cache_shards),
            cache_enabled: config.cache_enabled,
            transport,
            admission: Admission::new(config.admission_depth),
            stats: CacheStats::new(),
            comm: CommStats::new(),
            batch: BatchStats::new(),
            latest_hits: AtomicU64::new(0),
            pinned_hits: AtomicU64::new(0),
        });
        let batcher = Batcher::spawn(
            Arc::clone(&core),
            BatcherConfig {
                max_batch: config.max_batch.max(1),
                max_wait: Duration::from_micros(config.max_wait_us),
            },
        );
        QueryService {
            batcher,
            core,
            clone_on_write: config.clone_on_write,
            updates_comm: CommStats::new(),
        }
    }

    /// A clone of the latest generation's index `Arc`.
    ///
    /// Note this is a *raw* index clone, not a generation pin: holding it
    /// blocks [`UpdateMode::InPlace`] (typed [`UpdateError::IndexShared`])
    /// but does **not** retain the generation's cache namespace. Prefer
    /// [`QueryService::snapshot`] for a consistent pinned view.
    pub fn index(&self) -> Arc<DsrIndex> {
        Arc::clone(self.core.generations.latest().index())
    }

    /// Pins the latest generation into a [`SnapshotRef`]: a consistent
    /// view (index + cache namespace) that survives concurrent updates
    /// until the ref drops.
    pub fn snapshot(&self) -> SnapshotRef<'_> {
        SnapshotRef {
            service: self,
            generation: Some(self.core.generations.latest()),
        }
    }

    /// Which transport backend this service executes queries over.
    pub fn transport_kind(&self) -> TransportKind {
        self.core.transport.kind()
    }

    /// The transport this service executes queries over, for callers that
    /// need direct access to the backend (e.g. to inject faults or rejoin
    /// suspect workers on a [`DynTransport::Tcp`] cluster).
    pub fn transport(&self) -> &DynTransport {
        &self.core.transport
    }

    /// Failover counters for this service's transport: retries, suspects
    /// and resyncs accumulated while routing around dead replicas. All
    /// zeros on the in-process and pipe backends (which cannot fail) and on
    /// a fault-free TCP cluster — [`FailoverSnapshot::is_zero`] is the
    /// degraded-mode check.
    pub fn failover_stats(&self) -> FailoverSnapshot {
        self.core
            .transport
            .failover_stats()
            .map(|stats| stats.snapshot())
            .unwrap_or_default()
    }

    /// Cache hit/miss/eviction counters.
    pub fn cache_stats(&self) -> &CacheStats {
        &self.core.stats
    }

    /// Generation-chain gauges: the latest id, how many generations are
    /// alive (retained by pins + the latest), and the created/reclaimed
    /// totals.
    pub fn generation_stats(&self) -> GenerationStats {
        GenerationStats {
            latest: self.core.generations.latest_id(),
            retained: self.core.generations.retained(),
            created: self.core.generations.created(),
            reclaimed: self.core.generations.reclaimed(),
        }
    }

    /// Cache hits split by namespace kind (latest vs pinned retained
    /// generations). Deterministic under single-threaded replay — the
    /// mixed-tenant benchmark asserts byte-identical values across
    /// transports.
    pub fn namespace_hits(&self) -> NamespaceHits {
        NamespaceHits {
            latest: self.core.latest_hits.load(Ordering::Relaxed),
            pinned: self.core.pinned_hits.load(Ordering::Relaxed),
        }
    }

    /// Aggregate communication counters across every query this service has
    /// executed (cache hits add nothing — that is the point of the cache).
    pub fn comm_stats(&self) -> &CommStats {
        &self.core.comm
    }

    /// Batch-former counters: formed-batch size histogram, queued wait and
    /// the fusion ratio (queries per communication round).
    pub fn batch_stats(&self) -> &BatchStats {
        &self.core.batch
    }

    /// Number of currently cached results, across all live namespaces.
    pub fn cache_len(&self) -> usize {
        self.core.cache.len()
    }

    /// Probes the cache and, on a miss, enqueues the query into the batch
    /// former, blocking for admission if the service is saturated. The
    /// returned [`QueryTicket`] collects the answer.
    ///
    /// Submitting without immediately waiting is how a single client
    /// presents concurrent work: submit several queries, then
    /// [`flush`](QueryService::flush) and wait on the tickets — the misses
    /// fuse into one protocol run exactly like misses from distinct
    /// threads.
    pub fn submit(&self, sources: &[VertexId], targets: &[VertexId]) -> QueryTicket {
        let generation = self.core.generations.latest();
        self.submit_pinned(generation, sources, targets, true, true)
            .expect("blocking admission cannot be refused")
    }

    /// Non-blocking [`submit`](QueryService::submit): fails fast with
    /// [`ServiceError::Overloaded`] instead of waiting for admission when
    /// [`ServiceConfig::admission_depth`] queries are already in flight.
    ///
    /// # Errors
    /// [`ServiceError::Overloaded`] on a saturated admission queue.
    pub fn try_submit(
        &self,
        sources: &[VertexId],
        targets: &[VertexId],
    ) -> Result<QueryTicket, ServiceError> {
        let generation = self.core.generations.latest();
        self.submit_pinned(generation, sources, targets, true, false)
    }

    /// [`submit`](QueryService::submit) with per-query [`QueryOptions`]:
    /// cache bypass and/or an explicit generation pin. Blocks for
    /// admission.
    ///
    /// # Errors
    /// [`ServiceError::GenerationReclaimed`] when `options.pin` names a
    /// generation whose last pin has dropped.
    pub fn submit_with(
        &self,
        sources: &[VertexId],
        targets: &[VertexId],
        options: QueryOptions,
    ) -> Result<QueryTicket, ServiceError> {
        let generation = self.resolve_pin(&options)?;
        self.submit_pinned(generation, sources, targets, options.cache, true)
    }

    /// Non-blocking [`submit_with`](QueryService::submit_with).
    ///
    /// # Errors
    /// [`ServiceError::Overloaded`] on a saturated admission queue,
    /// [`ServiceError::GenerationReclaimed`] on a dead pin.
    pub fn try_submit_with(
        &self,
        sources: &[VertexId],
        targets: &[VertexId],
        options: QueryOptions,
    ) -> Result<QueryTicket, ServiceError> {
        let generation = self.resolve_pin(&options)?;
        self.submit_pinned(generation, sources, targets, options.cache, false)
    }

    /// Resolves `options.pin` to a live generation (the latest when
    /// unset).
    fn resolve_pin(&self, options: &QueryOptions) -> Result<Arc<Generation>, ServiceError> {
        match options.pin {
            None => Ok(self.core.generations.latest()),
            Some(id) => self
                .core
                .generations
                .lookup(id)
                .ok_or(ServiceError::GenerationReclaimed { generation: id }),
        }
    }

    /// The one submission path: probe `generation`'s namespace (when
    /// `cache` asks for it), then enqueue a generation-pinned entry.
    fn submit_pinned(
        &self,
        generation: Arc<Generation>,
        sources: &[VertexId],
        targets: &[VertexId],
        cache: bool,
        blocking: bool,
    ) -> Result<QueryTicket, ServiceError> {
        let key = SigKey::new(sources, targets);
        if self.core.cache_enabled && cache {
            if let Some(hit) = self.core.cache.get(generation.id(), &key) {
                self.core.record_namespaced_hit(&generation);
                return Ok(QueryTicket {
                    inner: TicketInner::Ready(hit),
                });
            }
            self.core.stats.record_miss();
        }
        if blocking {
            self.core.admission.acquire_blocking(1);
        } else {
            self.core.admission.try_acquire(1)?;
        }
        let waiter = Waiter::new(1);
        self.batcher.submit(vec![Entry {
            key,
            generation,
            cache,
            waiter: Arc::clone(&waiter),
            slot: 0,
            enqueued: Instant::now(),
        }]);
        Ok(QueryTicket {
            inner: TicketInner::Pending(waiter),
        })
    }

    /// Asks the batch former to execute whatever is pending right now
    /// instead of waiting out the forming window — pair with
    /// [`submit`](QueryService::submit) when the caller knows no more work
    /// is coming.
    pub fn flush(&self) {
        self.batcher.flush();
    }

    /// Answers `S ; T` against the latest generation, consulting the
    /// result cache; misses fuse with concurrent clients' misses into
    /// shared protocol rounds.
    ///
    /// Blocks for admission when the service is saturated (use
    /// [`try_query`](QueryService::try_query) for fail-fast backpressure).
    ///
    /// # Panics
    /// On transport failure, like the underlying
    /// [`DsrEngine::set_reachability`] — the in-process and pipe backends
    /// never fail; TCP-fronted callers who need the typed error use
    /// [`try_query`](QueryService::try_query) or
    /// [`query_batch`](QueryService::query_batch).
    pub fn query(&self, sources: &[VertexId], targets: &[VertexId]) -> CachedPairs {
        match self.submit(sources, targets).wait() {
            Ok(value) => value,
            Err(err) => panic!("service query failed: {err}"),
        }
    }

    /// Fail-fast [`query`](QueryService::query): returns
    /// [`ServiceError::Overloaded`] instead of blocking when the admission
    /// queue is saturated, and [`ServiceError::Transport`] instead of
    /// panicking when the fused execution fails.
    ///
    /// # Errors
    /// [`ServiceError::Overloaded`] on a saturated admission queue,
    /// [`ServiceError::Transport`] when the fused run failed.
    pub fn try_query(
        &self,
        sources: &[VertexId],
        targets: &[VertexId],
    ) -> Result<CachedPairs, ServiceError> {
        self.try_submit(sources, targets)?.wait()
    }

    /// [`query`](QueryService::query) with per-query [`QueryOptions`].
    /// Blocks for admission; fails typed instead of panicking.
    ///
    /// # Errors
    /// [`ServiceError::Transport`] when the fused execution fails,
    /// [`ServiceError::GenerationReclaimed`] on a dead
    /// [`QueryOptions::pin`].
    pub fn query_with(
        &self,
        sources: &[VertexId],
        targets: &[VertexId],
        options: QueryOptions,
    ) -> Result<CachedPairs, ServiceError> {
        self.submit_with(sources, targets, options)?.wait()
    }

    /// Answers `S ; T` without touching the cache or the batch former (no
    /// lookup, no insert, no queueing), against the latest generation.
    #[deprecated(
        note = "use query_with with QueryOptions { cache: false, .. }, which still fuses \
                with concurrent traffic"
    )]
    pub fn query_uncached(
        &self,
        sources: &[VertexId],
        targets: &[VertexId],
    ) -> Vec<(VertexId, VertexId)> {
        let generation = self.core.generations.latest();
        let engine = DsrEngine::with_transport(generation.index(), &self.core.transport);
        let outcome = engine.set_reachability(sources, targets);
        self.core
            .comm
            .add(outcome.rounds, outcome.messages, outcome.bytes);
        outcome.pairs
    }

    /// Answers a whole batch of queries with a single
    /// scatter/exchange/gather sequence for all cache misses, against the
    /// latest generation.
    ///
    /// The batch is probed against the cache; the misses are submitted to
    /// the batch former as one indivisible group and flushed, so a lone
    /// caller still pays exactly one fused 3-round execution — and under
    /// concurrency the group shares its rounds with other clients' misses
    /// that queued in the same window. Identical signatures within the
    /// batch are deduplicated so each distinct miss is executed exactly
    /// once.
    ///
    /// # Errors
    /// [`ServiceError::Transport`] when the fused execution fails (e.g. a
    /// TCP worker disconnecting) — nothing is cached from a failed batch —
    /// and never [`ServiceError::Overloaded`]: a whole batch blocks for
    /// admission. The in-process and pipe backends never fail.
    pub fn query_batch(&self, queries: &[SetQuery]) -> Result<BatchReply, ServiceError> {
        let generation = self.core.generations.latest();
        self.query_batch_pinned(generation, queries, true)
    }

    /// [`query_batch`](QueryService::query_batch) with per-query
    /// [`QueryOptions`] applied to the whole batch.
    ///
    /// # Errors
    /// As [`query_batch`](QueryService::query_batch), plus
    /// [`ServiceError::GenerationReclaimed`] on a dead
    /// [`QueryOptions::pin`].
    pub fn query_batch_with(
        &self,
        queries: &[SetQuery],
        options: QueryOptions,
    ) -> Result<BatchReply, ServiceError> {
        let generation = self.resolve_pin(&options)?;
        self.query_batch_pinned(generation, queries, options.cache)
    }

    /// The one batched path: probe `generation`'s namespace, submit the
    /// misses as one indivisible generation-pinned group, flush, wait.
    fn query_batch_pinned(
        &self,
        generation: Arc<Generation>,
        queries: &[SetQuery],
        cache: bool,
    ) -> Result<BatchReply, ServiceError> {
        let start = Instant::now();
        let use_cache = self.core.cache_enabled && cache;
        let mut results: Vec<Option<CachedPairs>> = vec![None; queries.len()];
        let mut cache_hits = 0usize;
        let mut miss_keys: Vec<SigKey> = Vec::new();
        let mut miss_slots: Vec<usize> = Vec::new(); // waiter slot -> query index
        for (qi, query) in queries.iter().enumerate() {
            let key = SigKey::from_query(query);
            if use_cache {
                if let Some(hit) = self.core.cache.get(generation.id(), &key) {
                    self.core.record_namespaced_hit(&generation);
                    cache_hits += 1;
                    results[qi] = Some(hit);
                    continue;
                }
                self.core.stats.record_miss();
            }
            miss_slots.push(qi);
            miss_keys.push(key);
        }

        let (mut rounds, mut messages, mut bytes) = (0u64, 0u64, 0u64);
        let mut executed = 0usize;
        if !miss_keys.is_empty() {
            self.core.admission.acquire_blocking(miss_keys.len());
            let waiter = Waiter::new(miss_keys.len());
            let enqueued = Instant::now();
            self.batcher.submit(
                miss_keys
                    .iter()
                    .enumerate()
                    .map(|(slot, key)| Entry {
                        key: key.clone(),
                        generation: Arc::clone(&generation),
                        cache,
                        waiter: Arc::clone(&waiter),
                        slot,
                        enqueued,
                    })
                    .collect(),
            );
            // The group's entries carry their own pins; drop ours so a
            // client waiting on this batch is the only remaining pinner.
            drop(generation);
            // The caller already presented the whole batch: nothing is
            // gained by waiting out the forming window.
            self.batcher.flush();
            let fulfillments = waiter.wait()?;

            // Aggregate the reply: count each distinct executed signature
            // once, and each fused run's cost once (duplicates and
            // scheduler-side cache resolutions share `Arc`s).
            let mut executed_sigs: Vec<&SigKey> = Vec::new();
            let mut costs: Vec<Arc<RoundCost>> = Vec::new();
            for (slot, (value, cost)) in fulfillments.into_iter().enumerate() {
                if let Some(cost) = cost {
                    let key = &miss_keys[slot];
                    if !executed_sigs.contains(&key) {
                        executed_sigs.push(key);
                        executed += 1;
                    }
                    if !costs.iter().any(|seen| Arc::ptr_eq(seen, &cost)) {
                        rounds += cost.rounds;
                        messages += cost.messages;
                        bytes += cost.bytes;
                        costs.push(cost);
                    }
                }
                results[miss_slots[slot]] = Some(value);
            }
        }

        Ok(BatchReply {
            results: results
                .into_iter()
                .map(|slot| slot.expect("every query answered"))
                .collect(),
            cache_hits,
            executed,
            rounds,
            messages,
            bytes,
            elapsed: start.elapsed(),
        })
    }

    /// Installs a rebuilt index as a fresh generation and reclaims the
    /// superseded one as soon as its pins drop.
    ///
    /// The install never stalls the read side (each snapshot slot is
    /// locked only for a pointer store — see
    /// [`SnapshotHolder`](crate::snapshot::SnapshotHolder)). This is the
    /// offline-rebuild producer of generations: queries started before
    /// the install finish against the old generation and stay
    /// namespace-correct; pinned [`SnapshotRef`]s keep the old generation
    /// alive until they drop.
    pub fn install_index(&self, index: Arc<DsrIndex>) {
        let _serial = self.core.generations.lock_updates();
        let installed = self.core.generations.install(index);
        self.core.cache.open(installed.id());
        self.reap_generations();
    }

    /// Applies a batch of edge updates through the differential pipeline
    /// (Section 3.3.3): back-to-back operations on the same edge are
    /// coalesced to the last one ([`coalesce_updates`]), only affected
    /// partitions refresh their summaries, and the refresh deltas ship
    /// through this service's transport — their measured cost accumulates
    /// in [`QueryService::update_stats`].
    ///
    /// `mode` selects the ownership path — see [`UpdateMode`]. On every
    /// path the cache stays generation-exact: a batch that changed
    /// anything advances the chain (fresh namespace, old one retired or
    /// retained for its pinned readers), while a complete no-op batch
    /// (duplicates, already-absent deletions) keeps the generation and
    /// the hot cache, so idempotent replays cannot collapse the hit rate.
    ///
    /// # Errors
    /// [`UpdateError::PinnedReaders`] / [`UpdateError::IndexShared`] when
    /// `mode` is [`UpdateMode::InPlace`] and exclusivity was refused —
    /// the batch is **not** applied; [`UpdateError::Transport`] when the
    /// delta exchange failed.
    pub fn update(&self, ops: &[UpdateOp], mode: UpdateMode) -> Result<UpdateOutcome, UpdateError> {
        let ops = coalesce_updates(ops);
        let (result, _path) = self.mutate_index(
            |index| index.apply_updates_with_transport(&ops, &self.core.transport),
            // An in-place transport failure may leave the index partially
            // refreshed: the generation must advance (retiring the old
            // namespace) so no pre-update answer survives.
            |result| result.is_err() || result.as_ref().is_ok_and(|o| o.rebuilt_compounds),
            // Only a successful, actually-changing batch installs the
            // fork; a half-applied fork (transport failure) is discarded.
            |result| result.as_ref().is_ok_and(|o| o.rebuilt_compounds),
            mode,
        )?;
        let outcome = result?;
        self.updates_comm.add(
            outcome.stats.update_rounds,
            outcome.stats.update_messages,
            outcome.stats.update_bytes,
        );
        Ok(outcome)
    }

    /// The single implementation of the ownership dance behind
    /// [`QueryService::update`] (and the deprecated delegates): runs
    /// `mutate` against the latest generation's index when exclusivity is
    /// proven, or against a fork, per `mode`.
    ///
    /// `advanced_in_place` decides whether a completed in-place mutation
    /// advanced the chain (the consumed generation's namespace is then
    /// retired); `install_fork` decides whether a mutated fork is
    /// installed as a new generation. `mutate` is `FnMut` only because
    /// [`UpdateMode::Auto`] may route it to the fork path after a refused
    /// exclusive attempt — it runs at most once.
    fn mutate_index<R>(
        &self,
        mut mutate: impl FnMut(&mut DsrIndex) -> R,
        advanced_in_place: impl Fn(&R) -> bool,
        install_fork: impl Fn(&R) -> bool,
        mode: UpdateMode,
    ) -> Result<(R, UpdatePath), UpdateError> {
        // One update at a time, end to end: two concurrent fork-based
        // updates must not both fork the same parent.
        let _serial = self.core.generations.lock_updates();
        if matches!(mode, UpdateMode::InPlace | UpdateMode::Auto) {
            match self
                .core
                .generations
                .mutate_exclusive(|index| mutate(index), |r| advanced_in_place(r))
            {
                Ok(mutated) => {
                    if let Some(retired) = mutated.retired {
                        // Open the advanced generation's namespace before
                        // retiring the consumed one: a reader racing the
                        // swap finds a live namespace either way.
                        self.core.cache.open(mutated.generation);
                        self.core.cache.retire(retired);
                        self.core.stats.record_invalidation();
                    }
                    return Ok((mutated.result, UpdatePath::InPlace));
                }
                Err(refused) => {
                    if mode == UpdateMode::InPlace {
                        return Err(refused.into());
                    }
                    // Auto: fall through to the fork path.
                }
            }
        }
        let latest = self.core.generations.latest();
        let mut fork = latest.index().fork();
        let result = mutate(&mut fork);
        if install_fork(&result) {
            let installed = self.core.generations.install(Arc::new(fork));
            self.core.cache.open(installed.id());
            // Shed our own pin before reaping: when no reader pins the
            // superseded generation, it (and its namespace) dies now.
            drop(latest);
            self.reap_generations();
        }
        Ok((result, UpdatePath::Fork))
    }

    /// Applies an arbitrary index mutation in place, then invalidates by
    /// advancing the generation.
    #[deprecated(
        note = "use QueryService::update with an UpdateMode (or install_index for wholesale \
                replacement); arbitrary closures conservatively retire the whole namespace"
    )]
    pub fn update_in_place<R>(
        &self,
        mutate: impl FnOnce(&mut DsrIndex) -> R,
    ) -> Result<R, UpdateError> {
        let mode = if self.clone_on_write {
            UpdateMode::Auto
        } else {
            UpdateMode::InPlace
        };
        let mut mutate = Some(mutate);
        // An arbitrary mutation's effect is unknowable: conservatively
        // treat every call as a change (advance the chain, retire or
        // retain the old namespace).
        let (result, _path) = self.mutate_index(
            |index| (mutate.take().expect("mutation runs once"))(index),
            |_| true,
            |_| true,
            mode,
        )?;
        Ok(result)
    }

    /// Applies a batch of edge updates with the ownership mode implied by
    /// the legacy [`ServiceConfig::clone_on_write`] flag.
    #[deprecated(note = "use QueryService::update with an explicit UpdateMode")]
    pub fn apply_updates(&self, ops: &[UpdateOp]) -> Result<UpdateOutcome, UpdateError> {
        let mode = if self.clone_on_write {
            UpdateMode::Auto
        } else {
            UpdateMode::InPlace
        };
        self.update(ops, mode)
    }

    /// Aggregate communication cost of every update batch applied through
    /// [`QueryService::update`]: measured wire bytes of the shipped
    /// summary deltas, reported in the same units as
    /// [`QueryService::comm_stats`].
    pub fn update_stats(&self) -> UpdateStats {
        UpdateStats::from_comm(&self.updates_comm)
    }

    /// Explicitly drops every live namespace's entries (an administrative
    /// clear — updates invalidate generation-exactly on their own).
    pub fn invalidate_cache(&self) {
        for namespace in self.core.cache.live_namespaces() {
            self.core.cache.retire(namespace);
            self.core.cache.open(namespace);
        }
        self.core.stats.record_invalidation();
    }

    /// Reclaims every generation whose last pin has dropped, retiring the
    /// matching cache namespaces. Called after installs and from
    /// [`SnapshotRef`]'s `Drop`.
    pub(crate) fn reap_generations(&self) {
        for retired in self.core.generations.reap() {
            self.core.cache.retire(retired);
            self.core.stats.record_invalidation();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsr_graph::DiGraph;
    use dsr_partition::Partitioning;
    use dsr_reach::LocalIndexKind;

    fn chain_service() -> QueryService {
        // 0 -> 1 -> 2 -> 3 -> 4 -> 5 across two partitions.
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let p = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        QueryService::new(Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs)))
    }

    #[test]
    fn repeated_query_hits_cache() {
        let service = chain_service();
        let first = service.query(&[0], &[5]);
        assert_eq!(*first, vec![(0, 5)]);
        assert_eq!(service.cache_stats().misses(), 1);
        let second = service.query(&[0], &[5]);
        assert!(Arc::ptr_eq(&first, &second), "hit returns the shared Arc");
        assert_eq!(service.cache_stats().hits(), 1);
        // The hit was served from the latest generation's namespace.
        assert_eq!(
            service.namespace_hits(),
            NamespaceHits {
                latest: 1,
                pinned: 0
            }
        );
        // A hit performs no communication: the aggregate counters only hold
        // the first (miss) execution.
        assert_eq!(service.comm_stats().rounds(), 3);
        // The miss went through the batch former: one formed batch of one.
        assert_eq!(service.batch_stats().batches(), 1);
        assert_eq!(service.batch_stats().queries(), 1);
        assert_eq!(service.batch_stats().executed(), 1);
    }

    #[test]
    fn normalization_unifies_equivalent_queries() {
        let service = chain_service();
        service.query(&[0, 1, 0], &[5, 4]);
        service.query(&[1, 0], &[4, 5, 5]);
        assert_eq!(service.cache_stats().hits(), 1);
        assert_eq!(service.cache_stats().misses(), 1);
        assert_eq!(service.cache_len(), 1);
    }

    #[test]
    fn failover_stats_are_zero_off_the_tcp_backend() {
        let service = chain_service();
        service.query(&[0], &[5]);
        let snapshot = service.failover_stats();
        assert!(snapshot.is_zero(), "in-process backend never fails over");
        assert!(service.transport().failover_stats().is_none());
    }

    #[test]
    fn failover_stats_surface_tcp_degradation() {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let p = Partitioning::new(vec![0, 0, 1, 1, 2, 2], 3);
        let index = Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs));
        let transport = DynTransport::Tcp(dsr_cluster::TcpTransport::loopback_replicated(2));
        let service =
            QueryService::with_config_and_transport(index, ServiceConfig::default(), transport);
        assert!(
            service.failover_stats().is_zero(),
            "fault-free run is clean"
        );

        // Kill one worker mid-run; the service routes around it and the
        // degraded-mode counters light up.
        let tcp = service.transport().as_tcp().expect("tcp backend");
        tcp.inject_faults(dsr_cluster::FaultPlan::new().disconnect(1));
        let pairs = service.query(&[0], &[5]);
        assert_eq!(*pairs, vec![(0, 5)]);
        let snapshot = service.failover_stats();
        assert!(!snapshot.is_zero(), "failover was exercised");
        assert!(snapshot.retries >= 1);
        assert_eq!(snapshot.suspects, 1);
    }

    #[test]
    #[allow(deprecated)]
    fn uncached_bypass_does_not_touch_cache() {
        let service = chain_service();
        assert_eq!(service.query_uncached(&[0], &[5]), vec![(0, 5)]);
        assert_eq!(service.cache_stats().hits(), 0);
        assert_eq!(service.cache_stats().misses(), 0);
        assert_eq!(service.cache_len(), 0);
        assert_eq!(service.batch_stats().batches(), 0, "bypasses the former");
    }

    #[test]
    fn cache_false_options_fuse_but_never_store() {
        let service = chain_service();
        let options = QueryOptions {
            cache: false,
            ..QueryOptions::default()
        };
        let pairs = service
            .query_with(&[0], &[5], options)
            .expect("in-process transport");
        assert_eq!(*pairs, vec![(0, 5)]);
        // The bypass neither probed nor filled any namespace …
        assert_eq!(service.cache_stats().hits(), 0);
        assert_eq!(service.cache_stats().misses(), 0);
        assert_eq!(service.cache_len(), 0);
        // … but unlike the old query_uncached it went through the former.
        assert_eq!(service.batch_stats().batches(), 1);
        // A cached repeat afterwards proves the bypass left no trace.
        service.query(&[0], &[5]);
        assert_eq!(service.cache_stats().misses(), 1);
    }

    #[test]
    fn batch_mixes_hits_and_misses() {
        let service = chain_service();
        service.query(&[0], &[5]);
        let reply = service
            .query_batch(&[
                SetQuery::new(vec![0], vec![5]),    // hit
                SetQuery::new(vec![1], vec![4]),    // miss
                SetQuery::new(vec![1, 1], vec![4]), // same signature: deduplicated
                SetQuery::new(vec![5], vec![0]),    // miss, empty answer
            ])
            .expect("in-process transport");
        assert_eq!(reply.cache_hits, 1);
        assert_eq!(reply.executed, 2, "in-batch duplicates run once");
        assert_eq!(*reply.results[0], vec![(0, 5)]);
        assert_eq!(*reply.results[1], vec![(1, 4)]);
        assert!(Arc::ptr_eq(&reply.results[1], &reply.results[2]));
        assert!(reply.results[3].is_empty());
        assert_eq!(
            reply.rounds, 3,
            "one scatter/exchange/gather for the misses"
        );
    }

    #[test]
    fn all_hit_batch_is_communication_free() {
        let service = chain_service();
        service.query(&[0], &[5]);
        let reply = service
            .query_batch(&[SetQuery::new(vec![0], vec![5])])
            .expect("in-process transport");
        assert_eq!(reply.cache_hits, 1);
        assert_eq!(reply.executed, 0);
        assert_eq!((reply.rounds, reply.messages, reply.bytes), (0, 0, 0));
    }

    #[test]
    fn submitted_tickets_fuse_into_one_round_trip() {
        let service = chain_service();
        // Two-phase submission: a single client presents concurrent work.
        let tickets: Vec<QueryTicket> = (0..4).map(|i| service.submit(&[i], &[5])).collect();
        assert!(!tickets[0].is_ready(), "cold queries queue");
        service.flush();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let pairs = ticket.wait().expect("in-process transport");
            assert_eq!(*pairs, vec![(i as VertexId, 5)]);
        }
        // All four distinct misses fused into one 3-round execution.
        assert_eq!(service.comm_stats().rounds(), 3);
        assert_eq!(service.batch_stats().executed(), 4);
        assert!(service.batch_stats().fusion_ratio() > 1.0);
        // A repeated submit resolves instantly from the cache.
        assert!(service.submit(&[0], &[5]).is_ready());
    }

    #[test]
    fn saturated_admission_queue_returns_overloaded() {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let p = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        let service = QueryService::with_config(
            Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs)),
            ServiceConfig {
                admission_depth: 2,
                max_batch: 64,
                // A forming window far longer than the test: the two
                // queued queries stay in flight until the explicit flush.
                max_wait_us: 60_000_000,
                ..ServiceConfig::default()
            },
        );
        let a = service.try_submit(&[0], &[5]).expect("first admitted");
        let b = service.try_submit(&[1], &[5]).expect("second admitted");
        let refused = service.try_submit(&[2], &[5]);
        assert!(
            matches!(
                refused,
                Err(ServiceError::Overloaded {
                    queued: 2,
                    limit: 2
                })
            ),
            "saturated queue refuses instead of deadlocking"
        );
        let err = refused.unwrap_err();
        assert!(err.to_string().contains("overloaded"));
        service.flush();
        assert_eq!(*a.wait().expect("in-process"), vec![(0, 5)]);
        assert_eq!(*b.wait().expect("in-process"), vec![(1, 5)]);
        // Completion released the admission slots.
        assert!(service.try_submit(&[2], &[5]).is_ok());
    }

    #[test]
    fn in_place_update_advances_the_chain_and_retires_the_namespace() {
        let service = chain_service();
        assert!(service.query(&[5], &[0]).is_empty());
        let outcome = service
            .update(&[UpdateOp::Insert(5, 0)], UpdateMode::InPlace)
            .expect("no pins or index clones outstanding");
        assert!(outcome.rebuilt_compounds);
        let stats = service.generation_stats();
        assert_eq!(stats.latest, 1, "a real batch advances the chain");
        assert_eq!(stats.retained, 1, "the consumed generation died with it");
        assert_eq!(stats.reclaimed, 1);
        assert_eq!(service.cache_len(), 0, "old namespace retired");
        assert_eq!(service.cache_stats().invalidations(), 1);
        assert_eq!(*service.query(&[5], &[0]), vec![(5, 0)]);
    }

    #[test]
    fn pinned_readers_refuse_in_place_updates_with_a_typed_error() {
        let service = chain_service();
        let snap = service.snapshot();
        let err = service
            .update(&[UpdateOp::Insert(5, 0)], UpdateMode::InPlace)
            .unwrap_err();
        assert!(
            matches!(
                err,
                UpdateError::PinnedReaders {
                    generation: 0,
                    pins: 1
                }
            ),
            "got {err:?}"
        );
        assert!(err.to_string().contains("pinned"));
        drop(snap);
        assert!(service
            .update(&[UpdateOp::Insert(5, 0)], UpdateMode::InPlace)
            .is_ok());
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_update_in_place_refuses_shared_index_with_explicit_error() {
        let service = chain_service();
        let pinned = service.index();
        assert!(matches!(
            service
                .update_in_place(|index| index.insert_edge(5, 0))
                .unwrap_err(),
            UpdateError::IndexShared
        ));
        // The error is a real std::error::Error with actionable text.
        let err: Box<dyn std::error::Error> = Box::new(UpdateError::IndexShared);
        assert!(err.to_string().contains("ForkAndSwap"));
        drop(pinned);
        assert!(service
            .update_in_place(|index| index.insert_edge(5, 0))
            .is_ok());
        assert_eq!(service.generation_stats().latest, 1);
    }

    #[test]
    fn fork_and_swap_serves_pinned_readers_the_old_generation() {
        let service = chain_service();
        let snap = service.snapshot();
        assert!(snap.query(&[5], &[0]).is_empty());
        let outcome = service
            .update(&[UpdateOp::Insert(5, 0)], UpdateMode::ForkAndSwap)
            .expect("fork path never refuses");
        assert!(outcome.rebuilt_compounds);
        // The pinned snapshot still answers from its frozen generation …
        assert!(snap.query(&[5], &[0]).is_empty());
        // … while fresh traffic sees the new edge.
        assert_eq!(*service.query(&[5], &[0]), vec![(5, 0)]);
        assert_eq!(service.generation_stats().retained, 2, "old gen pinned");
        drop(snap);
        let stats = service.generation_stats();
        assert_eq!(stats.retained, 1, "drop reclaimed the old generation");
        assert_eq!(stats.reclaimed, 1);
    }

    #[test]
    fn pinned_snapshot_answers_survive_an_update_batch() {
        let service = chain_service();
        let snap = service.snapshot();
        let before = snap.query(&[0], &[5]);
        assert_eq!(*before, vec![(0, 5)]);
        // Sever the chain's cut edge for fresh traffic.
        service
            .update(&[UpdateOp::Delete(2, 3)], UpdateMode::ForkAndSwap)
            .expect("fork path");
        assert!(service.query(&[0], &[5]).is_empty(), "latest is severed");
        // The pinned repeat is answered from the retained generation's own
        // namespace: identical Arc, zero communication.
        let after = snap.query(&[0], &[5]);
        assert!(Arc::ptr_eq(&before, &after), "old-namespace cache hit");
        assert_eq!(
            service.namespace_hits().pinned,
            1,
            "hit counted against the pinned namespace"
        );
    }

    #[test]
    fn auto_mode_forks_exactly_when_exclusivity_is_refused() {
        let service = chain_service();
        let snap = service.snapshot();
        service
            .update(&[UpdateOp::Insert(5, 0)], UpdateMode::Auto)
            .expect("auto forks around the pin");
        assert_eq!(snap.generation(), 0, "pinned view unmoved");
        assert_eq!(service.generation_stats().latest, 1);
        drop(snap);
        // Unpinned: auto takes the in-place path — the chain advances but
        // nothing extra is retained.
        service
            .update(&[UpdateOp::Delete(5, 0)], UpdateMode::Auto)
            .expect("in-place path");
        let stats = service.generation_stats();
        assert_eq!(stats.latest, 2);
        assert_eq!(stats.retained, 1);
    }

    #[test]
    fn query_options_pin_an_explicit_generation() {
        let service = chain_service();
        let snap = service.snapshot();
        let pinned_id = snap.generation();
        service
            .update(&[UpdateOp::Delete(2, 3)], UpdateMode::ForkAndSwap)
            .expect("fork path");
        let old = service
            .query_with(
                &[0],
                &[5],
                QueryOptions {
                    pin: Some(pinned_id),
                    ..QueryOptions::default()
                },
            )
            .expect("retained generation is queryable by id");
        assert_eq!(*old, vec![(0, 5)], "answered against the old generation");
        drop(snap);
        // The last pin dropped: the id now names a reclaimed generation.
        let err = service
            .query_with(
                &[0],
                &[5],
                QueryOptions {
                    pin: Some(pinned_id),
                    ..QueryOptions::default()
                },
            )
            .unwrap_err();
        assert!(
            matches!(err, ServiceError::GenerationReclaimed { generation } if generation == pinned_id),
            "got {err:?}"
        );
        assert!(err.to_string().contains("reclaimed"));
    }

    #[test]
    fn noop_update_batches_leave_the_cache_intact() {
        let service = chain_service();
        service.query(&[0], &[5]);
        assert_eq!(service.cache_len(), 1);
        // Re-inserting an existing edge is a full no-op: the generation
        // and its hot namespace must survive (idempotent replays cannot
        // collapse the hit rate).
        let outcome = service
            .update(&[UpdateOp::Insert(0, 1)], UpdateMode::InPlace)
            .expect("index exclusively owned");
        assert!(!outcome.rebuilt_compounds);
        assert_eq!(service.generation_stats().latest, 0, "no-op keeps the id");
        assert_eq!(service.cache_len(), 1, "no-op does not invalidate");
        assert_eq!(service.cache_stats().invalidations(), 0);
        // A real update still invalidates.
        service
            .update(&[UpdateOp::Insert(5, 0)], UpdateMode::InPlace)
            .expect("index exclusively owned");
        assert_eq!(service.cache_len(), 0);
        assert_eq!(service.cache_stats().invalidations(), 1);
    }

    #[test]
    fn noop_update_on_a_shared_index_does_not_swap_the_fork() {
        let service = chain_service();
        let pinned = service.index();
        let outcome = service
            .update(&[UpdateOp::Insert(0, 1)], UpdateMode::Auto) // duplicate: no-op
            .expect("auto falls back to the fork path");
        assert!(!outcome.rebuilt_compounds);
        assert!(
            Arc::ptr_eq(&pinned, &service.index()),
            "untouched fork is discarded, not installed"
        );
        assert_eq!(service.generation_stats().latest, 0);
    }

    #[test]
    fn update_coalesces_and_records_stats() {
        let service = chain_service();
        // Insert-then-delete of the same edge coalesces to the delete of
        // an absent edge: a full no-op, zero messages.
        let outcome = service
            .update(
                &[UpdateOp::Insert(5, 0), UpdateOp::Delete(5, 0)],
                UpdateMode::InPlace,
            )
            .expect("index exclusively owned");
        assert!(outcome.refreshed_summaries.is_empty());
        assert!(outcome.stats.is_zero());
        assert!(service.update_stats().is_zero());
        // A real cut-edge insertion ships its two deltas and accumulates.
        let outcome = service
            .update(&[UpdateOp::Insert(5, 0)], UpdateMode::InPlace)
            .expect("index exclusively owned");
        assert_eq!(outcome.refreshed_summaries, vec![0, 1]);
        let total = service.update_stats();
        assert_eq!(total.update_rounds, 1);
        assert_eq!(total.update_messages, 2, "two deltas, one peer each");
        assert!(total.update_bytes > 0);
        assert_eq!(*service.query(&[5], &[0]), vec![(5, 0)]);
    }

    #[test]
    fn install_index_swaps_and_invalidates() {
        let service = chain_service();
        assert!(service.query(&[5], &[0]).is_empty());
        // Rebuild with a back edge and install.
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let p = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        service.install_index(Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs)));
        // The unpinned generation 0 died with the install, namespace and
        // all.
        assert_eq!(service.cache_stats().invalidations(), 1);
        let stats = service.generation_stats();
        assert_eq!((stats.latest, stats.retained, stats.reclaimed), (1, 1, 1));
        assert_eq!(*service.query(&[5], &[0]), vec![(5, 0)]);
    }

    #[test]
    fn snapshot_pins_a_consistent_view_across_install() {
        let service = chain_service();
        let snap = service.snapshot();
        assert_eq!(snap.generation(), 0);
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let p = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        service.install_index(Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs)));
        // The pinned view kept the install out entirely.
        assert!(snap.query(&[5], &[0]).is_empty());
        let reply = snap
            .query_batch(&[SetQuery::new(vec![5], vec![0])])
            .expect("in-process transport");
        assert_eq!(reply.cache_hits, 1, "repeat hit the pinned namespace");
        assert_eq!(*service.query(&[5], &[0]), vec![(5, 0)]);
        drop(snap);
        assert_eq!(service.generation_stats().retained, 1);
    }

    #[test]
    fn disabled_cache_never_stores() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let p = Partitioning::new(vec![0, 0, 1], 2);
        let service = QueryService::with_config(
            Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs)),
            ServiceConfig {
                cache_capacity: 8,
                cache_enabled: false,
                ..ServiceConfig::default()
            },
        );
        service.query(&[0], &[2]);
        service.query(&[0], &[2]);
        assert_eq!(service.cache_len(), 0);
        assert_eq!(service.cache_stats().hits(), 0);
        // Both executions went through the former (no cache to resolve
        // the repeat).
        assert_eq!(service.batch_stats().executed(), 2);
    }

    #[test]
    fn wire_transport_service_agrees_with_in_process() {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let p = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        let index = Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs));
        let in_process = QueryService::new(Arc::clone(&index));
        let wired = QueryService::with_config(
            Arc::clone(&index),
            ServiceConfig {
                transport: TransportKind::Wire,
                ..ServiceConfig::default()
            },
        );
        assert_eq!(wired.transport_kind(), TransportKind::Wire);
        let queries = [
            SetQuery::new(vec![0, 1], vec![4, 5]),
            SetQuery::new(vec![5], vec![0]),
            SetQuery::new(vec![2], vec![3]),
        ];
        let a = in_process.query_batch(&queries).expect("in-process");
        let b = wired.query_batch(&queries).expect("wire");
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(**x, **y, "wire answers must be byte-identical");
        }
        // Identical protocol cost: measured wire bytes == exact sizes.
        assert_eq!(
            in_process.comm_stats().snapshot(),
            wired.comm_stats().snapshot()
        );
    }

    #[test]
    fn tcp_transport_service_agrees_with_in_process() {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let p = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        let index = Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs));
        let in_process = QueryService::new(Arc::clone(&index));
        let tcp = QueryService::with_config(
            Arc::clone(&index),
            ServiceConfig {
                transport: TransportKind::Tcp,
                ..ServiceConfig::default()
            },
        );
        assert_eq!(tcp.transport_kind(), TransportKind::Tcp);
        let queries = [
            SetQuery::new(vec![0, 1], vec![4, 5]),
            SetQuery::new(vec![5], vec![0]),
        ];
        let a = in_process.query_batch(&queries).expect("in-process");
        let b = tcp.query_batch(&queries).expect("tcp loopback cluster");
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(**x, **y, "tcp answers must be byte-identical");
        }
        assert_eq!(
            in_process.comm_stats().snapshot(),
            tcp.comm_stats().snapshot(),
            "tcp protocol cost equals the in-process accounting"
        );
        // Updates through the service ship their deltas over TCP too
        // (exclusively owned index: the in-place path).
        let g2 = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let p2 = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        let owned = QueryService::with_config(
            Arc::new(DsrIndex::build(&g2, p2, LocalIndexKind::Dfs)),
            ServiceConfig {
                transport: TransportKind::Tcp,
                ..ServiceConfig::default()
            },
        );
        let out = owned
            .update(&[UpdateOp::Insert(5, 0)], UpdateMode::InPlace)
            .expect("tcp update");
        assert!(out.rebuilt_compounds);
        assert!(owned.update_stats().update_bytes > 0);
        assert_eq!(*owned.query(&[5], &[0]), vec![(5, 0)]);
    }

    #[test]
    fn eviction_counter_moves_on_tiny_cache() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let p = Partitioning::new(vec![0, 0, 1, 1], 2);
        let service = QueryService::with_config(
            Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs)),
            ServiceConfig {
                cache_capacity: 1,
                cache_enabled: true,
                ..ServiceConfig::default()
            },
        );
        service.query(&[0], &[3]);
        service.query(&[1], &[3]);
        assert_eq!(service.cache_stats().evictions(), 1);
        assert_eq!(service.cache_len(), 1);
    }
}
