//! Concurrent, snapshot-isolated query-serving layer over a
//! [`DsrIndex`].
//!
//! The paper's evaluation (Tables 3–5) fires thousands of set-reachability
//! queries against a static index, and its central serving win is that a
//! *batched* execution costs 3 communication rounds regardless of batch
//! size. This crate turns the one-query-at-a-time engine of `dsr-core`
//! into a serving substrate that keeps that multiplier **across clients**
//! — and keeps long analytical readers consistent **across updates**:
//!
//! * [`QueryService`] serves the latest generation of a
//!   [`GenerationChain`] (the [`snapshot`] module): every
//!   [`install_index`](QueryService::install_index) and every changing
//!   [`update`](QueryService::update) batch produces a numbered immutable
//!   [`Generation`]. [`QueryService::snapshot`] pins the latest into a
//!   [`SnapshotRef`] — a consistent view (index + cache namespace) that
//!   survives concurrent updates until it drops; reclamation is
//!   refcount-exact and surfaced by [`GenerationStats`].
//! * Cache misses from all clients flow through a **batch former** (the
//!   [`batcher`] module): a dedicated scheduler thread fuses them —
//!   bounded by the [`ServiceConfig::max_wait_us`] window and the
//!   [`ServiceConfig::max_batch`] cap — into shared
//!   scatter/exchange/gather runs via
//!   [`DsrEngine::set_reachability_batch`](dsr_core::DsrEngine::set_reachability_batch),
//!   then fans the answers back out. Per-slave work runs on the
//!   process-wide persistent [`SlavePool`](dsr_cluster::SlavePool).
//! * A bounded, sharded LRU cache ([`ShardedCache`]) keyed on normalized
//!   `(sources, targets)` signatures — hashed once into a [`SigKey`] —
//!   short-circuits repeated queries without touching the scheduler. The
//!   cache is split into **per-generation namespaces**: pinned readers
//!   keep hitting their generation's entries while updates retire only
//!   the namespaces of dead generations ([`NamespaceHits`] splits the
//!   hit counters).
//! * Admission control bounds the number of in-flight queries: the
//!   fail-fast entry points ([`QueryService::try_query`] /
//!   [`QueryService::try_submit`]) return the typed
//!   [`ServiceError::Overloaded`] under saturation instead of piling up
//!   unboundedly. [`QueryOptions`] adds per-query cache bypass and
//!   explicit generation pinning.
//! * Index updates flow through [`QueryService::update`] under an
//!   explicit [`UpdateMode`] — the differential pipeline of Section
//!   3.3.3: back-to-back batches are coalesced, only affected partitions
//!   refresh, and the summary deltas ship through the service's
//!   transport (cost surfaced by [`QueryService::update_stats`]). A
//!   refused in-place update fails typed
//!   ([`UpdateError::PinnedReaders`] / [`UpdateError::IndexShared`]);
//!   [`UpdateMode::ForkAndSwap`] and [`UpdateMode::Auto`] fork around
//!   the readers instead.
//! * Analytical tenants plug in behind the [`Workload`] trait: a named
//!   unit of work that runs entirely against one pinned [`SnapshotRef`]
//!   and reports a checksummed [`WorkloadRun`] — the `dsr-rdf` path
//!   resolver and the `dsr-community` detector are the two in-tree
//!   implementations.
//!
//! # Quick start
//!
//! ```
//! use dsr_sync::Arc;
//! use dsr_core::{DsrIndex, SetQuery, UpdateOp};
//! use dsr_graph::DiGraph;
//! use dsr_partition::{Partitioner, HashPartitioner};
//! use dsr_reach::LocalIndexKind;
//! use dsr_service::{QueryService, UpdateMode};
//!
//! let graph = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
//! let partitioning = HashPartitioner::default().partition(&graph, 2);
//! let index = DsrIndex::build(&graph, partitioning, LocalIndexKind::Dfs);
//! let service = QueryService::new(Arc::new(index));
//!
//! // Single queries (cached) …
//! assert_eq!(*service.query(&[0], &[5]), vec![(0, 5)]);
//!
//! // … batches: 3 communication rounds for the whole batch …
//! let reply = service.query_batch(&[
//!     SetQuery::new(vec![0], vec![3]),
//!     SetQuery::new(vec![1], vec![4, 5]),
//! ]).expect("in-process transport never fails");
//! assert!(reply.rounds <= 3);
//!
//! // … and snapshot isolation: a pinned reader's view survives updates.
//! let snap = service.snapshot();
//! service.update(&[UpdateOp::Delete(2, 3)], UpdateMode::Auto).unwrap();
//! assert_eq!(*snap.query(&[0], &[5]), vec![(0, 5)]); // old generation
//! assert!(service.query(&[0], &[5]).is_empty());     // latest generation
//! ```
//!
//! [`DsrIndex`]: dsr_core::DsrIndex

#![forbid(unsafe_code)]

pub mod batcher;
pub mod cache;
pub mod service;
pub mod snapshot;
pub mod workload;

pub use batcher::{RoundCost, ServiceError};
pub use cache::{CachedPairs, InsertOutcome, QueryCache, QueryKey, ShardedCache, SigKey};
pub use service::{
    BatchReply, GenerationStats, NamespaceHits, QueryOptions, QueryService, QueryTicket,
    ServiceConfig, SnapshotRef, UpdateError, UpdateMode,
};
pub use snapshot::{Generation, GenerationChain, GenerationId};
pub use workload::{checksum_pairs, Workload, WorkloadRun};
