//! Concurrent query-serving layer over a [`DsrIndex`].
//!
//! The paper's evaluation (Tables 3–5) fires thousands of set-reachability
//! queries against a static index, and its central serving win is that a
//! *batched* execution costs 3 communication rounds regardless of batch
//! size. This crate turns the one-query-at-a-time engine of `dsr-core`
//! into a serving substrate that keeps that multiplier **across clients**:
//!
//! * [`QueryService`] owns a snapshot of the index and answers queries
//!   from any number of client threads concurrently. Cache misses from all
//!   clients flow through a **batch former** (the [`batcher`] module): a
//!   dedicated scheduler thread fuses them — bounded by the
//!   [`ServiceConfig::max_wait_us`] window and the
//!   [`ServiceConfig::max_batch`] cap — into shared
//!   scatter/exchange/gather runs via
//!   [`DsrEngine::set_reachability_batch`](dsr_core::DsrEngine::set_reachability_batch),
//!   then fans the answers back out. Per-slave work runs on the
//!   process-wide persistent [`SlavePool`](dsr_cluster::SlavePool).
//! * A bounded, sharded LRU cache ([`ShardedCache`]) keyed on normalized
//!   `(sources, targets)` signatures — hashed once into a [`SigKey`] and
//!   reused for shard selection, lookup and insert — short-circuits
//!   repeated queries without ever touching the scheduler;
//!   hit/miss/eviction counters are surfaced through
//!   [`CacheStats`](dsr_cluster::CacheStats) and fusion effectiveness
//!   through [`BatchStats`](dsr_cluster::BatchStats)
//!   ([`QueryService::batch_stats`]).
//! * Admission control bounds the number of in-flight queries: the
//!   fail-fast entry points ([`QueryService::try_query`] /
//!   [`QueryService::try_submit`]) return the typed
//!   [`ServiceError::Overloaded`] under saturation instead of piling up
//!   unboundedly.
//! * Index updates flow through [`QueryService::apply_updates`] — the
//!   differential pipeline of Section 3.3.3: back-to-back batches are
//!   coalesced, only affected partitions refresh, and the summary deltas
//!   ship through the service's transport (cost surfaced by
//!   [`QueryService::update_stats`]) — or through the lower-level
//!   [`QueryService::update_in_place`] / [`QueryService::install_index`]
//!   (offline rebuild + swap, stall-free for readers thanks to the
//!   [`snapshot`] holder). All of them invalidate the cache
//!   generation-correctly; a shared index either fails with the explicit
//!   [`UpdateError::IndexShared`] or, with
//!   [`ServiceConfig::clone_on_write`], forks and swaps.
//!   [`QueryService::query_uncached`] bypasses cache and batcher entirely
//!   for read-your-writes checks.
//!
//! # Quick start
//!
//! ```
//! use dsr_sync::Arc;
//! use dsr_core::{DsrIndex, SetQuery};
//! use dsr_graph::DiGraph;
//! use dsr_partition::{Partitioner, HashPartitioner};
//! use dsr_reach::LocalIndexKind;
//! use dsr_service::QueryService;
//!
//! let graph = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
//! let partitioning = HashPartitioner::default().partition(&graph, 2);
//! let index = DsrIndex::build(&graph, partitioning, LocalIndexKind::Dfs);
//! let service = QueryService::new(Arc::new(index));
//!
//! // Single queries (cached) …
//! assert_eq!(*service.query(&[0], &[5]), vec![(0, 5)]);
//! assert_eq!(service.cache_stats().hits() + service.cache_stats().misses(), 1);
//!
//! // … and batches: 3 communication rounds for the whole batch. The
//! // Result carries a typed ServiceError when a (TCP) worker fails;
//! // the in-process default never does.
//! let reply = service.query_batch(&[
//!     SetQuery::new(vec![0], vec![3]),
//!     SetQuery::new(vec![1], vec![4, 5]),
//! ]).expect("in-process transport never fails");
//! assert!(reply.rounds <= 3);
//!
//! // Two-phase submission fuses a single client's concurrent work:
//! let tickets: Vec<_> = (0..3).map(|i| service.submit(&[i], &[5])).collect();
//! service.flush();
//! for ticket in tickets {
//!     ticket.wait().expect("in-process transport never fails");
//! }
//! ```
//!
//! [`DsrIndex`]: dsr_core::DsrIndex

#![forbid(unsafe_code)]

pub mod batcher;
pub mod cache;
pub mod service;
pub mod snapshot;

pub use batcher::{RoundCost, ServiceError};
pub use cache::{CachedPairs, InsertOutcome, QueryCache, QueryKey, ShardedCache, SigKey};
pub use service::{BatchReply, QueryService, QueryTicket, ServiceConfig, UpdateError};
pub use snapshot::SnapshotHolder;
