//! Concurrent query-serving layer over a [`DsrIndex`].
//!
//! The paper's evaluation (Tables 3–5) fires thousands of set-reachability
//! queries against a static index. This crate turns the one-query-at-a-time
//! engine of `dsr-core` into a serving substrate:
//!
//! * [`QueryService`] owns an `Arc<DsrIndex>` and answers queries from any
//!   number of client threads concurrently. Per-slave work runs on the
//!   process-wide persistent [`SlavePool`](dsr_cluster::SlavePool) (long-
//!   lived workers fed via a job queue), so a query costs queue pushes
//!   rather than thread spawns.
//! * [`QueryService::query_batch`] executes a whole batch of queries with a
//!   **single** scatter/exchange/gather sequence (3 communication rounds
//!   total instead of 3 per query) via
//!   [`DsrEngine::set_reachability_batch`](dsr_core::DsrEngine::set_reachability_batch).
//! * A bounded LRU [`QueryCache`] keyed on normalized `(sources, targets)`
//!   signatures short-circuits repeated queries; hit/miss/eviction counters
//!   are surfaced through [`CacheStats`](dsr_cluster::CacheStats).
//! * Index updates flow through [`QueryService::apply_updates`] — the
//!   differential pipeline of Section 3.3.3: back-to-back batches are
//!   coalesced, only affected partitions refresh, and the summary deltas
//!   ship through the service's transport (cost surfaced by
//!   [`QueryService::update_stats`]) — or through the lower-level
//!   [`QueryService::update_in_place`] / [`QueryService::install_index`]
//!   (offline rebuild + swap). All of them invalidate the cache
//!   generation-correctly; a shared index either fails with the explicit
//!   [`UpdateError::IndexShared`] or, with
//!   [`ServiceConfig::clone_on_write`], forks and swaps.
//!   [`QueryService::query_uncached`] bypasses the cache entirely for
//!   read-your-writes checks.
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use dsr_core::{DsrIndex, SetQuery};
//! use dsr_graph::DiGraph;
//! use dsr_partition::{Partitioner, HashPartitioner};
//! use dsr_reach::LocalIndexKind;
//! use dsr_service::QueryService;
//!
//! let graph = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
//! let partitioning = HashPartitioner::default().partition(&graph, 2);
//! let index = DsrIndex::build(&graph, partitioning, LocalIndexKind::Dfs);
//! let service = QueryService::new(Arc::new(index));
//!
//! // Single queries (cached) …
//! assert_eq!(*service.query(&[0], &[5]), vec![(0, 5)]);
//! assert_eq!(service.cache_stats().hits() + service.cache_stats().misses(), 1);
//!
//! // … and batches: 3 communication rounds for the whole batch. The
//! // Result carries a typed TransportError when a (TCP) worker fails;
//! // the in-process default never does.
//! let reply = service.query_batch(&[
//!     SetQuery::new(vec![0], vec![3]),
//!     SetQuery::new(vec![1], vec![4, 5]),
//! ]).expect("in-process transport never fails");
//! assert!(reply.rounds <= 3);
//! ```
//!
//! [`DsrIndex`]: dsr_core::DsrIndex

pub mod cache;
pub mod service;

pub use cache::{CachedPairs, QueryCache, QueryKey};
pub use service::{BatchReply, QueryService, ServiceConfig, UpdateError};
