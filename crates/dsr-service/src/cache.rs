//! Bounded LRU cache for query results.
//!
//! Keys are normalized query signatures ([`SetQuery::signature`]): both
//! vertex sets sorted and deduplicated, so `S = [3, 1, 3]` and `S = [1, 3]`
//! share an entry. Values are `Arc`-shared pair lists, so a hit never copies
//! the (potentially large) answer.
//!
//! [`SetQuery::signature`]: dsr_core::SetQuery::signature

use std::collections::HashMap;
use std::sync::Arc;

use dsr_graph::VertexId;

/// Normalized `(sources, targets)` cache key.
pub type QueryKey = (Vec<VertexId>, Vec<VertexId>);

/// Shared, immutable answer to a set-reachability query.
pub type CachedPairs = Arc<Vec<(VertexId, VertexId)>>;

struct CacheEntry {
    value: CachedPairs,
    /// Logical timestamp of the last hit or insertion; the entry with the
    /// smallest timestamp is the least recently used.
    last_used: u64,
}

/// A bounded LRU map from query signatures to query answers.
///
/// Lookups and insertions are `O(1)` (hash map); evictions scan for the
/// minimal timestamp, which is `O(capacity)` but only runs when the cache
/// is full — serving-layer capacities are small enough (thousands) that the
/// scan is cheaper than maintaining an intrusive list, and the whole
/// structure stays obviously correct under the service's mutex.
pub struct QueryCache {
    capacity: usize,
    entries: HashMap<QueryKey, CacheEntry>,
    tick: u64,
    /// Bumped on every invalidation; the service uses it to discard results
    /// computed against an index that was swapped out mid-flight.
    generation: u64,
}

impl std::fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryCache")
            .field("capacity", &self.capacity)
            .field("len", &self.entries.len())
            .field("generation", &self.generation)
            .finish()
    }
}

impl QueryCache {
    /// Creates an empty cache holding at most `capacity` entries (at least
    /// one).
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            tick: 0,
            generation: 0,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current invalidation generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Looks up a signature, marking the entry as most recently used.
    pub fn get(&mut self, key: &QueryKey) -> Option<CachedPairs> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|entry| {
            entry.last_used = tick;
            Arc::clone(&entry.value)
        })
    }

    /// Inserts (or refreshes) an entry, evicting the least recently used
    /// one if the cache is full. Returns `true` if an eviction happened.
    pub fn insert(&mut self, key: QueryKey, value: CachedPairs) -> bool {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.value = value;
            entry.last_used = tick;
            return false;
        }
        let mut evicted = false;
        if self.entries.len() >= self.capacity {
            if let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| key.clone())
            {
                self.entries.remove(&lru);
                evicted = true;
            }
        }
        self.entries.insert(
            key,
            CacheEntry {
                value,
                last_used: tick,
            },
        );
        evicted
    }

    /// Drops every entry and bumps the generation (index swap / update).
    pub fn invalidate(&mut self) {
        self.entries.clear();
        self.generation += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &[u32], t: &[u32]) -> QueryKey {
        (s.to_vec(), t.to_vec())
    }

    fn pairs(p: &[(u32, u32)]) -> CachedPairs {
        Arc::new(p.to_vec())
    }

    #[test]
    fn hit_and_miss() {
        let mut cache = QueryCache::new(4);
        assert!(cache.get(&key(&[1], &[2])).is_none());
        cache.insert(key(&[1], &[2]), pairs(&[(1, 2)]));
        assert_eq!(*cache.get(&key(&[1], &[2])).unwrap(), vec![(1, 2)]);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = QueryCache::new(2);
        cache.insert(key(&[1], &[1]), pairs(&[]));
        cache.insert(key(&[2], &[2]), pairs(&[]));
        // Touch [1] so [2] becomes the LRU entry.
        assert!(cache.get(&key(&[1], &[1])).is_some());
        let evicted = cache.insert(key(&[3], &[3]), pairs(&[]));
        assert!(evicted);
        assert!(cache.get(&key(&[2], &[2])).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(&[1], &[1])).is_some());
        assert!(cache.get(&key(&[3], &[3])).is_some());
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut cache = QueryCache::new(1);
        cache.insert(key(&[1], &[1]), pairs(&[]));
        let evicted = cache.insert(key(&[1], &[1]), pairs(&[(1, 1)]));
        assert!(!evicted);
        assert_eq!(*cache.get(&key(&[1], &[1])).unwrap(), vec![(1, 1)]);
    }

    #[test]
    fn invalidate_clears_and_bumps_generation() {
        let mut cache = QueryCache::new(4);
        cache.insert(key(&[1], &[1]), pairs(&[]));
        let before = cache.generation();
        cache.invalidate();
        assert!(cache.is_empty());
        assert_eq!(cache.generation(), before + 1);
        assert!(cache.get(&key(&[1], &[1])).is_none());
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let cache = QueryCache::new(0);
        assert_eq!(cache.capacity(), 1);
    }
}
