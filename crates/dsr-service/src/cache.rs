//! Sharded, bounded LRU cache with per-generation namespaces.
//!
//! Keys are normalized query signatures ([`SetQuery::signature`]): both
//! vertex sets sorted and deduplicated, so `S = [3, 1, 3]` and `S = [1, 3]`
//! share an entry. The signature is hashed **once** into a [`SigKey`] and
//! that hash is reused for shard selection, the hash-map lookup and the
//! insert — the per-lookup re-hashing of two vertex vectors that the old
//! single-map cache paid three times over is gone.
//!
//! Every entry lives in the **namespace** of the index generation it was
//! computed against (see [`GenerationChain`](crate::GenerationChain)). The
//! same signature cached under generations 3 and 4 is two independent
//! entries: pinned readers of generation 3 keep hitting their namespace
//! while fresh traffic fills generation 4's. When a generation is
//! reclaimed its namespace is [retired](ShardedCache::retire) — entries
//! are purged and late inserts refused — so an update batch no longer
//! clears the whole cache (the old bump-and-clear cliff); it only retires
//! the namespaces that actually died.
//!
//! The cache itself ([`ShardedCache`]) is split into independently locked
//! shards selected by the namespace-mixed signature hash, so concurrent
//! clients hitting different shards never contend — cache hits bypass the
//! batch-forming scheduler entirely and scale with the client count.
//! Values are `Arc`-shared pair lists, so a hit never copies the
//! (potentially large) answer.
//!
//! [`SetQuery::signature`]: dsr_core::SetQuery::signature

use dsr_sync::atomic::{AtomicU64, Ordering};
use dsr_sync::{Arc, Mutex};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, DefaultHasher, Hash, Hasher};

use crate::snapshot::GenerationId;
use dsr_core::SetQuery;
use dsr_graph::VertexId;

/// Normalized `(sources, targets)` signature underlying a [`SigKey`].
pub type QueryKey = (Vec<VertexId>, Vec<VertexId>);

/// Shared, immutable answer to a set-reachability query.
pub type CachedPairs = Arc<Vec<(VertexId, VertexId)>>;

/// A normalized query signature with its hash precomputed exactly once.
///
/// The hash is reused across shard selection, cache lookup and cache
/// insert; equality still compares the full signature, so hash collisions
/// are correct (they merely share a shard and a hash bucket).
#[derive(Debug, Clone)]
pub struct SigKey {
    hash: u64,
    sources: Vec<VertexId>,
    targets: Vec<VertexId>,
}

impl SigKey {
    /// Builds the key from an already-normalized signature (both sides
    /// sorted and deduplicated, as produced by [`SetQuery::signature`]).
    pub fn from_signature((sources, targets): QueryKey) -> Self {
        let mut hasher = DefaultHasher::new();
        sources.hash(&mut hasher);
        targets.hash(&mut hasher);
        SigKey {
            hash: hasher.finish(),
            sources,
            targets,
        }
    }

    /// Normalizes `sources ; targets` and builds the key.
    pub fn new(sources: &[VertexId], targets: &[VertexId]) -> Self {
        Self::from_signature(SetQuery::new(sources.to_vec(), targets.to_vec()).signature())
    }

    /// Builds the key from a query.
    pub fn from_query(query: &SetQuery) -> Self {
        Self::from_signature(query.signature())
    }

    /// The precomputed signature hash.
    pub fn hash_value(&self) -> u64 {
        self.hash
    }

    /// Normalized source set.
    pub fn sources(&self) -> &[VertexId] {
        &self.sources
    }

    /// Normalized target set.
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Rebuilds a [`SetQuery`] over the normalized sets (what the fused
    /// execution actually evaluates).
    pub fn to_query(&self) -> SetQuery {
        SetQuery::new(self.sources.clone(), self.targets.clone())
    }
}

impl PartialEq for SigKey {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.sources == other.sources && self.targets == other.targets
    }
}

impl Eq for SigKey {}

impl Hash for SigKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // The signature was hashed at construction; feed only the cached
        // value so map operations never re-walk the vertex vectors.
        state.write_u64(self.hash);
    }
}

/// Pass-through hasher for maps keyed by prehashed keys: the key's `Hash`
/// impl writes a single precomputed `u64`, which this hasher returns
/// as-is.
#[derive(Debug, Default, Clone, Copy)]
pub struct PrehashedHasher(u64);

impl Hasher for PrehashedHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("prehashed keys only write u64s");
    }

    fn write_u64(&mut self, value: u64) {
        self.0 = value;
    }
}

/// Mixes a generation id into a signature hash so the same signature lands
/// in distinct buckets (and possibly distinct shards) per namespace.
/// Namespace 0 keeps the raw signature hash.
fn namespaced_hash(namespace: GenerationId, key: &SigKey) -> u64 {
    key.hash_value() ^ namespace.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A [`SigKey`] qualified by the cache namespace (= index generation) it
/// was computed against. Internal to the cache: callers pass the
/// `(namespace, SigKey)` pair and the cache builds this.
#[derive(Debug, Clone)]
struct NsKey {
    hash: u64,
    namespace: GenerationId,
    sig: SigKey,
}

impl NsKey {
    fn new(namespace: GenerationId, sig: SigKey) -> Self {
        NsKey {
            hash: namespaced_hash(namespace, &sig),
            namespace,
            sig,
        }
    }
}

impl PartialEq for NsKey {
    fn eq(&self, other: &Self) -> bool {
        self.namespace == other.namespace && self.sig == other.sig
    }
}

impl Eq for NsKey {}

impl Hash for NsKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

type PrehashedMap<V> = HashMap<NsKey, V, BuildHasherDefault<PrehashedHasher>>;

struct CacheEntry {
    value: CachedPairs,
    /// Logical timestamp of the last hit or insertion; the entry with the
    /// smallest timestamp is the least recently used.
    last_used: u64,
}

/// One bounded LRU shard mapping namespaced query signatures to query
/// answers.
///
/// Lookups and insertions are `O(1)` (hash map over the precomputed
/// namespace-mixed signature hash); evictions scan for the minimal
/// timestamp, which is `O(shard capacity)` but only runs when the shard is
/// full — per-shard capacities are small enough (dozens to hundreds) that
/// the scan is cheaper than maintaining an intrusive list, and the whole
/// structure stays obviously correct under its shard mutex. The LRU
/// competition is shared across namespaces: a hot pinned reader keeps its
/// old-generation entries alive, a cold one lets them age out.
pub struct QueryCache {
    capacity: usize,
    entries: PrehashedMap<CacheEntry>,
    tick: u64,
}

impl std::fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryCache")
            .field("capacity", &self.capacity)
            .field("len", &self.entries.len())
            .finish()
    }
}

impl QueryCache {
    /// Creates an empty shard holding at most `capacity` entries (at least
    /// one).
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            capacity: capacity.max(1),
            entries: PrehashedMap::default(),
            tick: 0,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the shard is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a signature in `namespace`, marking the entry as most
    /// recently used.
    pub fn get(&mut self, namespace: GenerationId, key: &SigKey) -> Option<CachedPairs> {
        self.tick += 1;
        let tick = self.tick;
        let key = NsKey::new(namespace, key.clone());
        self.entries.get_mut(&key).map(|entry| {
            entry.last_used = tick;
            Arc::clone(&entry.value)
        })
    }

    /// Inserts (or refreshes) an entry in `namespace`, evicting the least
    /// recently used one (from any namespace) if the shard is full.
    /// Returns `true` if an eviction happened.
    pub fn insert(&mut self, namespace: GenerationId, key: SigKey, value: CachedPairs) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let key = NsKey::new(namespace, key);
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.value = value;
            entry.last_used = tick;
            return false;
        }
        let mut evicted = false;
        if self.entries.len() >= self.capacity {
            if let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| key.clone())
            {
                self.entries.remove(&lru);
                evicted = true;
            }
        }
        self.entries.insert(
            key,
            CacheEntry {
                value,
                last_used: tick,
            },
        );
        evicted
    }

    /// Drops every entry of `namespace`, returning how many were purged.
    pub fn purge(&mut self, namespace: GenerationId) -> usize {
        let before = self.entries.len();
        self.entries.retain(|key, _| key.namespace != namespace);
        before - self.entries.len()
    }

    /// Number of entries currently held for `namespace`.
    pub fn namespace_len(&self, namespace: GenerationId) -> usize {
        self.entries
            .keys()
            .filter(|key| key.namespace == namespace)
            .count()
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Outcome of a liveness-checked insert into the [`ShardedCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The entry was stored; `evicted` reports whether it displaced an LRU
    /// entry.
    Inserted {
        /// Whether an LRU entry was evicted to make room.
        evicted: bool,
    },
    /// The namespace was retired while the result was being computed (its
    /// generation was reclaimed, so the entry could never be read again —
    /// or worse, be read as stale if the id were ever reused) — nothing
    /// was stored.
    Stale,
}

/// The serving layer's result cache: `N` independently locked
/// [`QueryCache`] shards selected by the namespace-mixed signature hash,
/// plus the registry of **live namespaces** that couples the cache to the
/// generation chain.
///
/// A namespace is [opened](ShardedCache::open) when its generation is
/// created and [retired](ShardedCache::retire) when the generation is
/// reclaimed; inserts re-check liveness under the shard lock so a result
/// computed against a dying generation can never outlive it. Shard count
/// is clamped so each shard keeps a meaningful LRU capacity (at least
/// [`ShardedCache::MIN_SHARD_CAPACITY`] entries): tiny caches collapse to
/// a single shard and retain exact global LRU semantics.
pub struct ShardedCache {
    shards: Box<[Mutex<QueryCache>]>,
    /// Namespaces currently accepting inserts: exactly the generations the
    /// chain has created and not yet reclaimed. Small (retained
    /// generations), scanned under its own lock.
    live: Mutex<Vec<GenerationId>>,
    /// Total namespaces retired over the cache's lifetime — the
    /// per-generation successor of the old whole-cache invalidation
    /// counter.
    retirements: AtomicU64,
    capacity: usize,
}

impl std::fmt::Debug for ShardedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("live", &self.live_namespaces())
            .field("retirements", &self.retirements())
            .finish()
    }
}

impl ShardedCache {
    /// Minimum per-shard capacity: below this, splitting an LRU into
    /// shards distorts eviction behavior more than the lock splitting is
    /// worth, so the shard count is reduced instead.
    pub const MIN_SHARD_CAPACITY: usize = 16;

    /// Creates a cache holding at most `capacity` entries total (at least
    /// one), split over at most `shards` shards. Namespace `0` — the
    /// generation every [`GenerationChain`](crate::GenerationChain) starts
    /// from — is pre-opened.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = shards.clamp(1, (capacity / Self::MIN_SHARD_CAPACITY).max(1));
        let base = capacity / shards;
        let remainder = capacity % shards;
        let shards: Vec<Mutex<QueryCache>> = (0..shards)
            .map(|i| Mutex::new(QueryCache::new(base + usize::from(i < remainder))))
            .collect();
        ShardedCache {
            shards: shards.into_boxed_slice(),
            live: Mutex::new(vec![0]),
            retirements: AtomicU64::new(0),
            capacity,
        }
    }

    /// Number of shards actually in use.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total number of cached entries (sums the shards; approximate under
    /// concurrent mutation).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| dsr_sync::lock(shard).len())
            .sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Namespaces currently accepting inserts, in open order.
    pub fn live_namespaces(&self) -> Vec<GenerationId> {
        dsr_sync::lock(&self.live).clone()
    }

    /// Total namespaces retired over the cache's lifetime.
    pub fn retirements(&self) -> u64 {
        self.retirements.load(Ordering::SeqCst)
    }

    /// Number of entries currently cached under `namespace` (sums the
    /// shards; approximate under concurrent mutation).
    pub fn namespace_len(&self, namespace: GenerationId) -> usize {
        self.shards
            .iter()
            .map(|shard| dsr_sync::lock(shard).namespace_len(namespace))
            .sum()
    }

    fn shard(&self, namespace: GenerationId, key: &SigKey) -> &Mutex<QueryCache> {
        // The map buckets use the low hash bits; pick the shard from the
        // high bits so shard choice and in-shard placement stay
        // independent.
        let index = (namespaced_hash(namespace, key) >> 32) as usize % self.shards.len();
        &self.shards[index]
    }

    fn is_live(&self, namespace: GenerationId) -> bool {
        dsr_sync::lock(&self.live).contains(&namespace)
    }

    /// Opens the namespace of a freshly created generation. Idempotent.
    pub fn open(&self, namespace: GenerationId) {
        let mut live = dsr_sync::lock(&self.live);
        if !live.contains(&namespace) {
            live.push(namespace);
        }
    }

    /// Looks up a signature in `namespace`'s shard, marking the entry as
    /// most recently used.
    pub fn get(&self, namespace: GenerationId, key: &SigKey) -> Option<CachedPairs> {
        dsr_sync::lock(self.shard(namespace, key)).get(namespace, key)
    }

    /// Inserts a computed result into `namespace` unless the namespace was
    /// retired while the result was being computed.
    pub fn insert_if_live(
        &self,
        namespace: GenerationId,
        key: SigKey,
        value: CachedPairs,
    ) -> InsertOutcome {
        let mut shard = dsr_sync::lock(self.shard(namespace, &key));
        // Re-check under the shard lock: `retire` removes the namespace
        // from the live set *before* purging the shards, so either this
        // check fails or the subsequent purge removes the entry — an
        // orphaned answer can never survive. The `mutation_enabled` guard
        // seeds the bug the model suite must catch
        // (`model_mutation_cache_generation_detected`); it is a const
        // `false` in normal builds.
        if !dsr_sync::model::mutation_enabled(
            dsr_sync::model::MUTATION_CACHE_SKIP_GENERATION_RECHECK,
        ) && !self.is_live(namespace)
        {
            return InsertOutcome::Stale;
        }
        InsertOutcome::Inserted {
            evicted: shard.insert(namespace, key, value),
        }
    }

    /// Retires a namespace: its generation was reclaimed, so its entries
    /// are purged and late inserts refused. Returns how many entries were
    /// purged; idempotent (a second retire is a no-op and does not bump
    /// the retirement counter).
    pub fn retire(&self, namespace: GenerationId) -> usize {
        {
            let mut live = dsr_sync::lock(&self.live);
            let Some(position) = live.iter().position(|ns| *ns == namespace) else {
                return 0;
            };
            live.remove(position);
        }
        self.retirements.fetch_add(1, Ordering::SeqCst);
        self.shards
            .iter()
            .map(|shard| dsr_sync::lock(shard).purge(namespace))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &[u32], t: &[u32]) -> SigKey {
        SigKey::new(s, t)
    }

    fn pairs(p: &[(u32, u32)]) -> CachedPairs {
        Arc::new(p.to_vec())
    }

    #[test]
    fn sig_key_normalizes_and_hashes_once() {
        let a = key(&[3, 1, 3], &[5, 2]);
        let b = key(&[1, 3], &[2, 5, 5]);
        assert_eq!(a, b, "normalized signatures unify");
        assert_eq!(a.hash_value(), b.hash_value());
        assert_eq!(a.sources(), &[1, 3]);
        assert_eq!(a.targets(), &[2, 5]);
        assert_ne!(a, key(&[1, 3], &[2, 6]));
    }

    #[test]
    fn hit_and_miss() {
        let mut cache = QueryCache::new(4);
        assert!(cache.get(0, &key(&[1], &[2])).is_none());
        cache.insert(0, key(&[1], &[2]), pairs(&[(1, 2)]));
        assert_eq!(*cache.get(0, &key(&[1], &[2])).unwrap(), vec![(1, 2)]);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn namespaces_isolate_identical_signatures() {
        let mut cache = QueryCache::new(4);
        cache.insert(3, key(&[1], &[2]), pairs(&[(1, 2)]));
        cache.insert(4, key(&[1], &[2]), pairs(&[]));
        assert_eq!(
            *cache.get(3, &key(&[1], &[2])).unwrap(),
            vec![(1, 2)],
            "old namespace keeps the old answer"
        );
        assert!(cache.get(4, &key(&[1], &[2])).unwrap().is_empty());
        assert!(cache.get(5, &key(&[1], &[2])).is_none());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.namespace_len(3), 1);
        assert_eq!(cache.purge(3), 1);
        assert!(cache.get(3, &key(&[1], &[2])).is_none());
        assert!(cache.get(4, &key(&[1], &[2])).is_some());
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = QueryCache::new(2);
        cache.insert(0, key(&[1], &[1]), pairs(&[]));
        cache.insert(0, key(&[2], &[2]), pairs(&[]));
        // Touch [1] so [2] becomes the LRU entry.
        assert!(cache.get(0, &key(&[1], &[1])).is_some());
        let evicted = cache.insert(0, key(&[3], &[3]), pairs(&[]));
        assert!(evicted);
        assert!(
            cache.get(0, &key(&[2], &[2])).is_none(),
            "LRU entry evicted"
        );
        assert!(cache.get(0, &key(&[1], &[1])).is_some());
        assert!(cache.get(0, &key(&[3], &[3])).is_some());
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut cache = QueryCache::new(1);
        cache.insert(0, key(&[1], &[1]), pairs(&[]));
        let evicted = cache.insert(0, key(&[1], &[1]), pairs(&[(1, 1)]));
        assert!(!evicted);
        assert_eq!(*cache.get(0, &key(&[1], &[1])).unwrap(), vec![(1, 1)]);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let cache = QueryCache::new(0);
        assert_eq!(cache.capacity(), 1);
    }

    #[test]
    fn sharded_cache_round_trips_across_shards() {
        let cache = ShardedCache::new(1024, 8);
        assert_eq!(cache.num_shards(), 8);
        for i in 0..256u32 {
            let k = key(&[i], &[i + 1]);
            assert!(cache.get(0, &k).is_none());
            assert_eq!(
                cache.insert_if_live(0, k.clone(), pairs(&[(i, i + 1)])),
                InsertOutcome::Inserted { evicted: false }
            );
            assert_eq!(*cache.get(0, &k).unwrap(), vec![(i, i + 1)]);
        }
        assert_eq!(cache.len(), 256);
    }

    #[test]
    fn tiny_cache_collapses_to_one_shard_with_exact_lru() {
        let cache = ShardedCache::new(2, 8);
        assert_eq!(cache.num_shards(), 1, "tiny cache keeps exact LRU");
        assert_eq!(cache.capacity(), 2);
        cache.insert_if_live(0, key(&[1], &[1]), pairs(&[]));
        cache.insert_if_live(0, key(&[2], &[2]), pairs(&[]));
        assert!(cache.get(0, &key(&[1], &[1])).is_some());
        assert_eq!(
            cache.insert_if_live(0, key(&[3], &[3]), pairs(&[])),
            InsertOutcome::Inserted { evicted: true }
        );
        assert!(
            cache.get(0, &key(&[2], &[2])).is_none(),
            "LRU entry evicted"
        );
        assert!(cache.len() <= 2);
    }

    /// Model checks of the namespace-retirement protocol. Under
    /// `--cfg dsr_model` these explore every interleaving within the
    /// preemption bound; in normal builds they run a single execution.
    mod model_protocol {
        use super::*;
        use dsr_sync::model::{self, Model};

        /// An insert computed against a generation racing that
        /// generation's retirement must never leave an orphaned entry
        /// behind: either the liveness recheck under the shard lock
        /// refuses it, or the retirement's purge removes it. One shard
        /// keeps the schedule space tight; the protocol is per-shard so
        /// this loses nothing.
        fn stale_insert_never_survives() {
            let cache = Arc::new(ShardedCache::new(8, 1));
            let inserter = {
                let cache = Arc::clone(&cache);
                dsr_sync::thread::spawn(move || {
                    cache.insert_if_live(0, key(&[1], &[2]), pairs(&[(1, 2)]));
                })
            };
            cache.retire(0);
            inserter.join().unwrap();
            assert!(
                cache.get(0, &key(&[1], &[2])).is_none(),
                "stale entry survived retirement"
            );
        }

        #[test]
        fn model_insert_racing_retire_never_leaves_stale_entry() {
            Model::new()
                .check(stale_insert_never_survives)
                .expect("liveness recheck must hold in every schedule");
        }

        /// Seeded mutation: dropping the under-lock liveness recheck lets
        /// an insert land *after* the retirement's purge — the checker
        /// must find that interleaving.
        #[test]
        fn model_mutation_cache_generation_detected() {
            if !model::is_model_build() {
                return;
            }
            let failure = Model::new()
                .mutation(model::MUTATION_CACHE_SKIP_GENERATION_RECHECK)
                .check(stale_insert_never_survives)
                .expect_err("skipping the recheck must leak a stale entry");
            assert!(
                failure.message.contains("stale entry survived"),
                "{failure}"
            );
        }
    }

    #[test]
    fn retire_purges_the_namespace_and_rejects_late_inserts() {
        let cache = ShardedCache::new(1024, 4);
        cache.open(1);
        cache.insert_if_live(0, key(&[1], &[1]), pairs(&[]));
        cache.insert_if_live(1, key(&[1], &[1]), pairs(&[(1, 1)]));
        assert_eq!(cache.retire(0), 1);
        assert_eq!(cache.retirements(), 1);
        assert_eq!(cache.live_namespaces(), vec![1]);
        assert!(cache.get(0, &key(&[1], &[1])).is_none());
        // The surviving namespace is untouched — no bump-and-clear cliff.
        assert_eq!(*cache.get(1, &key(&[1], &[1])).unwrap(), vec![(1, 1)]);
        // A result computed against the reclaimed generation is refused.
        assert_eq!(
            cache.insert_if_live(0, key(&[2], &[2]), pairs(&[])),
            InsertOutcome::Stale
        );
        assert!(cache.get(0, &key(&[2], &[2])).is_none());
        // Retiring again is a no-op.
        assert_eq!(cache.retire(0), 0);
        assert_eq!(cache.retirements(), 1);
        // The live namespace inserts normally.
        assert_eq!(
            cache.insert_if_live(1, key(&[2], &[2]), pairs(&[])),
            InsertOutcome::Inserted { evicted: false }
        );
    }
}
