//! The batch-forming front end: fuse concurrent clients into shared
//! protocol rounds.
//!
//! The paper's central serving win is that a batched set-reachability
//! execution costs **3 communication rounds regardless of batch size**
//! ([`DsrEngine::set_reachability_batch`]). Running each client's queries
//! as its own private batch throws that away: 64 concurrent clients pay 64
//! separate 3-round executions. This module is an inference-server-style
//! batch former that recovers the multiplier *across* clients:
//!
//! ```text
//!  client 1 ──┐ (cache miss)
//!  client 2 ──┤  submission      ┌────────────┐   one fused 3-round
//!     …       ├─ queue ────────▶ │ scheduler  │ ─ set_reachability_batch ─▶
//!  client N ──┘  (bounded)       │  thread    │   per-client fan-out
//!                                └────────────┘
//!                 window: max_wait_us  │  cap: max_batch  │  flush()
//! ```
//!
//! * Clients first probe the sharded result cache
//!   ([`ShardedCache`](crate::cache::ShardedCache)); **hits never touch
//!   the scheduler**. Misses enqueue a [`SigKey`]-keyed entry and block on
//!   a condvar-based completion handle (`Waiter`) — no async runtime,
//!   consistent with the std-only workspace.
//! * A dedicated scheduler thread drains the queue until a bounded window
//!   (`max_wait_us`) elapses, a size cap (`max_batch`) is reached, or a
//!   [`flush`](crate::QueryService::flush) arrives; re-probes the cache
//!   once per drained query (a concurrent execution may have answered it
//!   meanwhile); deduplicates identical signatures; executes all remaining
//!   misses from *all* clients as **one** fused batch over the shared
//!   transport; populates the cache; and fans the answers back out.
//! * Admission control bounds the number of in-flight queries
//!   (`admission_depth`): beyond it, non-blocking submissions fail with
//!   the typed [`ServiceError::Overloaded`] instead of piling up
//!   unboundedly.
//!
//! Groups submitted together (one [`QueryService::query_batch`] call) are
//! never split across formed batches — the cap is a forming *trigger*, not
//! a hard size limit — so a single-client batch still executes as exactly
//! one fused run and its reply stays deterministic.
//!
//! [`DsrEngine::set_reachability_batch`]: dsr_core::DsrEngine::set_reachability_batch
//! [`QueryService::query_batch`]: crate::QueryService::query_batch

use dsr_sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use dsr_sync::thread::JoinHandle;
use dsr_sync::{Arc, Condvar, Mutex};
use std::collections::HashMap;
use std::time::{Duration, Instant};

use dsr_cluster::TransportError;
use dsr_core::{DsrEngine, SetQuery};

use crate::cache::{CachedPairs, InsertOutcome, SigKey};
use crate::service::Core;
use crate::snapshot::Generation;

/// Why the serving layer could not answer a query.
#[derive(Debug, Clone)]
pub enum ServiceError {
    /// The admission queue is full: `queued` in-flight queries already
    /// stand against a limit of `limit`. Backpressure — retry later, widen
    /// [`ServiceConfig::admission_depth`](crate::ServiceConfig::admission_depth),
    /// or use the blocking [`QueryService::query`](crate::QueryService::query)
    /// which waits for capacity instead of failing.
    Overloaded {
        /// In-flight queries at the time of the attempt.
        queued: usize,
        /// The configured admission limit.
        limit: usize,
    },
    /// The fused execution failed on the service transport (e.g. a TCP
    /// worker disconnecting mid-exchange). The error is `Arc`-shared
    /// because one failed round fails every query fused into it.
    Transport(Arc<TransportError>),
    /// The service is shutting down and the scheduler is gone.
    ShuttingDown,
    /// A query asked to pin a generation
    /// ([`QueryOptions::pin`](crate::QueryOptions::pin)) that has already
    /// been reclaimed — its last `SnapshotRef` dropped. Take a fresh
    /// [`snapshot`](crate::QueryService::snapshot) and retry against it.
    GenerationReclaimed {
        /// The reclaimed generation the caller asked for.
        generation: u64,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded { queued, limit } => write!(
                f,
                "service overloaded: {queued} in-flight queries at admission limit {limit}"
            ),
            ServiceError::Transport(err) => write!(f, "fused batch execution failed: {err}"),
            ServiceError::ShuttingDown => f.write_str("service is shutting down"),
            ServiceError::GenerationReclaimed { generation } => write!(
                f,
                "generation {generation} has been reclaimed; pin a live snapshot instead"
            ),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Transport(err) => Some(err.as_ref()),
            _ => None,
        }
    }
}

/// Communication cost of one fused protocol run, `Arc`-shared by every
/// query answered in that run so per-client replies can attribute rounds
/// without double-counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundCost {
    /// Rounds of the fused scatter/exchange/gather (3, or 0 for an empty
    /// batch).
    pub rounds: u64,
    /// Messages exchanged by the fused run.
    pub messages: u64,
    /// Bytes exchanged by the fused run.
    pub bytes: u64,
}

/// A fulfilled query: the shared answer plus, when the query was executed
/// (rather than answered by the scheduler's cache re-probe), the cost of
/// the fused run that produced it.
pub(crate) type Fulfillment = (CachedPairs, Option<Arc<RoundCost>>);

struct WaitState {
    remaining: usize,
    slots: Vec<Option<Fulfillment>>,
    error: Option<ServiceError>,
}

/// Condvar-based completion handle for one submitted group: the scheduler
/// fulfills slots as answers materialize; the client blocks in
/// [`Waiter::wait`] until the whole group is answered or the fused run
/// failed.
pub(crate) struct Waiter {
    state: Mutex<WaitState>,
    ready: Condvar,
}

impl Waiter {
    pub(crate) fn new(slots: usize) -> Arc<Self> {
        Arc::new(Waiter {
            state: Mutex::new(WaitState {
                remaining: slots,
                slots: (0..slots).map(|_| None).collect(),
                error: None,
            }),
            ready: Condvar::new(),
        })
    }

    fn fulfill(&self, slot: usize, value: CachedPairs, cost: Option<Arc<RoundCost>>) {
        let mut state = dsr_sync::lock(&self.state);
        debug_assert!(state.slots[slot].is_none(), "slot fulfilled twice");
        state.slots[slot] = Some((value, cost));
        state.remaining -= 1;
        if state.remaining == 0 {
            self.ready.notify_all();
        }
    }

    fn fail(&self, error: ServiceError) {
        let mut state = dsr_sync::lock(&self.state);
        if state.error.is_none() {
            state.error = Some(error);
        }
        self.ready.notify_all();
    }

    /// Blocks until every slot is fulfilled (returning them in submission
    /// order) or the group failed.
    pub(crate) fn wait(&self) -> Result<Vec<Fulfillment>, ServiceError> {
        let mut state = dsr_sync::lock(&self.state);
        loop {
            if let Some(error) = &state.error {
                return Err(error.clone());
            }
            if state.remaining == 0 {
                return Ok(state
                    .slots
                    .iter_mut()
                    .map(|slot| slot.take().expect("all slots fulfilled"))
                    .collect());
            }
            state = dsr_sync::wait(&self.ready, state);
        }
    }
}

/// One cache-missing query queued for fused execution.
pub(crate) struct Entry {
    pub(crate) key: SigKey,
    /// The generation this query executes against, captured at submission
    /// (the chain's latest for plain queries, the pinned generation for
    /// queries issued through a [`SnapshotRef`](crate::SnapshotRef)). The
    /// entry's clone keeps the generation — and its cache namespace —
    /// alive until the answer is fanned out.
    pub(crate) generation: Arc<Generation>,
    /// Whether this entry may be answered from and published to the cache
    /// (`QueryOptions::cache`; `false` bypasses both directions).
    pub(crate) cache: bool,
    pub(crate) waiter: Arc<Waiter>,
    pub(crate) slot: usize,
    pub(crate) enqueued: Instant,
}

pub(crate) enum Msg {
    /// An indivisible group of entries (one client call).
    Group(Vec<Entry>),
    /// Form and execute whatever is pending right now.
    Flush,
}

/// Counting semaphore bounding in-flight queries (submitted but not yet
/// answered). Plain mutex + condvar: the hot path is two uncontended lock
/// acquisitions per query, and overload is the *slow* path by definition.
pub(crate) struct Admission {
    limit: usize,
    in_flight: Mutex<usize>,
    freed: Condvar,
}

impl Admission {
    pub(crate) fn new(limit: usize) -> Self {
        Admission {
            limit: limit.max(1),
            in_flight: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    /// Admits `n` queries or fails with [`ServiceError::Overloaded`].
    pub(crate) fn try_acquire(&self, n: usize) -> Result<(), ServiceError> {
        let mut in_flight = dsr_sync::lock(&self.in_flight);
        // A group larger than the whole limit is admissible only into an
        // empty queue (otherwise it could never be admitted at all).
        if *in_flight + n > self.limit && *in_flight > 0 {
            return Err(ServiceError::Overloaded {
                queued: *in_flight,
                limit: self.limit,
            });
        }
        *in_flight += n;
        Ok(())
    }

    /// Admits `n` queries, blocking until there is room.
    pub(crate) fn acquire_blocking(&self, n: usize) {
        let mut in_flight = dsr_sync::lock(&self.in_flight);
        while *in_flight + n > self.limit && *in_flight > 0 {
            in_flight = dsr_sync::wait(&self.freed, in_flight);
        }
        *in_flight += n;
    }

    /// Returns `n` slots to the pool.
    pub(crate) fn release(&self, n: usize) {
        if n == 0 {
            return;
        }
        let mut in_flight = dsr_sync::lock(&self.in_flight);
        *in_flight = in_flight.saturating_sub(n);
        drop(in_flight);
        self.freed.notify_all();
    }
}

/// Batch-forming parameters (the `max_batch` / `max_wait_us` knobs of
/// [`ServiceConfig`](crate::ServiceConfig)).
#[derive(Debug, Clone, Copy)]
pub(crate) struct BatcherConfig {
    pub(crate) max_batch: usize,
    pub(crate) max_wait: Duration,
}

/// Owns the submission queue sender and the scheduler thread; dropping it
/// disconnects the queue and joins the scheduler (which first executes
/// anything still pending).
pub(crate) struct Batcher {
    tx: Option<Sender<Msg>>,
    scheduler: Option<JoinHandle<()>>,
}

impl Batcher {
    pub(crate) fn spawn(core: Arc<Core>, config: BatcherConfig) -> Self {
        let (tx, rx) = dsr_sync::mpsc::channel();
        let scheduler = dsr_sync::thread::Builder::new()
            .name("dsr-batch-former".into())
            .spawn(move || run_scheduler(&core, &rx, config))
            .expect("spawn batch-former scheduler");
        Batcher {
            tx: Some(tx),
            scheduler: Some(scheduler),
        }
    }

    fn send(&self, msg: Msg) {
        let sent = self
            .tx
            .as_ref()
            .expect("sender alive until drop")
            .send(msg)
            .is_ok();
        // The receiver only disappears when the scheduler thread died; the
        // join in Drop will propagate its panic, but a client thread
        // racing the teardown must not wait forever on a queue nobody
        // drains.
        assert!(sent, "batch-former scheduler is gone");
    }

    /// Enqueues an indivisible group of entries.
    pub(crate) fn submit(&self, entries: Vec<Entry>) {
        self.send(Msg::Group(entries));
    }

    /// Asks the scheduler to form and execute the pending batch now.
    pub(crate) fn flush(&self) {
        self.send(Msg::Flush);
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(scheduler) = self.scheduler.take() {
            if let Err(panic) = scheduler.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

/// The scheduler loop: block for the first submission, then drain until
/// the window elapses, the cap is reached, or a flush arrives — then
/// execute the formed batch and start over.
fn run_scheduler(core: &Core, rx: &Receiver<Msg>, config: BatcherConfig) {
    loop {
        let mut pending: Vec<Entry> = Vec::new();
        match rx.recv() {
            Ok(Msg::Group(entries)) => pending.extend(entries),
            Ok(Msg::Flush) => continue, // nothing pending to form
            Err(_) => return,           // service dropped, queue fully drained
        }
        let deadline = Instant::now() + config.max_wait;
        let mut disconnected = false;
        while pending.len() < config.max_batch {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            match rx.recv_timeout(remaining) {
                Ok(Msg::Group(entries)) => pending.extend(entries),
                Ok(Msg::Flush) | Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        execute_formed(core, pending);
        if disconnected {
            return;
        }
    }
}

/// The per-generation slice of one formed batch: every entry pinned to
/// `generation`, with its deduplicated miss signatures. Entries pinned to
/// different generations must execute against their own index, so each
/// distinct generation forms its own fused run.
struct GenGroup {
    generation: Arc<Generation>,
    misses: Vec<SigKey>,
    /// Per-miss: whether any contributing entry wants the result cached.
    cache_wanted: Vec<bool>,
    miss_index: HashMap<SigKey, usize>,
    executing: Vec<(Entry, usize)>,
}

/// Executes one formed batch: re-probe the cache, deduplicate per pinned
/// generation, run each generation's misses as a single fused protocol
/// batch over that generation's index, populate its cache namespace and
/// fan the answers out to the per-client completion handles.
fn execute_formed(core: &Core, entries: Vec<Entry>) {
    if entries.is_empty() {
        return;
    }
    let now = Instant::now();
    core.batch.record_formed(entries.len() as u64);
    for entry in &entries {
        core.batch
            .record_wait(now.saturating_duration_since(entry.enqueued).as_micros() as u64);
    }

    // Re-probe (a previous fused run may have answered the signature while
    // this one queued) and deduplicate identical signatures within each
    // generation. The re-probe is deliberately silent on CacheStats: the
    // client already recorded this lookup as a miss when it enqueued.
    let mut groups: Vec<GenGroup> = Vec::new();
    for entry in entries {
        if core.cache_enabled && entry.cache {
            if let Some(hit) = core.cache.get(entry.generation.id(), &entry.key) {
                core.batch.record_late_hit();
                entry.waiter.fulfill(entry.slot, hit, None);
                core.admission.release(1);
                continue;
            }
        }
        // Mixed-generation batches are rare (a pinned analytical reader
        // racing fresh traffic), so a linear scan over the handful of
        // groups beats a map.
        let group = match groups
            .iter()
            .position(|group| group.generation.id() == entry.generation.id())
        {
            Some(group) => group,
            None => {
                groups.push(GenGroup {
                    generation: Arc::clone(&entry.generation),
                    misses: Vec::new(),
                    cache_wanted: Vec::new(),
                    miss_index: HashMap::new(),
                    executing: Vec::new(),
                });
                groups.len() - 1
            }
        };
        let group = &mut groups[group];
        let miss = match group.miss_index.get(&entry.key) {
            Some(&miss) => miss,
            None => {
                let miss = group.misses.len();
                group.miss_index.insert(entry.key.clone(), miss);
                group.misses.push(entry.key.clone());
                group.cache_wanted.push(false);
                miss
            }
        };
        group.cache_wanted[miss] |= entry.cache;
        group.executing.push((entry, miss));
    }
    for group in groups {
        execute_group(core, group);
    }
}

/// Runs one generation's fused batch and fans its answers out.
fn execute_group(core: &Core, group: GenGroup) {
    let GenGroup {
        generation,
        misses,
        cache_wanted,
        miss_index: _,
        executing,
    } = group;
    if misses.is_empty() {
        return;
    }
    let namespace = generation.id();
    let queries: Vec<SetQuery> = misses.iter().map(SigKey::to_query).collect();
    let outcome = {
        let engine = DsrEngine::with_transport(generation.index(), &core.transport);
        engine.set_reachability_batch(&queries)
        // `engine` drops here; the generation pins (this group's and each
        // entry's) are shed below before any waiter is woken, so a client
        // observing its completion can immediately take the exclusive
        // update path without spuriously seeing the scheduler's pins.
    };
    let released = executing.len();
    match outcome {
        Ok(batch) => {
            core.comm.add(batch.rounds, batch.messages, batch.bytes);
            core.batch
                .record_execution(misses.len() as u64, batch.rounds);
            let cost = Arc::new(RoundCost {
                rounds: batch.rounds,
                messages: batch.messages,
                bytes: batch.bytes,
            });
            let values: Vec<CachedPairs> = batch.results.into_iter().map(Arc::new).collect();
            // Seeded mutation (model builds only): releasing admission
            // *before* the results are published to the cache lets a client
            // unblocked by the freed capacity probe the cache and miss a
            // result that was already computed — the model suite must catch
            // this (`model_mutation_batcher_release_before_publish_detected`).
            let premature_release = dsr_sync::model::mutation_enabled(
                dsr_sync::model::MUTATION_BATCHER_RELEASE_BEFORE_PUBLISH,
            );
            if premature_release {
                core.admission.release(released);
            }
            if core.cache_enabled {
                for ((key, wanted), value) in misses.into_iter().zip(cache_wanted).zip(&values) {
                    if !wanted {
                        continue;
                    }
                    match core.cache.insert_if_live(namespace, key, Arc::clone(value)) {
                        InsertOutcome::Inserted { evicted } => {
                            core.stats.record_insertion();
                            if evicted {
                                core.stats.record_eviction();
                            }
                        }
                        InsertOutcome::Stale => {}
                    }
                }
            }
            // Free admission before waking anyone so an unblocked client
            // immediately finds room for its next query — but only *after*
            // the cache fill above, so a client admitted by the freed
            // capacity always finds the published results.
            if !premature_release {
                core.admission.release(released);
            }
            // Shed every generation pin this run holds before the fan-out:
            // a woken client must never see them.
            let fanout: Vec<(Arc<Waiter>, usize, usize)> = executing
                .into_iter()
                .map(|(entry, miss)| (entry.waiter, entry.slot, miss))
                .collect();
            drop(generation);
            for (waiter, slot, miss) in fanout {
                waiter.fulfill(slot, Arc::clone(&values[miss]), Some(Arc::clone(&cost)));
            }
        }
        Err(err) => {
            // One failed round fails every query fused into it; nothing is
            // cached from a failed batch.
            let err = Arc::new(err);
            core.admission.release(released);
            let fanout: Vec<Arc<Waiter>> = executing
                .into_iter()
                .map(|(entry, _)| entry.waiter)
                .collect();
            drop(generation);
            for waiter in fanout {
                waiter.fail(ServiceError::Transport(Arc::clone(&err)));
            }
        }
    }
}

/// Model checks of the submit → form → fan-out protocol. Under
/// `--cfg dsr_model` these explore every interleaving within the
/// preemption bound; in normal builds they run a single execution.
#[cfg(test)]
mod model_tests {
    use super::*;
    use crate::cache::ShardedCache;
    use crate::snapshot::GenerationChain;
    use crate::QueryService;
    use dsr_cluster::{BatchStats, CacheStats, CommStats, DynTransport, InProcess};
    use dsr_core::DsrIndex;
    use dsr_graph::DiGraph;
    use dsr_partition::Partitioning;
    use dsr_reach::LocalIndexKind;
    use dsr_sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use dsr_sync::model::{self, Model};

    /// A one-partition chain `0 -> 1 -> 2`: `SlavePool::run(1, ..)` takes
    /// the inline fast path, so no process-global (unscheduled) pool
    /// workers participate and every execution is fully model-controlled.
    fn single_partition_core(admission_depth: usize) -> Arc<Core> {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let p = Partitioning::new(vec![0, 0, 0], 1);
        Arc::new(Core {
            generations: GenerationChain::new(Arc::new(DsrIndex::build(
                &g,
                p,
                LocalIndexKind::Dfs,
            ))),
            cache: ShardedCache::new(8, 1),
            cache_enabled: true,
            transport: DynTransport::InProcess(InProcess),
            admission: Admission::new(admission_depth),
            stats: CacheStats::new(),
            comm: CommStats::new(),
            batch: BatchStats::new(),
            latest_hits: AtomicU64::new(0),
            pinned_hits: AtomicU64::new(0),
        })
    }

    fn entry_for(
        generation: Arc<Generation>,
        key: SigKey,
        waiter: &Arc<Waiter>,
        slot: usize,
    ) -> Entry {
        Entry {
            key,
            generation,
            cache: true,
            waiter: Arc::clone(waiter),
            slot,
            enqueued: Instant::now(),
        }
    }

    /// Protocol invariant behind the seeded
    /// [`MUTATION_BATCHER_RELEASE_BEFORE_PUBLISH`] bug: a client admitted
    /// by the capacity an execution released must find that execution's
    /// results already published to the cache.
    ///
    /// [`MUTATION_BATCHER_RELEASE_BEFORE_PUBLISH`]:
    /// model::MUTATION_BATCHER_RELEASE_BEFORE_PUBLISH
    fn release_happens_after_publish() {
        let core = single_partition_core(1);
        let key = SigKey::new(&[0], &[2]);
        let namespace = core.generations.latest_id();
        core.admission
            .try_acquire(1)
            .expect("empty queue admits the first query");
        let blocked = {
            let core = Arc::clone(&core);
            let key = key.clone();
            dsr_sync::thread::spawn(move || {
                // Blocks until the fused execution below releases its slot.
                core.admission.acquire_blocking(1);
                let hit = core.cache.get(namespace, &key);
                core.admission.release(1);
                assert!(hit.is_some(), "admission freed before result was published");
            })
        };
        let waiter = Waiter::new(1);
        execute_formed(
            &core,
            vec![entry_for(core.generations.latest(), key, &waiter, 0)],
        );
        let answers = waiter.wait().expect("in-process execution succeeds");
        assert_eq!(*answers[0].0, vec![(0, 2)]);
        assert!(
            answers[0].1.is_some(),
            "executed (not late-hit) queries carry a cost"
        );
        blocked.join().unwrap();
    }

    #[test]
    fn model_release_happens_after_publish() {
        Model::new()
            .check(release_happens_after_publish)
            .expect("publish-before-release must hold in every schedule");
    }

    /// Seeded mutation: releasing admission before the cache fill lets the
    /// unblocked client miss the published result in some interleaving —
    /// the checker must find it.
    #[test]
    fn model_mutation_batcher_release_before_publish_detected() {
        if !model::is_model_build() {
            return;
        }
        let failure = Model::new()
            .mutation(model::MUTATION_BATCHER_RELEASE_BEFORE_PUBLISH)
            .check(release_happens_after_publish)
            .expect_err("premature release must be observable in some schedule");
        assert!(
            failure
                .message
                .contains("admission freed before result was published"),
            "{failure}"
        );
    }

    /// A signature answered by a concurrent execution while queued is
    /// fulfilled by the scheduler's cache re-probe (a *late hit*): no cost
    /// is attributed and its admission slot is returned.
    fn late_hit_skips_execution() {
        let core = single_partition_core(4);
        let key = SigKey::new(&[0], &[1]);
        core.cache.insert_if_live(
            core.generations.latest_id(),
            key.clone(),
            Arc::new(vec![(0, 1)]),
        );
        core.admission.try_acquire(1).expect("room for one");
        let waiter = Waiter::new(1);
        execute_formed(
            &core,
            vec![entry_for(core.generations.latest(), key, &waiter, 0)],
        );
        let answers = waiter.wait().expect("late hit fulfills the waiter");
        assert_eq!(*answers[0].0, vec![(0, 1)]);
        assert!(
            answers[0].1.is_none(),
            "late hits attribute no fused-run cost"
        );
        // The slot came back: the whole limit is available again.
        core.admission
            .try_acquire(4)
            .expect("all slots free after late hit");
    }

    #[test]
    fn model_late_hit_skips_execution() {
        Model::new()
            .check(late_hit_skips_execution)
            .expect("late-hit fan-out must hold in every schedule");
    }

    /// Admission is a counting semaphore: under concurrent blocking
    /// acquires, the number of admitted-but-unreleased queries never
    /// exceeds the limit in any interleaving.
    fn admission_never_exceeds_limit() {
        let admission = Arc::new(Admission::new(1));
        let admitted = Arc::new(AtomicUsize::new(0));
        let contender = {
            let admission = Arc::clone(&admission);
            let admitted = Arc::clone(&admitted);
            dsr_sync::thread::spawn(move || {
                admission.acquire_blocking(1);
                let concurrent = admitted.fetch_add(1, Ordering::SeqCst);
                assert_eq!(concurrent, 0, "admission limit 1 exceeded");
                admitted.fetch_sub(1, Ordering::SeqCst);
                admission.release(1);
            })
        };
        admission.acquire_blocking(1);
        let concurrent = admitted.fetch_add(1, Ordering::SeqCst);
        assert_eq!(concurrent, 0, "admission limit 1 exceeded");
        admitted.fetch_sub(1, Ordering::SeqCst);
        admission.release(1);
        contender.join().unwrap();
    }

    #[test]
    fn model_admission_never_exceeds_limit() {
        Model::new()
            .check(admission_never_exceeds_limit)
            .expect("the admission semaphore must never over-admit");
    }

    /// An oversized group still fails `try_acquire` with the typed
    /// overload error once anything is in flight, and the freed capacity
    /// admits it afterwards (the Overloaded drain path).
    fn overload_drains_after_release() {
        let admission = Admission::new(2);
        admission
            .try_acquire(2)
            .expect("empty queue fills to the limit");
        match admission.try_acquire(1) {
            Err(ServiceError::Overloaded { queued, limit }) => {
                assert_eq!((queued, limit), (2, 2));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        admission.release(2);
        admission
            .try_acquire(1)
            .expect("released capacity re-admits");
    }

    #[test]
    fn model_overload_drains_after_release() {
        Model::new()
            .check(overload_drains_after_release)
            .expect("overload accounting must be exact");
    }

    /// End-to-end submit → form → fan-out through a real [`Batcher`] whose
    /// scheduler thread runs as a model thread: the batch window is far in
    /// the future, so completion proves the flush/drain wakeups (not the
    /// timeout) drive the fan-out.
    fn batcher_forms_and_fans_out() {
        let core = single_partition_core(4);
        let batcher = Batcher::spawn(
            Arc::clone(&core),
            BatcherConfig {
                max_batch: 64,
                max_wait: Duration::from_secs(10),
            },
        );
        core.admission.try_acquire(2).expect("room for the group");
        let waiter = Waiter::new(2);
        batcher.submit(vec![
            entry_for(
                core.generations.latest(),
                SigKey::new(&[0], &[2]),
                &waiter,
                0,
            ),
            entry_for(
                core.generations.latest(),
                SigKey::new(&[2], &[0]),
                &waiter,
                1,
            ),
        ]);
        batcher.flush();
        let answers = waiter.wait().expect("fused execution succeeds");
        assert_eq!(*answers[0].0, vec![(0, 2)], "0 reaches 2 along the chain");
        assert!(answers[1].0.is_empty(), "2 does not reach 0");
        drop(batcher); // disconnects the queue and joins the scheduler
    }

    #[test]
    fn model_batcher_forms_and_fans_out() {
        Model::new()
            .max_schedules(512)
            .check(batcher_forms_and_fans_out)
            .expect("submit/form/fan-out must hold in every explored schedule");
    }

    /// The public service front end survives a model run end to end:
    /// cached hit, miss, flush and shutdown all inside the scheduler.
    fn service_round_trip() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let p = Partitioning::new(vec![0, 0, 0], 1);
        let service = QueryService::new(Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs)));
        assert_eq!(*service.query(&[0], &[2]), vec![(0, 2)]);
        assert_eq!(*service.query(&[0], &[2]), vec![(0, 2)]);
        assert_eq!(service.cache_stats().hits(), 1, "second ask is a cache hit");
    }

    #[test]
    fn model_service_round_trip() {
        Model::new()
            .max_schedules(256)
            .check(service_round_trip)
            .expect("the service front end must hold in every explored schedule");
    }
}
