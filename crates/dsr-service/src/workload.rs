//! Pluggable analytical workloads over a pinned snapshot.
//!
//! A [`Workload`] is a named unit of analytical work — an RDF property-path
//! resolver, a community detector, a reachability audit — that runs
//! entirely against **one** pinned [`SnapshotRef`]: every set-reachability
//! question it asks goes through the snapshot's
//! [`query_batch`](SnapshotRef::query_batch) (fusing with concurrent
//! traffic, filling the pinned generation's cache namespace) and every
//! graph walk reads the snapshot's immutable
//! [`index`](SnapshotRef::index). Because the generation cannot change
//! under the workload, its [`WorkloadRun`] is reproducible: re-running the
//! same workload on the same pinned generation yields the same
//! [`checksum`](WorkloadRun::checksum), no matter how many update batches
//! the service applied meanwhile.
//!
//! The two in-tree implementations live with their domains — the RDF
//! path-query workload in `dsr-rdf` and the Louvain community workload in
//! `dsr-community`; the mixed-tenant benchmark drives both against a
//! single service while an OLTP update stream runs.

use crate::service::SnapshotRef;
use crate::ServiceError;

/// Order-insensitive FNV-1a checksum of a workload's result pairs: each
/// pair hashes independently and the per-pair digests combine by
/// wrapping addition, so a workload may enumerate results in any
/// deterministic-or-not order and still produce a stable checksum.
pub fn checksum_pairs(pairs: impl IntoIterator<Item = (u64, u64)>) -> u64 {
    let mut sum = 0u64;
    for (a, b) in pairs {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for word in [a, b] {
            for byte in word.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        sum = sum.wrapping_add(hash);
    }
    sum
}

/// The measured outcome of one [`Workload::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadRun {
    /// Set-reachability queries the workload issued through the snapshot.
    pub queries: u64,
    /// Result pairs (or equivalent result units) the workload produced.
    pub results: u64,
    /// Order-insensitive digest of the produced results — byte-identical
    /// across transports and across re-runs on the same generation (see
    /// [`checksum_pairs`]).
    pub checksum: u64,
}

/// A named analytical workload executed against one pinned snapshot.
///
/// Implementations must route **all** reads through the given
/// [`SnapshotRef`] (its `query_batch` / `index`) and never through the
/// owning service's unpinned entry points — that is what makes a run
/// immune to concurrent update batches. The `dsr-lint` `snapshot-facade`
/// rule enforces the complementary service-side invariant.
pub trait Workload {
    /// Stable, human-readable workload name (reported by benchmarks).
    fn name(&self) -> &str;

    /// Runs the workload to completion against `snapshot`.
    ///
    /// # Errors
    /// [`ServiceError`] when a fused execution fails on the service
    /// transport; infallible workloads simply never return it.
    fn run(&self, snapshot: &SnapshotRef<'_>) -> Result<WorkloadRun, ServiceError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryService;
    use dsr_core::{DsrIndex, SetQuery, UpdateOp};
    use dsr_graph::{DiGraph, VertexId};
    use dsr_partition::Partitioning;
    use dsr_reach::LocalIndexKind;
    use dsr_sync::Arc;

    /// A toy workload: counts all reachable pairs among the first `n`
    /// vertices.
    struct PairCensus {
        n: u64,
    }

    impl Workload for PairCensus {
        fn name(&self) -> &str {
            "pair-census"
        }

        fn run(&self, snapshot: &SnapshotRef<'_>) -> Result<WorkloadRun, ServiceError> {
            let vertices: Vec<VertexId> = (0..self.n as VertexId).collect();
            let queries: Vec<SetQuery> = vertices
                .iter()
                .map(|&v| SetQuery::new(vec![v], vertices.clone()))
                .collect();
            let reply = snapshot.query_batch(&queries)?;
            let pairs: Vec<(u64, u64)> = reply
                .results
                .iter()
                .flat_map(|r| r.iter().map(|&(a, b)| (u64::from(a), u64::from(b))))
                .collect();
            Ok(WorkloadRun {
                queries: queries.len() as u64,
                results: pairs.len() as u64,
                checksum: checksum_pairs(pairs),
            })
        }
    }

    fn chain_service() -> QueryService {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let p = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        QueryService::new(Arc::new(DsrIndex::build(&g, p, LocalIndexKind::Dfs)))
    }

    #[test]
    fn checksum_is_order_insensitive() {
        let forward = checksum_pairs([(0, 5), (1, 4), (2, 3)]);
        let shuffled = checksum_pairs([(2, 3), (0, 5), (1, 4)]);
        assert_eq!(forward, shuffled);
        assert_ne!(forward, checksum_pairs([(0, 5), (1, 4)]));
        assert_ne!(checksum_pairs([(0, 1)]), checksum_pairs([(1, 0)]));
    }

    #[test]
    fn workload_runs_are_reproducible_across_update_batches() {
        let service = chain_service();
        let census = PairCensus { n: 6 };
        let snap = service.snapshot();
        let before = census.run(&snap).expect("in-process transport");
        assert_eq!(before.queries, 6);
        // C(6,2) = 15 forward pairs plus the 6 reflexive pairs the engine
        // reports when a vertex appears in both sets.
        assert_eq!(before.results, 21, "full 6-chain");

        // An update stream advances the chain mid-workload…
        service
            .update(&[UpdateOp::Delete(2, 3)], crate::UpdateMode::Auto)
            .expect("auto forks around the pin");

        // …but the pinned re-run reproduces the identical outcome.
        let after = census.run(&snap).expect("in-process transport");
        assert_eq!(before, after, "pinned workload is immune to updates");

        // A fresh snapshot sees the severed chain.
        drop(snap);
        let fresh = service.snapshot();
        let severed = census.run(&fresh).expect("in-process transport");
        assert_eq!(severed.results, 3 + 3 + 6, "two disjoint 3-chains");
        assert_ne!(severed.checksum, before.checksum);
    }
}
