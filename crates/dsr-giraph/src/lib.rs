//! Pregel-style baseline engines for DSR queries.
//!
//! The paper compares its index-based approach against three
//! implementations of set reachability on distributed graph engines
//! (Section 4 and Appendix 8.4):
//!
//! * **Giraph** — purely vertex-centric BSP: every superstep, each vertex
//!   that learned about new reachable sources forwards them to all of its
//!   out-neighbors. The number of supersteps is bounded by the graph
//!   diameter and *every* vertex-to-vertex message goes through the
//!   engine's message store ([`vertex_centric`]).
//! * **Giraph++** — graph-centric ("think like a graph"): each worker holds
//!   a whole partition and propagates new sources to a local fixpoint
//!   within a superstep, so only cross-partition messages remain
//!   ([`graph_centric`]).
//! * **Giraph++wEq** — Giraph++ plus the equivalence-set optimization: the
//!   cross-partition messages are grouped per forward-equivalence class of
//!   the destination partition (the in-virtual vertices of `dsr-core`),
//!   which reduces the message count further.
//!
//! All three return a [`GiraphOutcome`] with the reachable pairs, the
//! number of supersteps, and the communication volume, which is exactly
//! what Figures 5 and 8 and Table 3 report.

#![forbid(unsafe_code)]

pub mod graph_centric;
pub mod outcome;
pub mod vertex_centric;

pub use graph_centric::{
    giraph_pp_set_reachability, giraph_pp_weq_with_summaries, GraphCentricVariant,
};
pub use outcome::GiraphOutcome;
pub use vertex_centric::giraph_set_reachability;
