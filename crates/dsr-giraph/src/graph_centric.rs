//! Graph-centric ("think like a graph") DSR evaluation — the Giraph++ and
//! Giraph++wEq baselines of Appendix 8.4.2 / 8.4.3.
//!
//! Each worker owns a whole partition. Within a superstep it drains its
//! incoming cross-partition messages, runs the local source propagation to
//! a fixpoint (`localProcess(.)` in the paper's pseudo-code), and only then
//! emits messages for cut edges whose targets live on other workers. This
//! removes all intra-partition messages and cuts the superstep count from
//! "graph diameter" to "number of partition hops".
//!
//! The `wEq` variant additionally groups the outgoing messages by the
//! *forward-equivalence class* (in-virtual vertex) of the destination
//! boundary, as computed by [`dsr_core::PartitionSummary`]: one message per
//! `(destination class, source)` instead of one per `(destination vertex,
//! source)`, which is the communication reduction shown in Figure 8.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use dsr_cluster::run_on_slaves;
use dsr_core::PartitionSummary;
use dsr_graph::{DiGraph, InducedSubgraph, VertexId};
use dsr_partition::{Cut, PartitionId, Partitioning};

use crate::outcome::GiraphOutcome;

/// Which graph-centric variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphCentricVariant {
    /// Plain Giraph++ (per-vertex cross-partition messages).
    GiraphPlusPlus,
    /// Giraph++ with the equivalence-set optimization (per-class messages).
    GiraphPlusPlusWithEquivalence,
}

/// Runs the graph-centric DSR program.
///
/// For the `wEq` variant the forward-equivalence classes are computed on
/// the fly; when they are already available (they are part of the DSR
/// index), use [`giraph_pp_weq_with_summaries`] so the query time does not
/// include that precomputation — this mirrors the paper, where the
/// equivalence sets are "first computed in our DSR system" and the prepared
/// graph is loaded into Giraph.
pub fn giraph_pp_set_reachability(
    graph: &DiGraph,
    partitioning: &Partitioning,
    sources: &[VertexId],
    targets: &[VertexId],
    variant: GraphCentricVariant,
) -> GiraphOutcome {
    match variant {
        GraphCentricVariant::GiraphPlusPlus => {
            run_graph_centric(graph, partitioning, sources, targets, None)
        }
        GraphCentricVariant::GiraphPlusPlusWithEquivalence => {
            let k = partitioning.num_partitions;
            let members = partitioning.members();
            let cut = Cut::extract(graph, partitioning);
            let locals: Vec<InducedSubgraph> =
                run_on_slaves(k, |i| InducedSubgraph::induced(graph, &members[i]));
            let summaries: Vec<PartitionSummary> = run_on_slaves(k, |i| {
                PartitionSummary::compute(
                    i as PartitionId,
                    &locals[i],
                    cut.partition(i as PartitionId),
                )
            });
            run_graph_centric(graph, partitioning, sources, targets, Some(&summaries))
        }
    }
}

/// Giraph++wEq with precomputed equivalence summaries (one entry per
/// partition, e.g. borrowed from a [`dsr_core::DsrIndex`]).
pub fn giraph_pp_weq_with_summaries(
    graph: &DiGraph,
    partitioning: &Partitioning,
    summaries: &[PartitionSummary],
    sources: &[VertexId],
    targets: &[VertexId],
) -> GiraphOutcome {
    run_graph_centric(graph, partitioning, sources, targets, Some(summaries))
}

fn run_graph_centric(
    graph: &DiGraph,
    partitioning: &Partitioning,
    sources: &[VertexId],
    targets: &[VertexId],
    summaries: Option<&[PartitionSummary]>,
) -> GiraphOutcome {
    let start = Instant::now();
    let n = graph.num_vertices();
    assert_eq!(
        partitioning.num_vertices(),
        n,
        "partitioning must cover the graph"
    );
    let k = partitioning.num_partitions;
    let members = partitioning.members();
    let cut = Cut::extract(graph, partitioning);

    let locals: Vec<InducedSubgraph> =
        run_on_slaves(k, |i| InducedSubgraph::induced(graph, &members[i]));

    // Outgoing cut edges per partition, precomputed once.
    let mut cut_out: Vec<Vec<(VertexId, VertexId)>> = vec![Vec::new(); k];
    for &(u, v) in &cut.edges {
        cut_out[partitioning.partition_of(u) as usize].push((u, v));
    }

    // Dense source ranks.
    let mut source_index: Vec<VertexId> = sources.to_vec();
    source_index.sort_unstable();
    source_index.dedup();

    // Global per-vertex state (owned by the vertex's worker; stored globally
    // for simplicity, accessed per partition).
    let mut state: Vec<HashSet<u32>> = vec![HashSet::new(); n];

    let mut supersteps = 0u64;
    let mut messages = 0u64;
    let mut bytes = 0u64;

    // Pending cross-partition deliveries: (destination vertex, source rank).
    let mut inbox: Vec<Vec<(VertexId, u32)>> = vec![Vec::new(); k];
    // Superstep 0 seeds the sources at their own workers.
    for (rank, &s) in source_index.iter().enumerate() {
        inbox[partitioning.partition_of(s) as usize].push((s, rank as u32));
    }

    loop {
        supersteps += 1;
        // Per-partition local processing to a fixpoint, producing newly
        // activated (vertex, rank) facts.
        let mut activated: Vec<Vec<(VertexId, u32)>> = Vec::with_capacity(k);
        for i in 0..k {
            let mut new_facts: Vec<(VertexId, u32)> = Vec::new();
            let local = &locals[i];
            // Drain the inbox and run a BFS-style propagation inside the
            // partition.
            let mut stack: Vec<(VertexId, u32)> = Vec::new();
            for &(v, rank) in &inbox[i] {
                if state[v as usize].insert(rank) {
                    stack.push((v, rank));
                    new_facts.push((v, rank));
                }
            }
            while let Some((v, rank)) = stack.pop() {
                let lv = local.mapping.local(v).expect("vertex is local");
                for &lw in local.graph.out_neighbors(lv) {
                    let w = local.mapping.global(lw);
                    if state[w as usize].insert(rank) {
                        stack.push((w, rank));
                        new_facts.push((w, rank));
                    }
                }
            }
            inbox[i].clear();
            activated.push(new_facts);
        }

        // Emit cross-partition messages for newly activated facts on
        // out-boundary vertices.
        let mut any_message = false;
        for i in 0..k {
            if activated[i].is_empty() {
                continue;
            }
            let new_ranks_of: HashMap<VertexId, Vec<u32>> = {
                let mut m: HashMap<VertexId, Vec<u32>> = HashMap::new();
                for &(v, rank) in &activated[i] {
                    m.entry(v).or_default().push(rank);
                }
                m
            };
            match summaries {
                None => {
                    for &(u, v) in &cut_out[i] {
                        if let Some(ranks) = new_ranks_of.get(&u) {
                            let dest = partitioning.partition_of(v) as usize;
                            for &rank in ranks {
                                inbox[dest].push((v, rank));
                                messages += 1;
                                bytes += 8;
                                any_message = true;
                            }
                        }
                    }
                }
                Some(summaries) => {
                    // Group by (destination partition, destination forward
                    // class, source rank): one message carries the concrete
                    // member targets it applies to.
                    let mut grouped: HashMap<(PartitionId, u32, u32), Vec<VertexId>> =
                        HashMap::new();
                    for &(u, v) in &cut_out[i] {
                        if let Some(ranks) = new_ranks_of.get(&u) {
                            let dest = partitioning.partition_of(v);
                            let class = summaries[dest as usize].forward_class_of[&v];
                            for &rank in ranks {
                                grouped.entry((dest, class, rank)).or_default().push(v);
                            }
                        }
                    }
                    for ((dest, _class, rank), mut targets_hit) in grouped {
                        targets_hit.sort_unstable();
                        targets_hit.dedup();
                        // One message: class id + source + member list.
                        messages += 1;
                        bytes += 8 + 4 * targets_hit.len() as u64;
                        any_message = true;
                        for v in targets_hit {
                            inbox[dest as usize].push((v, rank));
                        }
                    }
                }
            }
        }

        if !any_message {
            break;
        }
    }

    // Collect result pairs from the target states.
    let mut pairs = Vec::new();
    let mut target_list: Vec<VertexId> = targets.to_vec();
    target_list.sort_unstable();
    target_list.dedup();
    for &t in &target_list {
        for &rank in &state[t as usize] {
            pairs.push((source_index[rank as usize], t));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();

    GiraphOutcome {
        pairs,
        supersteps,
        messages,
        bytes,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex_centric::giraph_set_reachability;
    use dsr_graph::TransitiveClosure;
    use dsr_partition::{HashPartitioner, Partitioner};

    fn random_graph(seed: u64, n: usize, m: usize) -> DiGraph {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let edges: Vec<(u32, u32)> = (0..m)
            .map(|_| (rng.gen_range(0..n) as u32, rng.gen_range(0..n) as u32))
            .collect();
        DiGraph::from_edges(n, &edges)
    }

    #[test]
    fn both_variants_match_oracle() {
        for seed in 0..4 {
            let g = random_graph(seed, 25, 70);
            let p = HashPartitioner::default().partition(&g, 3);
            let oracle = TransitiveClosure::build(&g);
            let all: Vec<u32> = (0..25).collect();
            let expected = oracle.set_reachability(&all, &all);
            for variant in [
                GraphCentricVariant::GiraphPlusPlus,
                GraphCentricVariant::GiraphPlusPlusWithEquivalence,
            ] {
                let out = giraph_pp_set_reachability(&g, &p, &all, &all, variant);
                assert_eq!(out.pairs, expected, "variant {variant:?} seed {seed}");
            }
        }
    }

    #[test]
    fn fewer_supersteps_than_vertex_centric() {
        // Long chain across 2 partitions: Giraph needs ~n supersteps,
        // Giraph++ needs ~partition hops.
        let n = 40u32;
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = DiGraph::from_edges(n as usize, &edges);
        let assignment: Vec<u32> = (0..n).map(|v| if v < n / 2 { 0 } else { 1 }).collect();
        let p = Partitioning::new(assignment, 2);
        let giraph = giraph_set_reachability(&g, &p, &[0], &[n - 1]);
        let gpp =
            giraph_pp_set_reachability(&g, &p, &[0], &[n - 1], GraphCentricVariant::GiraphPlusPlus);
        assert_eq!(giraph.pairs, gpp.pairs);
        assert!(
            gpp.supersteps * 4 < giraph.supersteps,
            "graph-centric must use far fewer supersteps ({} vs {})",
            gpp.supersteps,
            giraph.supersteps
        );
        assert!(gpp.messages < giraph.messages);
    }

    #[test]
    fn equivalence_variant_sends_no_more_messages() {
        let g = random_graph(9, 60, 260);
        let p = HashPartitioner::default().partition(&g, 4);
        let sources: Vec<u32> = (0..10).collect();
        let targets: Vec<u32> = (50..60).collect();
        let plain = giraph_pp_set_reachability(
            &g,
            &p,
            &sources,
            &targets,
            GraphCentricVariant::GiraphPlusPlus,
        );
        let weq = giraph_pp_set_reachability(
            &g,
            &p,
            &sources,
            &targets,
            GraphCentricVariant::GiraphPlusPlusWithEquivalence,
        );
        assert_eq!(plain.pairs, weq.pairs);
        assert!(
            weq.messages <= plain.messages,
            "wEq must not send more messages ({} vs {})",
            weq.messages,
            plain.messages
        );
    }

    #[test]
    fn empty_query() {
        let g = random_graph(3, 10, 20);
        let p = HashPartitioner::default().partition(&g, 2);
        let out =
            giraph_pp_set_reachability(&g, &p, &[], &[1], GraphCentricVariant::GiraphPlusPlus);
        assert!(out.pairs.is_empty());
    }

    #[test]
    fn precomputed_summaries_match_on_the_fly_weq() {
        let g = random_graph(13, 30, 90);
        let p = HashPartitioner::default().partition(&g, 3);
        let members = p.members();
        let cut = Cut::extract(&g, &p);
        let locals: Vec<InducedSubgraph> = (0..3)
            .map(|i| InducedSubgraph::induced(&g, &members[i]))
            .collect();
        let summaries: Vec<PartitionSummary> = (0..3)
            .map(|i| {
                PartitionSummary::compute(i as PartitionId, &locals[i], cut.partition(i as u32))
            })
            .collect();
        let all: Vec<u32> = (0..30).collect();
        let on_the_fly = giraph_pp_set_reachability(
            &g,
            &p,
            &all,
            &all,
            GraphCentricVariant::GiraphPlusPlusWithEquivalence,
        );
        let precomputed = giraph_pp_weq_with_summaries(&g, &p, &summaries, &all, &all);
        assert_eq!(on_the_fly.pairs, precomputed.pairs);
        assert_eq!(on_the_fly.messages, precomputed.messages);
    }
}
