//! Common result type of the Giraph-style engines.

use std::time::Duration;

use dsr_graph::VertexId;

/// Result and cost profile of a BSP set-reachability run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GiraphOutcome {
    /// All reachable `(source, target)` pairs, sorted and deduplicated.
    pub pairs: Vec<(VertexId, VertexId)>,
    /// Number of supersteps executed (Figure 8, left).
    pub supersteps: u64,
    /// Number of messages exchanged. For the vertex-centric engine this is
    /// every vertex-to-vertex message (they all flow through the message
    /// store); for the graph-centric engines only cross-partition messages
    /// are counted, mirroring Giraph++'s local short-circuiting.
    pub messages: u64,
    /// Total bytes exchanged (Figure 5(b)(f)(j)(n), Figure 8 right).
    pub bytes: u64,
    /// Wall-clock evaluation time.
    pub elapsed: Duration,
}

impl GiraphOutcome {
    /// Communication size in kilobytes (the unit used in the paper's
    /// figures).
    pub fn kilobytes(&self) -> f64 {
        self.bytes as f64 / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kilobyte_conversion() {
        let o = GiraphOutcome {
            pairs: vec![],
            supersteps: 1,
            messages: 2,
            bytes: 2048,
            elapsed: Duration::from_millis(1),
        };
        assert!((o.kilobytes() - 2.0).abs() < 1e-9);
    }
}
