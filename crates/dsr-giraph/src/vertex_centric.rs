//! Vertex-centric ("think like a vertex") DSR evaluation — the plain Giraph
//! baseline of Appendix 8.4.1.
//!
//! Every vertex keeps the set of query sources it is reachable from. In
//! superstep 0 each source vertex adds itself; in every subsequent
//! superstep, vertices that received new sources forward them to all of
//! their out-neighbors. The computation halts when no messages are in
//! flight, i.e. after at most `diameter + 1` supersteps — the iterative
//! behaviour the paper contrasts with DSR's single exchange round.

use std::collections::HashSet;
use std::time::Instant;

use dsr_graph::{DiGraph, VertexId};
use dsr_partition::Partitioning;

use crate::outcome::GiraphOutcome;

/// Runs the vertex-centric DSR program.
///
/// `partitioning` only affects the communication accounting (messages whose
/// endpoints live on different workers are network messages; in plain
/// Giraph every message is serialized into the message store regardless, so
/// all messages are counted — this is what produces the two-orders-of-
/// magnitude communication gap of Figure 5(b)).
pub fn giraph_set_reachability(
    graph: &DiGraph,
    partitioning: &Partitioning,
    sources: &[VertexId],
    targets: &[VertexId],
) -> GiraphOutcome {
    let start = Instant::now();
    let n = graph.num_vertices();
    assert_eq!(
        partitioning.num_vertices(),
        n,
        "partitioning must cover the graph"
    );

    // Dense source ids keep the per-vertex state small.
    let mut source_index: Vec<VertexId> = sources.to_vec();
    source_index.sort_unstable();
    source_index.dedup();

    // state[v] = set of source ranks that reach v.
    let mut state: Vec<HashSet<u32>> = vec![HashSet::new(); n];

    let mut supersteps = 0u64;
    let mut messages = 0u64;
    let mut bytes = 0u64;

    // Superstep 0: sources activate themselves.
    let mut frontier: Vec<(VertexId, u32)> = Vec::new();
    for (rank, &s) in source_index.iter().enumerate() {
        if state[s as usize].insert(rank as u32) {
            frontier.push((s, rank as u32));
        }
    }
    supersteps += 1;

    // Subsequent supersteps: propagate new sources along out-edges.
    while !frontier.is_empty() {
        supersteps += 1;
        let mut next: Vec<(VertexId, u32)> = Vec::new();
        for &(v, rank) in &frontier {
            for &w in graph.out_neighbors(v) {
                // Every message is recorded: 4 bytes vertex id + 4 bytes
                // source id, like the IntWritable pairs of the Java code.
                messages += 1;
                bytes += 8;
                let _ = partitioning; // all messages go through the store
                if state[w as usize].insert(rank) {
                    next.push((w, rank));
                }
            }
        }
        frontier = next;
    }

    let mut pairs = Vec::new();
    let mut target_list: Vec<VertexId> = targets.to_vec();
    target_list.sort_unstable();
    target_list.dedup();
    for &t in &target_list {
        for &rank in &state[t as usize] {
            pairs.push((source_index[rank as usize], t));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();

    GiraphOutcome {
        pairs,
        supersteps,
        messages,
        bytes,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsr_graph::TransitiveClosure;
    use dsr_partition::{HashPartitioner, Partitioner};

    #[test]
    fn chain_reachability_and_superstep_count() {
        // 0 -> 1 -> 2 -> 3: diameter-bound supersteps.
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let p = HashPartitioner::default().partition(&g, 2);
        let out = giraph_set_reachability(&g, &p, &[0], &[3]);
        assert_eq!(out.pairs, vec![(0, 3)]);
        assert!(out.supersteps >= 4, "one superstep per hop plus seeding");
        assert!(out.messages >= 3);
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(21);
        for _ in 0..5 {
            let n = rng.gen_range(6..30);
            let m = rng.gen_range(0..80);
            let edges: Vec<(u32, u32)> = (0..m)
                .map(|_| (rng.gen_range(0..n) as u32, rng.gen_range(0..n) as u32))
                .collect();
            let g = DiGraph::from_edges(n, &edges);
            let p = HashPartitioner::default().partition(&g, 3);
            let oracle = TransitiveClosure::build(&g);
            let all: Vec<u32> = (0..n as u32).collect();
            assert_eq!(
                giraph_set_reachability(&g, &p, &all, &all).pairs,
                oracle.set_reachability(&all, &all)
            );
        }
    }

    #[test]
    fn reflexive_pairs_only_for_sources_in_targets() {
        let g = DiGraph::from_edges(3, &[(0, 1)]);
        let p = HashPartitioner::default().partition(&g, 2);
        let out = giraph_set_reachability(&g, &p, &[0, 2], &[0, 1]);
        assert_eq!(out.pairs, vec![(0, 0), (0, 1)]);
    }

    #[test]
    fn cycle_terminates() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let p = HashPartitioner::default().partition(&g, 2);
        let out = giraph_set_reachability(&g, &p, &[0], &[2]);
        assert_eq!(out.pairs, vec![(0, 2)]);
        assert!(out.supersteps <= 6);
    }
}
