//! The Table 7 community experiment as a pluggable service workload.
//!
//! The paper's Section 4.5.B application detects communities with Louvain
//! and then runs DSR queries *between the members of two communities*.
//! [`CommunityWorkload`] packages exactly that as a
//! [`Workload`] over one pinned
//! [`SnapshotRef`]:
//!
//! 1. reconstruct the graph from the snapshot's immutable index (never
//!    the service's moving latest generation),
//! 2. run [`louvain`] on it — deterministic: no randomness, fixed
//!    iteration order,
//! 3. for every ordered pair of the `top` largest communities, issue one
//!    set-reachability query `members(a) → members(b)` through
//!    [`SnapshotRef::query_batch`] — all pairs fuse into shared protocol
//!    rounds and fill the pinned generation's cache namespace.
//!
//! Because every step reads the pinned generation, the reported
//! [`WorkloadRun`] is reproducible across concurrent update batches and
//! byte-identical across transports.

use dsr_core::SetQuery;
use dsr_graph::VertexId;
use dsr_service::{checksum_pairs, ServiceError, SnapshotRef, Workload, WorkloadRun};

use crate::louvain::louvain;

/// Louvain community detection plus all-pairs community set-reachability
/// over one pinned snapshot.
#[derive(Debug, Clone)]
pub struct CommunityWorkload {
    /// Modularity-gain cutoff passed to [`louvain`].
    min_gain: f64,
    /// How many of the largest communities to query pairwise.
    top: usize,
}

impl CommunityWorkload {
    /// A workload querying the `top` largest detected communities
    /// pairwise, with the default modularity cutoff.
    pub fn new(top: usize) -> Self {
        CommunityWorkload {
            min_gain: 1e-6,
            top,
        }
    }

    /// Overrides the Louvain modularity-gain cutoff.
    #[must_use]
    pub fn with_min_gain(mut self, min_gain: f64) -> Self {
        self.min_gain = min_gain;
        self
    }
}

impl Workload for CommunityWorkload {
    fn name(&self) -> &str {
        "community-pairs"
    }

    fn run(&self, snapshot: &SnapshotRef<'_>) -> Result<WorkloadRun, ServiceError> {
        let graph = snapshot.index().reconstruct_graph();
        let assignment = louvain(&graph, self.min_gain);
        let members: Vec<Vec<VertexId>> = assignment
            .by_size()
            .into_iter()
            .take(self.top)
            .map(|c| assignment.members(c))
            .filter(|m| !m.is_empty())
            .collect();

        let mut queries = Vec::new();
        for (i, sources) in members.iter().enumerate() {
            for (j, targets) in members.iter().enumerate() {
                if i != j {
                    queries.push(SetQuery::new(sources.clone(), targets.clone()));
                }
            }
        }
        if queries.is_empty() {
            return Ok(WorkloadRun {
                queries: 0,
                results: 0,
                checksum: 0,
            });
        }

        let reply = snapshot.query_batch(&queries)?;
        // Communities are disjoint, so result pairs never repeat across
        // the ordered community pairs: a plain multiset checksum is a set
        // checksum here.
        let pairs: Vec<(u64, u64)> = reply
            .results
            .iter()
            .flat_map(|r| r.iter().map(|&(a, b)| (u64::from(a), u64::from(b))))
            .collect();
        Ok(WorkloadRun {
            queries: queries.len() as u64,
            results: pairs.len() as u64,
            checksum: checksum_pairs(pairs),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsr_core::{DsrIndex, UpdateOp};
    use dsr_datagen::social_network;
    use dsr_partition::{HashPartitioner, Partitioner};
    use dsr_reach::LocalIndexKind;
    use dsr_service::{QueryService, UpdateMode};
    use dsr_sync::Arc;

    fn social_service() -> QueryService {
        let social = social_network(120, 4, 6.0, 0.9, 0x7C);
        let partitioning = HashPartitioner::default().partition(&social.graph, 3);
        let index = DsrIndex::build(&social.graph, partitioning, LocalIndexKind::Dfs);
        QueryService::new(Arc::new(index))
    }

    #[test]
    fn community_pairs_run_through_the_snapshot() {
        let service = social_service();
        let workload = CommunityWorkload::new(3);
        let snap = service.snapshot();
        let run = workload.run(&snap).expect("in-process transport");
        // 3 communities pairwise: 6 ordered pairs, each one fused query.
        assert_eq!(run.queries, 6);
        assert!(run.results > 0, "planted communities interconnect");
        assert!(snap.generation() == 0);
    }

    #[test]
    fn pinned_run_is_reproducible_across_updates() {
        let service = social_service();
        let workload = CommunityWorkload::new(3);
        let snap = service.snapshot();
        let before = workload.run(&snap).expect("in-process transport");

        // Rip out a vertex's out-edges behind the pinned reader's back.
        let victim: Vec<UpdateOp> = snap
            .index()
            .reconstruct_graph()
            .edge_vec()
            .into_iter()
            .filter(|&(u, _)| u < 10)
            .map(|(u, v)| UpdateOp::Delete(u, v))
            .collect();
        assert!(!victim.is_empty());
        service
            .update(&victim, UpdateMode::Auto)
            .expect("auto forks around the pin");

        let after = workload.run(&snap).expect("in-process transport");
        assert_eq!(before, after, "pinned workload is immune to updates");

        drop(snap);
        let fresh = service.snapshot();
        let rerun = workload.run(&fresh).expect("in-process transport");
        assert_ne!(
            before.checksum, rerun.checksum,
            "deleting edges changes the community structure or reach"
        );
    }
}
