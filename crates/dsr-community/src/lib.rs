//! Community detection for the Section 4.5.B application.
//!
//! The paper detects communities on LiveJournal and Twitter with the
//! iterative algorithm by Blondel et al. \[3\] ("Louvain") and then runs DSR
//! queries between the members of two communities (Table 7). This crate
//! implements the Louvain method from scratch: greedy local moving that
//! maximizes modularity, followed by graph aggregation, repeated until the
//! modularity gain vanishes.
//!
//! The [`workload`] module packages the full experiment — Louvain over a
//! pinned service snapshot plus all-pairs set-reachability between the
//! largest communities — as a `dsr-service` `Workload`
//! ([`CommunityWorkload`]).

#![forbid(unsafe_code)]

pub mod louvain;
pub mod workload;

pub use louvain::{louvain, modularity, CommunityAssignment};
pub use workload::CommunityWorkload;
