//! The Louvain method (Blondel et al., 2008).
//!
//! The directed input graph is projected onto an undirected weighted graph
//! (edge weight = number of directed edges between the endpoints). The
//! algorithm then alternates two phases until modularity stops improving:
//!
//! 1. **Local moving** — every vertex is greedily moved to the neighboring
//!    community with the largest modularity gain.
//! 2. **Aggregation** — each community becomes a super-vertex; edge weights
//!    between super-vertices are the summed inter-community weights.
//!
//! The final assignment is propagated back to the original vertices.

use std::collections::HashMap;

use dsr_graph::{DiGraph, VertexId};

/// A community assignment over the original graph's vertices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommunityAssignment {
    /// `community[v]` is the community id of vertex `v` (dense ids).
    pub community: Vec<u32>,
    /// Number of communities.
    pub num_communities: usize,
}

impl CommunityAssignment {
    /// Members of community `c`.
    pub fn members(&self, c: u32) -> Vec<VertexId> {
        self.community
            .iter()
            .enumerate()
            .filter(|&(_, &x)| x == c)
            .map(|(v, _)| v as VertexId)
            .collect()
    }

    /// Sizes of all communities.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_communities];
        for &c in &self.community {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Community ids ordered by descending size (Table 7 picks the largest
    /// communities to query).
    pub fn by_size(&self) -> Vec<u32> {
        let sizes = self.sizes();
        let mut ids: Vec<u32> = (0..self.num_communities as u32).collect();
        ids.sort_by_key(|&c| std::cmp::Reverse(sizes[c as usize]));
        ids
    }
}

/// Undirected weighted adjacency used internally.
struct UndirectedWeighted {
    adjacency: Vec<Vec<(u32, f64)>>,
    /// Self-loop weight per vertex (from aggregation).
    self_loops: Vec<f64>,
    total_weight: f64,
}

impl UndirectedWeighted {
    fn from_digraph(graph: &DiGraph) -> Self {
        let n = graph.num_vertices();
        let mut maps: Vec<HashMap<u32, f64>> = vec![HashMap::new(); n];
        let mut self_loops = vec![0.0; n];
        let mut total_weight = 0.0;
        for (u, v) in graph.edges() {
            if u == v {
                self_loops[u as usize] += 1.0;
                total_weight += 1.0;
                continue;
            }
            *maps[u as usize].entry(v).or_insert(0.0) += 1.0;
            *maps[v as usize].entry(u).or_insert(0.0) += 1.0;
            total_weight += 1.0;
        }
        let adjacency = maps
            .into_iter()
            .map(|m| {
                let mut v: Vec<(u32, f64)> = m.into_iter().collect();
                v.sort_by_key(|&(w, _)| w);
                v
            })
            .collect();
        UndirectedWeighted {
            adjacency,
            self_loops,
            total_weight,
        }
    }

    fn len(&self) -> usize {
        self.adjacency.len()
    }

    fn weighted_degree(&self, v: usize) -> f64 {
        self.self_loops[v] * 2.0 + self.adjacency[v].iter().map(|&(_, w)| w).sum::<f64>()
    }
}

/// Runs the Louvain method and returns the community assignment.
///
/// `min_gain` is the modularity improvement threshold below which the
/// algorithm stops (the paper's implementation uses a similar cutoff).
pub fn louvain(graph: &DiGraph, min_gain: f64) -> CommunityAssignment {
    let n = graph.num_vertices();
    if n == 0 {
        return CommunityAssignment {
            community: Vec::new(),
            num_communities: 0,
        };
    }
    let mut level_graph = UndirectedWeighted::from_digraph(graph);
    // membership[v] = community of vertex v at the current level.
    let mut hierarchy: Vec<Vec<u32>> = Vec::new();

    loop {
        let (assignment, improved) = one_level(&level_graph, min_gain);
        let renumbered = renumber(&assignment);
        hierarchy.push(renumbered.clone());
        if !improved {
            break;
        }
        level_graph = aggregate(&level_graph, &renumbered);
        if level_graph.len() <= 1 {
            break;
        }
    }

    // Flatten the hierarchy: original vertex -> final community.
    let mut community: Vec<u32> = (0..n as u32).collect();
    // Start with the identity at level 0: hierarchy[0] maps original
    // vertices already.
    for (level, mapping) in hierarchy.iter().enumerate() {
        if level == 0 {
            community = mapping.clone();
        } else {
            for c in community.iter_mut() {
                *c = mapping[*c as usize];
            }
        }
    }
    let num_communities = community
        .iter()
        .copied()
        .max()
        .map_or(0, |m| m as usize + 1);
    CommunityAssignment {
        community,
        num_communities,
    }
}

/// One pass of greedy local moving. Returns the per-vertex community and
/// whether any improvement was made.
fn one_level(graph: &UndirectedWeighted, min_gain: f64) -> (Vec<u32>, bool) {
    let n = graph.len();
    let m2 = (graph.total_weight * 2.0).max(1e-12);
    let mut community: Vec<u32> = (0..n as u32).collect();
    // Sum of weighted degrees per community.
    let mut sigma_tot: Vec<f64> = (0..n).map(|v| graph.weighted_degree(v)).collect();
    let mut improved_any = false;

    loop {
        let mut moved = 0usize;
        for v in 0..n {
            let current = community[v];
            let degree = graph.weighted_degree(v);
            // Connection weight of v to each neighboring community.
            let mut conn: HashMap<u32, f64> = HashMap::new();
            for &(w, weight) in &graph.adjacency[v] {
                *conn.entry(community[w as usize]).or_insert(0.0) += weight;
            }
            let own_connection = conn.get(&current).copied().unwrap_or(0.0);
            // Remove v from its community.
            sigma_tot[current as usize] -= degree;
            // Iterate candidate communities in id order: HashMap iteration
            // order is randomized per instance, and equal-gain ties broken
            // by visit order would make the whole decomposition (and every
            // downstream query signature) vary run to run.
            let mut candidates: Vec<(u32, f64)> = conn.iter().map(|(&c, &w)| (c, w)).collect();
            candidates.sort_unstable_by_key(|&(c, _)| c);
            let mut best = (current, 0.0f64);
            for (c, weight) in candidates {
                let gain = weight - sigma_tot[c as usize] * degree / m2;
                if c == current {
                    // Gain of staying, computed consistently.
                    if gain > best.1 {
                        best = (c, gain);
                    }
                    continue;
                }
                if gain > best.1 + min_gain {
                    best = (c, gain);
                }
            }
            // Baseline: gain of re-joining the original community.
            let stay_gain = own_connection - sigma_tot[current as usize] * degree / m2;
            let (target, gain) = best;
            let target = if gain > stay_gain + min_gain {
                target
            } else {
                current
            };
            sigma_tot[target as usize] += degree;
            if target != current {
                community[v] = target;
                moved += 1;
                improved_any = true;
            }
        }
        if moved == 0 {
            break;
        }
    }
    (community, improved_any)
}

/// Renumbers community ids to a dense 0..k range.
fn renumber(assignment: &[u32]) -> Vec<u32> {
    let mut remap: HashMap<u32, u32> = HashMap::new();
    let mut next = 0u32;
    assignment
        .iter()
        .map(|&c| {
            *remap.entry(c).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            })
        })
        .collect()
}

/// Aggregates communities into super-vertices.
fn aggregate(graph: &UndirectedWeighted, assignment: &[u32]) -> UndirectedWeighted {
    let k = assignment
        .iter()
        .copied()
        .max()
        .map_or(0, |m| m as usize + 1);
    let mut maps: Vec<HashMap<u32, f64>> = vec![HashMap::new(); k];
    let mut self_loops = vec![0.0; k];
    let mut total_weight = 0.0;
    for v in 0..graph.len() {
        let cv = assignment[v];
        self_loops[cv as usize] += graph.self_loops[v];
        total_weight += graph.self_loops[v];
        for &(w, weight) in &graph.adjacency[v] {
            if (w as usize) < v {
                continue; // count each undirected edge once
            }
            let cw = assignment[w as usize];
            total_weight += weight;
            if cv == cw {
                self_loops[cv as usize] += weight;
            } else {
                *maps[cv as usize].entry(cw).or_insert(0.0) += weight;
                *maps[cw as usize].entry(cv).or_insert(0.0) += weight;
            }
        }
    }
    let adjacency = maps
        .into_iter()
        .map(|m| {
            let mut v: Vec<(u32, f64)> = m.into_iter().collect();
            v.sort_by_key(|&(w, _)| w);
            v
        })
        .collect();
    UndirectedWeighted {
        adjacency,
        self_loops,
        total_weight,
    }
}

/// Modularity of an assignment over the undirected projection of `graph`.
pub fn modularity(graph: &DiGraph, assignment: &[u32]) -> f64 {
    let projected = UndirectedWeighted::from_digraph(graph);
    let m2 = (projected.total_weight * 2.0).max(1e-12);
    let num_comm = assignment
        .iter()
        .copied()
        .max()
        .map_or(0, |m| m as usize + 1);
    let mut internal = vec![0.0; num_comm];
    let mut degree_sum = vec![0.0; num_comm];
    for v in 0..projected.len() {
        let cv = assignment[v] as usize;
        degree_sum[cv] += projected.weighted_degree(v);
        internal[cv] += projected.self_loops[v] * 2.0;
        for &(w, weight) in &projected.adjacency[v] {
            if assignment[w as usize] as usize == cv {
                internal[cv] += weight;
            }
        }
    }
    (0..num_comm)
        .map(|c| internal[c] / m2 - (degree_sum[c] / m2).powi(2))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsr_datagen::social_network;

    #[test]
    fn two_cliques_are_separated() {
        // Two 5-cliques joined by a single edge.
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in 0..5u32 {
                if a != b {
                    edges.push((a, b));
                }
            }
        }
        for a in 5..10u32 {
            for b in 5..10u32 {
                if a != b {
                    edges.push((a, b));
                }
            }
        }
        edges.push((0, 5));
        let g = DiGraph::from_edges(10, &edges);
        let result = louvain(&g, 1e-7);
        assert_eq!(result.num_communities, 2);
        let c0 = result.community[0];
        for v in 0..5 {
            assert_eq!(result.community[v], c0);
        }
        let c5 = result.community[5];
        for v in 5..10 {
            assert_eq!(result.community[v], c5);
        }
        assert_ne!(c0, c5);
        assert!(modularity(&g, &result.community) > 0.3);
    }

    #[test]
    fn recovers_planted_communities_reasonably() {
        let social = social_network(400, 4, 12.0, 0.95, 7);
        let result = louvain(&social.graph, 1e-7);
        // The detected partition must have high modularity and a small
        // number of communities (close to the planted 4).
        assert!(result.num_communities >= 2);
        assert!(result.num_communities <= 40);
        let q = modularity(&social.graph, &result.community);
        assert!(q > 0.4, "expected high modularity, got {q}");
    }

    #[test]
    fn assignment_helpers() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        let result = louvain(&g, 1e-7);
        assert_eq!(result.num_communities, 2);
        let sizes = result.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 4);
        let by_size = result.by_size();
        assert_eq!(by_size.len(), 2);
        let members: usize = (0..result.num_communities as u32)
            .map(|c| result.members(c).len())
            .sum();
        assert_eq!(members, 4);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let empty = louvain(&DiGraph::empty(0), 1e-7);
        assert_eq!(empty.num_communities, 0);
        let single = louvain(&DiGraph::empty(3), 1e-7);
        assert_eq!(single.community.len(), 3);
    }

    #[test]
    fn modularity_of_trivial_partition_is_nonpositive() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        // Every vertex in its own community: modularity <= 0.
        let q = modularity(&g, &[0, 1, 2, 3]);
        assert!(q <= 0.0 + 1e-9);
    }
}
