//! Pluggable communication substrate behind the scatter/exchange/gather
//! protocol.
//!
//! The engine's 3-round protocol (query scatter, one all-to-all data
//! exchange, result gather) is written against the [`Transport`] trait and
//! works with two backends:
//!
//! * [`InProcess`] — the default: messages are **moved** between in-process
//!   buffers (zero copies, zero serialization) and their size is accounted
//!   through [`MessageSize`]. This preserves the historical simulated-network
//!   semantics.
//! * [`WireTransport`] — every message is encoded into the compact framed
//!   byte format of [`crate::wire`] (length-prefixed frames, varint ids,
//!   delta-encoded sorted runs), shipped through **real OS pipes** and
//!   decoded on the receiving side. [`CommStats`] records the measured
//!   length of the bytes that crossed the pipe, so communication volume is
//!   no longer an estimate, and any type that cannot survive an
//!   encode/decode round trip breaks loudly instead of silently working
//!   because the value never left the process.
//!
//! Both backends debug-assert that `MessageSize::byte_size` equals the
//! encoded length of every message they move, which keeps the two sets of
//! statistics byte-identical.
//!
//! The all-to-all exchange takes **sparse per-destination send lists**
//! (`outgoing[src]` = list of `(dst, message)`), not the dense
//! `num_nodes × num_nodes` `Option` matrix of the historical `Network`
//! type: a k-partition query that only ships data between a few slave pairs
//! allocates proportional to the messages it sends, not to `k²`.
//!
//! A third backend, [`TcpTransport`], moves the
//! same collectives through **worker endpoints over TCP sockets** — either
//! self-hosted loopback workers (the `DSR_TRANSPORT=tcp` test matrix) or
//! external `dsr-node` processes; see [`crate::tcp`].
//!
//! Collectives return `Result`: the in-process and pipe backends cannot
//! meaningfully fail (they always return `Ok`), but a TCP cluster can lose
//! a worker mid-exchange, and that failure surfaces as a typed
//! [`TransportError`] instead of a panic or a hang.
//!
//! [`TransportKind`] selects a backend at runtime (e.g. from the
//! `DSR_TRANSPORT` environment variable — the hook the test matrix and CI
//! use to run the whole suite over every substrate), and [`DynTransport`]
//! is the corresponding enum-dispatched backend for callers that pick a
//! transport at construction time, such as the query service.

use dsr_sync::Mutex;
use std::io::{Read, Write};

use crate::error::TransportError;
use crate::message::MessageSize;
use crate::stats::CommStats;
use crate::tcp::TcpTransport;
use crate::topology::Topology;
use crate::wire::{self, Wire};

/// Environment variable read by [`TransportKind::from_env`].
pub const TRANSPORT_ENV: &str = "DSR_TRANSPORT";

/// Everything a message needs to cross a [`Transport`]: a wire codec, an
/// exact size, and the ability to move between threads.
pub trait WireMessage: Wire + MessageSize + Send {}

impl<T: Wire + MessageSize + Send> WireMessage for T {}

/// A communication substrate for the master/slaves cluster.
///
/// All three collectives record one communication round plus one message
/// per payload that crosses node boundaries (a node never pays for data it
/// sends to itself, mirroring how MPI ranks short-circuit local sends).
/// The master counts as a node distinct from every slave, as in the paper's
/// "5 slaves and 1 master" setup.
///
/// Transports are `Sync`: one instance is shared by the engine's parallel
/// slave tasks and, in the serving layer, by any number of client threads.
pub trait Transport: Sync {
    /// Human-readable backend name (used in experiment reports).
    fn name(&self) -> &'static str;

    /// Whether this backend delivers messages by moving them in place
    /// (no serialization). Callers that would otherwise clone one payload
    /// per recipient (e.g. the index build broadcasting each partition
    /// summary to every peer) may skip materializing the copies and
    /// account the traffic directly — the recorded statistics must be
    /// identical either way.
    fn is_zero_copy(&self) -> bool {
        false
    }

    /// The routing table this backend uses to place a
    /// `num_partitions`-wide collective: partition → ordered replica set
    /// of worker ids, with suspect tracking. The default is the
    /// [identity](Topology::identity) topology (partition `p` on logical
    /// node `p`, replication 1) — exactly what the in-process and pipe
    /// backends do. The TCP backend overrides this with its replicated,
    /// failover-aware table, which callers can consult to fail fast (or
    /// report) before launching a collective that cannot be placed.
    fn topology(&self, num_partitions: usize) -> Topology {
        Topology::identity(num_partitions)
    }

    /// Master → slaves: delivers `messages[i]` to slave `i`. Records one
    /// round and one message per slave.
    ///
    /// # Errors
    /// Returns a [`TransportError`] when the substrate fails (a TCP worker
    /// died, timed out, or broke the protocol). The in-process and pipe
    /// backends never fail.
    fn scatter<M: WireMessage>(
        &self,
        messages: Vec<M>,
        stats: &CommStats,
    ) -> Result<Vec<M>, TransportError>;

    /// Slaves → master: delivers one message per slave, in slave order.
    /// Records one round and one message per slave.
    ///
    /// # Errors
    /// See [`Transport::scatter`].
    fn gather<M: WireMessage>(
        &self,
        messages: Vec<M>,
        stats: &CommStats,
    ) -> Result<Vec<M>, TransportError>;

    /// All-to-all exchange over sparse send lists: `outgoing[src]` holds
    /// `(dst, message)` pairs. Returns `incoming` where `incoming[dst]`
    /// holds `(src, message)` pairs sorted by `src` (ties keep send order).
    ///
    /// Records one round plus one message per cross-node payload; a node
    /// sending to itself is delivered for free.
    ///
    /// # Errors
    /// See [`Transport::scatter`].
    ///
    /// # Panics
    /// Panics if `outgoing.len() != num_nodes` or any destination is out of
    /// range — shape violations are caller bugs, not runtime failures.
    fn all_to_all<M: WireMessage>(
        &self,
        num_nodes: usize,
        outgoing: Vec<Vec<(usize, M)>>,
        stats: &CommStats,
    ) -> Result<Vec<Vec<(usize, M)>>, TransportError>;
}

impl<T: Transport + ?Sized> Transport for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn is_zero_copy(&self) -> bool {
        (**self).is_zero_copy()
    }

    fn topology(&self, num_partitions: usize) -> Topology {
        (**self).topology(num_partitions)
    }

    fn scatter<M: WireMessage>(
        &self,
        messages: Vec<M>,
        stats: &CommStats,
    ) -> Result<Vec<M>, TransportError> {
        (**self).scatter(messages, stats)
    }

    fn gather<M: WireMessage>(
        &self,
        messages: Vec<M>,
        stats: &CommStats,
    ) -> Result<Vec<M>, TransportError> {
        (**self).gather(messages, stats)
    }

    fn all_to_all<M: WireMessage>(
        &self,
        num_nodes: usize,
        outgoing: Vec<Vec<(usize, M)>>,
        stats: &CommStats,
    ) -> Result<Vec<Vec<(usize, M)>>, TransportError> {
        (**self).all_to_all(num_nodes, outgoing, stats)
    }
}

/// Debug-time drift check: `byte_size` must equal the encoded length. Both
/// backends run it on every message, so an estimate that drifts from the
/// codec fails the test suite instead of skewing the reported volumes.
fn debug_assert_exact_size<M: WireMessage>(message: &M) {
    if cfg!(debug_assertions) {
        let encoded = wire::encode_to_vec(message);
        assert_eq!(
            encoded.len(),
            message.byte_size(),
            "MessageSize::byte_size drifted from the wire encoding"
        );
    }
}

// ---------------------------------------------------------------------------
// In-process backend.
// ---------------------------------------------------------------------------

/// Zero-copy in-process backend: messages are moved, never serialized;
/// sizes come from [`MessageSize`]. The default transport.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InProcess;

impl Transport for InProcess {
    fn name(&self) -> &'static str {
        "in-process"
    }

    fn is_zero_copy(&self) -> bool {
        true
    }

    fn scatter<M: WireMessage>(
        &self,
        messages: Vec<M>,
        stats: &CommStats,
    ) -> Result<Vec<M>, TransportError> {
        stats.record_round();
        for message in &messages {
            debug_assert_exact_size(message);
            stats.record_message(message.byte_size());
        }
        Ok(messages)
    }

    fn gather<M: WireMessage>(
        &self,
        messages: Vec<M>,
        stats: &CommStats,
    ) -> Result<Vec<M>, TransportError> {
        stats.record_round();
        for message in &messages {
            debug_assert_exact_size(message);
            stats.record_message(message.byte_size());
        }
        Ok(messages)
    }

    fn all_to_all<M: WireMessage>(
        &self,
        num_nodes: usize,
        outgoing: Vec<Vec<(usize, M)>>,
        stats: &CommStats,
    ) -> Result<Vec<Vec<(usize, M)>>, TransportError> {
        assert_eq!(outgoing.len(), num_nodes, "one send list per node");
        stats.record_round();
        let mut incoming: Vec<Vec<(usize, M)>> = (0..num_nodes).map(|_| Vec::new()).collect();
        // Iterating sources in ascending order keeps each destination's
        // inbox sorted by source without an explicit sort.
        for (src, sends) in outgoing.into_iter().enumerate() {
            for (dst, message) in sends {
                assert!(dst < num_nodes, "destination {dst} out of range");
                if src != dst {
                    debug_assert_exact_size(&message);
                    stats.record_message(message.byte_size());
                }
                incoming[dst].push((src, message));
            }
        }
        Ok(incoming)
    }
}

// ---------------------------------------------------------------------------
// Wire backend.
// ---------------------------------------------------------------------------

/// One directed byte channel (an anonymous OS pipe).
struct Link {
    tx: Mutex<std::io::PipeWriter>,
    rx: Mutex<std::io::PipeReader>,
}

impl Link {
    fn new() -> Link {
        let (rx, tx) = std::io::pipe().expect("create wire-transport pipe");
        Link {
            tx: Mutex::new(tx),
            rx: Mutex::new(rx),
        }
    }
}

/// The pipe mesh: one directed link per slave pair plus master lanes. Grown
/// lazily to the largest node count seen, so one transport serves indexes
/// of any size.
struct Links {
    /// `mesh[src][dst]`, diagonal unused (self-sends never hit a pipe).
    mesh: Vec<Vec<Link>>,
    /// Master → slave lanes (scatter).
    to_slave: Vec<Link>,
    /// Slave → master lanes (gather).
    from_slave: Vec<Link>,
}

impl Links {
    fn ensure(&mut self, num_nodes: usize) {
        while self.to_slave.len() < num_nodes {
            self.to_slave.push(Link::new());
            self.from_slave.push(Link::new());
        }
        for row in &mut self.mesh {
            while row.len() < num_nodes {
                row.push(Link::new());
            }
        }
        while self.mesh.len() < num_nodes {
            self.mesh
                .push((0..num_nodes).map(|_| Link::new()).collect());
        }
    }
}

/// Serialized-bytes backend: every message is wire-encoded, written into a
/// real OS pipe, and decoded on the receiving side.
///
/// The pipe mesh is created once and reused across collectives; collectives
/// are internally serialized (one at a time per transport), so a single
/// `WireTransport` can safely be shared by concurrent query threads — they
/// take turns on the wire, exactly like queries sharing one physical NIC.
pub struct WireTransport {
    links: Mutex<Links>,
}

impl std::fmt::Debug for WireTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireTransport").finish_non_exhaustive()
    }
}

impl Default for WireTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl WireTransport {
    /// Creates a transport with an empty pipe mesh; links are created on
    /// first use and reused afterwards.
    pub fn new() -> Self {
        WireTransport {
            links: Mutex::new(Links {
                mesh: Vec::new(),
                to_slave: Vec::new(),
                from_slave: Vec::new(),
            }),
        }
    }

    fn encode_and_count<M: WireMessage>(message: &M, stats: &CommStats) -> Vec<u8> {
        let encoded = wire::encode_to_vec(message);
        debug_assert_eq!(
            encoded.len(),
            message.byte_size(),
            "MessageSize::byte_size drifted from the wire encoding"
        );
        // The measured length of the bytes that will cross the pipe.
        stats.record_message(encoded.len());
        encoded
    }
}

/// Writes `frames` as a varint frame count followed by varint-length-prefixed
/// payloads, then flushes.
fn write_frames(writer: &mut impl Write, frames: &[Vec<u8>]) {
    let mut header = Vec::with_capacity(wire::MAX_VARINT_LEN);
    wire::put_varint(&mut header, frames.len() as u64);
    writer.write_all(&header).expect("write frame count");
    for frame in frames {
        header.clear();
        wire::put_varint(&mut header, frame.len() as u64);
        writer.write_all(&header).expect("write frame length");
        writer.write_all(frame).expect("write frame payload");
    }
    writer.flush().expect("flush wire frames");
}

/// Reads one varint from a byte stream, with the same overflow policy as
/// [`WireReader::varint`](crate::wire::WireReader::varint): bits beyond the
/// 64th fail loudly instead of being silently shifted out.
fn read_stream_varint(reader: &mut impl Read) -> u64 {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        reader.read_exact(&mut byte).expect("read varint byte");
        assert!(
            shift < 63 || byte[0] & 0x7F <= 1,
            "wire varint overflow in frame header"
        );
        value |= u64::from(byte[0] & 0x7F) << shift;
        if byte[0] & 0x80 == 0 {
            return value;
        }
        shift += 7;
        assert!(shift < 64, "wire varint overflow in frame header");
    }
}

/// Reads the frame sequence written by [`write_frames`].
fn read_frames(reader: &mut impl Read) -> Vec<Vec<u8>> {
    let count = read_stream_varint(reader);
    let mut frames = Vec::with_capacity(count.min(1024) as usize);
    for _ in 0..count {
        let len = read_stream_varint(reader) as usize;
        let mut payload = vec![0u8; len];
        reader.read_exact(&mut payload).expect("read frame payload");
        frames.push(payload);
    }
    frames
}

fn decode_message<M: WireMessage>(payload: &[u8]) -> M {
    wire::decode_exact(payload).expect("decode wire message")
}

impl Transport for WireTransport {
    fn name(&self) -> &'static str {
        "wire"
    }

    fn scatter<M: WireMessage>(
        &self,
        messages: Vec<M>,
        stats: &CommStats,
    ) -> Result<Vec<M>, TransportError> {
        stats.record_round();
        let k = messages.len();
        let mut links = dsr_sync::lock(&self.links);
        links.ensure(k);
        let links = &*links;
        let encoded: Vec<Vec<u8>> = messages
            .iter()
            .map(|m| Self::encode_and_count(m, stats))
            .collect();
        drop(messages);
        let mut delivered: Vec<Option<M>> = (0..k).map(|_| None).collect();
        dsr_sync::thread::scope(|scope| {
            // One receiving thread per slave; the master writes from the
            // calling thread. Dedicated readers keep every pipe drained, so
            // a scatter larger than the pipe buffer cannot deadlock.
            let readers: Vec<_> = (0..k)
                .map(|i| {
                    scope.spawn(move || {
                        let mut rx = dsr_sync::lock(&links.to_slave[i].rx);
                        let frames = read_frames(&mut *rx);
                        assert_eq!(frames.len(), 1, "scatter delivers one frame per slave");
                        decode_message::<M>(&frames[0])
                    })
                })
                .collect();
            for (i, frame) in encoded.iter().enumerate() {
                let mut tx = dsr_sync::lock(&links.to_slave[i].tx);
                write_frames(&mut *tx, std::slice::from_ref(frame));
            }
            for (slot, reader) in delivered.iter_mut().zip(readers) {
                *slot = Some(reader.join().expect("scatter reader thread"));
            }
        });
        Ok(delivered
            .into_iter()
            .map(|m| m.expect("scatter delivered"))
            .collect())
    }

    fn gather<M: WireMessage>(
        &self,
        messages: Vec<M>,
        stats: &CommStats,
    ) -> Result<Vec<M>, TransportError> {
        stats.record_round();
        let k = messages.len();
        let mut links = dsr_sync::lock(&self.links);
        links.ensure(k);
        let links = &*links;
        let encoded: Vec<Vec<u8>> = messages
            .iter()
            .map(|m| Self::encode_and_count(m, stats))
            .collect();
        drop(messages);
        let mut gathered: Vec<M> = Vec::with_capacity(k);
        dsr_sync::thread::scope(|scope| {
            // One sending thread per slave; the master reads in slave order
            // from the calling thread and drains each lane as it goes.
            for (i, frame) in encoded.iter().enumerate() {
                scope.spawn(move || {
                    let mut tx = dsr_sync::lock(&links.from_slave[i].tx);
                    write_frames(&mut *tx, std::slice::from_ref(frame));
                });
            }
            for i in 0..k {
                let mut rx = dsr_sync::lock(&links.from_slave[i].rx);
                let frames = read_frames(&mut *rx);
                assert_eq!(frames.len(), 1, "gather delivers one frame per slave");
                gathered.push(decode_message::<M>(&frames[0]));
            }
        });
        Ok(gathered)
    }

    fn all_to_all<M: WireMessage>(
        &self,
        num_nodes: usize,
        outgoing: Vec<Vec<(usize, M)>>,
        stats: &CommStats,
    ) -> Result<Vec<Vec<(usize, M)>>, TransportError> {
        assert_eq!(outgoing.len(), num_nodes, "one send list per node");
        stats.record_round();
        let mut links = dsr_sync::lock(&self.links);
        links.ensure(num_nodes);
        let links = &*links;

        // Encode every cross-node message; self-sends skip the pipes (and
        // the stats), exactly like the in-process backend.
        let mut frames: Vec<Vec<Vec<Vec<u8>>>> = (0..num_nodes)
            .map(|_| (0..num_nodes).map(|_| Vec::new()).collect())
            .collect();
        let mut self_sends: Vec<Vec<M>> = (0..num_nodes).map(|_| Vec::new()).collect();
        for (src, sends) in outgoing.into_iter().enumerate() {
            for (dst, message) in sends {
                assert!(dst < num_nodes, "destination {dst} out of range");
                if dst == src {
                    self_sends[src].push(message);
                } else {
                    frames[src][dst].push(Self::encode_and_count(&message, stats));
                }
            }
        }

        let mut incoming: Vec<Vec<(usize, M)>> = (0..num_nodes).map(|_| Vec::new()).collect();
        dsr_sync::thread::scope(|scope| {
            // One writer thread per source and one reader thread per
            // destination. Readers are always draining, so a writer blocked
            // on a full pipe is eventually unblocked — no deadlock however
            // large the exchange.
            for (src, row) in frames.iter().enumerate() {
                scope.spawn(move || {
                    for (dst, payloads) in row.iter().enumerate() {
                        if dst == src {
                            continue;
                        }
                        let mut tx = dsr_sync::lock(&links.mesh[src][dst].tx);
                        write_frames(&mut *tx, payloads);
                    }
                });
            }
            let readers: Vec<_> = (0..num_nodes)
                .map(|dst| {
                    scope.spawn(move || {
                        let mut received: Vec<(usize, M)> = Vec::new();
                        for src in 0..num_nodes {
                            if src == dst {
                                continue;
                            }
                            let mut rx = dsr_sync::lock(&links.mesh[src][dst].rx);
                            for payload in read_frames(&mut *rx) {
                                received.push((src, decode_message::<M>(&payload)));
                            }
                        }
                        received
                    })
                })
                .collect();
            for (dst, reader) in readers.into_iter().enumerate() {
                incoming[dst] = reader.join().expect("all-to-all reader thread");
            }
        });

        // Merge self-sends at their sorted position (readers collected the
        // cross-node messages in ascending source order already).
        for (node, messages) in self_sends.into_iter().enumerate() {
            let at = incoming[node].partition_point(|&(src, _)| src < node);
            for (offset, message) in messages.into_iter().enumerate() {
                incoming[node].insert(at + offset, (node, message));
            }
        }
        Ok(incoming)
    }
}

// ---------------------------------------------------------------------------
// Runtime selection.
// ---------------------------------------------------------------------------

/// Which transport backend to use; selectable from the environment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// Zero-copy in-process moves (the default).
    #[default]
    InProcess,
    /// Serialized framed bytes over OS pipes.
    Wire,
    /// Serialized framed bytes over TCP sockets and worker endpoints
    /// (self-hosted loopback workers; see
    /// [`TcpTransport`] for attaching to external
    /// `dsr-node` processes).
    Tcp,
}

/// Error returned when parsing a [`TransportKind`] from a string fails.
///
/// The message lists the accepted values, so a typo in a CI matrix or a
/// service configuration file reports the fix alongside the failure.
#[derive(Clone, PartialEq, Eq)]
pub struct ParseTransportError {
    value: String,
}

impl ParseTransportError {
    /// The rejected input.
    pub fn value(&self) -> &str {
        &self.value
    }
}

impl std::fmt::Display for ParseTransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unrecognized transport {:?}; valid values: {}",
            self.value,
            TransportKind::VALID_NAMES.join(", ")
        )
    }
}

// `expect`/`unwrap` render `Debug`, so make it as readable as `Display`:
// the valid-values listing must survive into the panic message.
impl std::fmt::Debug for ParseTransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for ParseTransportError {}

impl std::str::FromStr for TransportKind {
    type Err = ParseTransportError;

    /// Parses a backend name. Accepted values (case-insensitive): empty or
    /// `in-process`/`in_process`/`inprocess` for [`InProcess`], `wire` for
    /// [`WireTransport`], `tcp` for the loopback
    /// [`TcpTransport`]. The error lists the
    /// valid values.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "" | "in-process" | "in_process" | "inprocess" => Ok(TransportKind::InProcess),
            "wire" => Ok(TransportKind::Wire),
            "tcp" => Ok(TransportKind::Tcp),
            _ => Err(ParseTransportError {
                value: s.to_string(),
            }),
        }
    }
}

impl TransportKind {
    /// Canonical names accepted by the [`FromStr`](std::str::FromStr)
    /// parser (spelling variants of `in-process` are also recognized).
    pub const VALID_NAMES: [&'static str; 3] = ["in-process", "wire", "tcp"];

    /// Reads the `DSR_TRANSPORT` environment variable: `wire` selects
    /// [`WireTransport`], `tcp` selects a loopback
    /// [`TcpTransport`], `in-process` (or unset)
    /// selects [`InProcess`]. The value goes through the
    /// [`FromStr`](std::str::FromStr) parser that
    /// `ServiceConfig::from_env` and the experiment binaries reuse.
    ///
    /// # Panics
    /// Panics on an unrecognized value — a misconfigured CI matrix should
    /// fail loudly (listing the valid values), not silently test the
    /// default backend twice.
    pub fn from_env() -> Self {
        match std::env::var(TRANSPORT_ENV) {
            Err(_) => TransportKind::InProcess,
            Ok(value) => value.parse().expect("invalid DSR_TRANSPORT"),
        }
    }

    /// Instantiates the selected backend. [`TransportKind::Tcp`] creates a
    /// **loopback** cluster (self-hosted worker threads on `127.0.0.1`
    /// sockets); to attach to external `dsr-node` workers, build a
    /// [`TcpTransport`] with [`TcpTransport::connect`] and wrap it in
    /// [`DynTransport::Tcp`] yourself.
    pub fn create(self) -> DynTransport {
        match self {
            TransportKind::InProcess => DynTransport::InProcess(InProcess),
            TransportKind::Wire => DynTransport::Wire(WireTransport::new()),
            TransportKind::Tcp => DynTransport::Tcp(TcpTransport::loopback()),
        }
    }
}

/// Enum-dispatched transport for callers that select a backend at runtime
/// (service construction, the `DSR_TRANSPORT` test matrix).
#[derive(Debug)]
pub enum DynTransport {
    /// See [`InProcess`].
    InProcess(InProcess),
    /// See [`WireTransport`].
    Wire(WireTransport),
    /// See [`TcpTransport`].
    Tcp(TcpTransport),
}

impl DynTransport {
    /// The backend selected by the `DSR_TRANSPORT` environment variable.
    pub fn from_env() -> Self {
        TransportKind::from_env().create()
    }

    /// The kind of backend this is.
    pub fn kind(&self) -> TransportKind {
        match self {
            DynTransport::InProcess(_) => TransportKind::InProcess,
            DynTransport::Wire(_) => TransportKind::Wire,
            DynTransport::Tcp(_) => TransportKind::Tcp,
        }
    }

    /// The TCP backend, when that is what this is (the only backend with
    /// replication/failover machinery worth poking at).
    pub fn as_tcp(&self) -> Option<&TcpTransport> {
        match self {
            DynTransport::Tcp(t) => Some(t),
            _ => None,
        }
    }

    /// Failover counters of the TCP backend; `None` for backends that
    /// cannot fail over (their counters are definitionally zero).
    pub fn failover_stats(&self) -> Option<&crate::stats::FailoverStats> {
        self.as_tcp().map(TcpTransport::failover_stats)
    }
}

impl Transport for DynTransport {
    fn name(&self) -> &'static str {
        match self {
            DynTransport::InProcess(t) => t.name(),
            DynTransport::Wire(t) => t.name(),
            DynTransport::Tcp(t) => t.name(),
        }
    }

    fn is_zero_copy(&self) -> bool {
        match self {
            DynTransport::InProcess(t) => t.is_zero_copy(),
            DynTransport::Wire(t) => t.is_zero_copy(),
            DynTransport::Tcp(t) => t.is_zero_copy(),
        }
    }

    fn topology(&self, num_partitions: usize) -> Topology {
        match self {
            DynTransport::InProcess(t) => t.topology(num_partitions),
            DynTransport::Wire(t) => t.topology(num_partitions),
            DynTransport::Tcp(t) => t.topology(num_partitions),
        }
    }

    fn scatter<M: WireMessage>(
        &self,
        messages: Vec<M>,
        stats: &CommStats,
    ) -> Result<Vec<M>, TransportError> {
        match self {
            DynTransport::InProcess(t) => t.scatter(messages, stats),
            DynTransport::Wire(t) => t.scatter(messages, stats),
            DynTransport::Tcp(t) => t.scatter(messages, stats),
        }
    }

    fn gather<M: WireMessage>(
        &self,
        messages: Vec<M>,
        stats: &CommStats,
    ) -> Result<Vec<M>, TransportError> {
        match self {
            DynTransport::InProcess(t) => t.gather(messages, stats),
            DynTransport::Wire(t) => t.gather(messages, stats),
            DynTransport::Tcp(t) => t.gather(messages, stats),
        }
    }

    fn all_to_all<M: WireMessage>(
        &self,
        num_nodes: usize,
        outgoing: Vec<Vec<(usize, M)>>,
        stats: &CommStats,
    ) -> Result<Vec<Vec<(usize, M)>>, TransportError> {
        match self {
            DynTransport::InProcess(t) => t.all_to_all(num_nodes, outgoing, stats),
            DynTransport::Wire(t) => t.all_to_all(num_nodes, outgoing, stats),
            DynTransport::Tcp(t) => t.all_to_all(num_nodes, outgoing, stats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs the same exchange on all three backends and checks they agree
    /// on payloads *and* statistics.
    fn both_backends(test: impl Fn(&DynTransport)) {
        test(&DynTransport::InProcess(InProcess));
        test(&DynTransport::Wire(WireTransport::new()));
        test(&DynTransport::Tcp(TcpTransport::loopback()));
    }

    #[test]
    fn all_to_all_routes_and_counts() {
        both_backends(|transport| {
            let stats = CommStats::new();
            // Node i sends (i, j) to node j, skipping 2 -> 2.
            let outgoing: Vec<Vec<(usize, Vec<u32>)>> = (0..3)
                .map(|i| {
                    (0..3)
                        .filter(|&j| !(i == 2 && j == 2))
                        .map(|j| (j, vec![i as u32, j as u32]))
                        .collect()
                })
                .collect();
            let incoming = transport.all_to_all(3, outgoing, &stats).expect("exchange");
            assert_eq!(incoming[1][0], (0, vec![0, 1]));
            assert_eq!(incoming[0][2], (2, vec![2, 0]));
            // Inboxes are sorted by source, self-sends included in place.
            for (dst, inbox) in incoming.iter().enumerate() {
                let sources: Vec<usize> = inbox.iter().map(|&(src, _)| src).collect();
                let expected: Vec<usize> = (0..3).filter(|&s| !(s == 2 && dst == 2)).collect();
                assert_eq!(sources, expected, "inbox of {dst} ({})", transport.name());
            }
            assert_eq!(stats.rounds(), 1);
            // 8 messages total, 6 of them cross-node, 3 bytes each
            // (varint count + two one-byte ids).
            assert_eq!(stats.messages(), 6);
            assert_eq!(stats.bytes(), 6 * 3);
        });
    }

    #[test]
    fn gather_counts_each_slave() {
        both_backends(|transport| {
            let stats = CommStats::new();
            let gathered = transport
                .gather(vec![1u32, 2, 3, 4], &stats)
                .expect("gather");
            assert_eq!(gathered, vec![1, 2, 3, 4]);
            assert_eq!(stats.messages(), 4);
            assert_eq!(stats.bytes(), 4);
            assert_eq!(stats.rounds(), 1);
        });
    }

    #[test]
    fn scatter_delivers_in_order() {
        both_backends(|transport| {
            let stats = CommStats::new();
            let messages: Vec<Vec<u32>> = (0..4).map(|i| vec![i, i + 10, 300]).collect();
            let delivered = transport
                .scatter(messages.clone(), &stats)
                .expect("scatter");
            assert_eq!(delivered, messages);
            assert_eq!(stats.rounds(), 1);
            assert_eq!(stats.messages(), 4);
            // 1 count byte + 1 + 1 + 2 bytes per message.
            assert_eq!(stats.bytes(), 4 * 5);
        });
    }

    #[test]
    fn backends_agree_on_stats() {
        type SendLists = Vec<Vec<(usize, Vec<(u32, u32)>)>>;
        let outgoing = |k: usize| -> SendLists {
            (0..k)
                .map(|i| {
                    (0..k)
                        .filter(|&j| (i + j) % 2 == 0)
                        .map(|j| (j, vec![(i as u32, j as u32), (1000, 2000)]))
                        .collect()
                })
                .collect()
        };
        let in_process = CommStats::new();
        let wire = CommStats::new();
        let tcp = CommStats::new();
        let a = InProcess
            .all_to_all(5, outgoing(5), &in_process)
            .expect("in-process");
        let b = WireTransport::new()
            .all_to_all(5, outgoing(5), &wire)
            .expect("wire");
        let c = TcpTransport::loopback()
            .all_to_all(5, outgoing(5), &tcp)
            .expect("tcp");
        assert_eq!(a, b, "payloads agree (wire)");
        assert_eq!(a, c, "payloads agree (tcp)");
        assert_eq!(in_process.snapshot(), wire.snapshot(), "stats agree");
        assert_eq!(in_process.snapshot(), tcp.snapshot(), "tcp stats agree");
    }

    #[test]
    fn wire_survives_exchanges_larger_than_the_pipe_buffer() {
        // Default pipe capacity on Linux is 64 KiB; ship ~1 MiB per
        // direction between two nodes to prove the writer/reader threading
        // cannot deadlock on full pipes.
        let transport = WireTransport::new();
        let stats = CommStats::new();
        let big: Vec<u32> = (0..300_000u32).collect();
        let outgoing = vec![vec![(1usize, big.clone())], vec![(0usize, big.clone())]];
        let incoming = transport.all_to_all(2, outgoing, &stats).expect("exchange");
        assert_eq!(incoming[0], vec![(1usize, big.clone())]);
        assert_eq!(incoming[1], vec![(0usize, big)]);
        assert!(stats.bytes() > 2 * 64 * 1024);
    }

    #[test]
    fn wire_mesh_grows_across_calls() {
        let transport = WireTransport::new();
        let stats = CommStats::new();
        for k in [2usize, 5, 3] {
            let outgoing: Vec<Vec<(usize, u32)>> =
                (0..k).map(|i| vec![((i + 1) % k, i as u32)]).collect();
            let incoming = transport.all_to_all(k, outgoing, &stats).expect("exchange");
            for dst in 0..k {
                let expected_src = (dst + k - 1) % k;
                assert_eq!(incoming[dst], vec![(expected_src, expected_src as u32)]);
            }
        }
    }

    #[test]
    fn wire_transport_is_shareable_across_threads() {
        let transport = WireTransport::new();
        dsr_sync::thread::scope(|scope| {
            for t in 0..4u32 {
                let transport = &transport;
                scope.spawn(move || {
                    for round in 0..8u32 {
                        let stats = CommStats::new();
                        let payload = vec![t, round];
                        let outgoing = vec![vec![(1usize, payload.clone())], Vec::new()];
                        let incoming = transport.all_to_all(2, outgoing, &stats).expect("exchange");
                        assert_eq!(incoming[1], vec![(0usize, payload)]);
                    }
                });
            }
        });
    }

    #[test]
    fn kind_parsing() {
        for ok in ["", "in-process", "In_Process", "INPROCESS"] {
            assert_eq!(ok.parse::<TransportKind>(), Ok(TransportKind::InProcess));
        }
        assert_eq!("Wire".parse::<TransportKind>(), Ok(TransportKind::Wire));
        assert_eq!("TCP".parse::<TransportKind>(), Ok(TransportKind::Tcp));
        let err = "udp".parse::<TransportKind>().unwrap_err();
        assert_eq!(err.value(), "udp");
        let message = err.to_string();
        assert!(message.contains("in-process"), "lists valid values");
        assert!(message.contains("wire"), "lists valid values");
        assert!(message.contains("tcp"), "lists valid values");
        // The Debug rendering (what `.expect` prints) carries the same
        // guidance.
        assert_eq!(format!("{err:?}"), message);
    }

    #[test]
    fn kind_selection() {
        assert_eq!(TransportKind::default(), TransportKind::InProcess);
        assert_eq!(
            TransportKind::InProcess.create().kind(),
            TransportKind::InProcess
        );
        assert_eq!(TransportKind::Wire.create().kind(), TransportKind::Wire);
        assert_eq!(TransportKind::Wire.create().name(), "wire");
        assert_eq!(TransportKind::Tcp.create().kind(), TransportKind::Tcp);
        assert_eq!(TransportKind::Tcp.create().name(), "tcp");
        assert_eq!(InProcess.name(), "in-process");
    }

    #[test]
    #[should_panic(expected = "one send list per node")]
    fn wrong_shape_panics() {
        let stats = CommStats::new();
        let _ = InProcess.all_to_all(2, vec![vec![(0usize, 1u32)]], &stats);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_destination_panics() {
        let stats = CommStats::new();
        let _ = InProcess.all_to_all(2, vec![vec![(5usize, 1u32)], Vec::new()], &stats);
    }
}
