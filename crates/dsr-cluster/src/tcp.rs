//! TCP transport: the scatter/exchange/gather collectives over real
//! sockets and real worker endpoints.
//!
//! This is the deployment backend of the reproduction. Where
//! [`WireTransport`](crate::WireTransport) ships encoded frames through OS
//! pipes inside one process, [`TcpTransport`] routes every frame through
//! **worker endpoints** speaking a length-framed protocol over
//! [`std::net::TcpStream`]:
//!
//! * **scatter / gather** — the master round-trips each slave's frame
//!   through the worker hosting that partition (`ECHO` op), so every
//!   payload is encoded, crosses a socket, and is decoded from the bytes
//!   the worker actually returned.
//! * **all-to-all** — each payload takes the realistic two-hop route
//!   `master → worker(src) → worker(dst) → master`: workers forward frames
//!   to each other over a lazily built **worker-to-worker mesh** of
//!   directed TCP lanes, exactly like slaves exchanging Step-2 buffers in
//!   the paper's MPI deployment. [`CommStats`] counts each logical message
//!   once (at encode time), so the three backends report byte-identical
//!   volumes.
//!
//! Two modes share all of this code:
//!
//! * [`TcpTransport::loopback`] self-hosts its workers as threads inside
//!   the current process, each serving a real `127.0.0.1` socket. This is
//!   what `DSR_TRANSPORT=tcp` uses, so the whole test matrix runs over
//!   genuine sockets with zero orchestration.
//! * [`TcpTransport::connect`] attaches to **external worker processes**
//!   (the `dsr-node` binary) described by a [`ClusterSpec`]. Workers host
//!   one or more partitions (`partition → partition % workers`).
//!
//! Failures are values, not panics: a worker dying mid-exchange, a
//! handshake against a non-protocol peer, a timed-out read or an oversized
//! frame all surface as a typed [`TransportError`] from the collective
//! that observed them.
//!
//! # Protocol
//!
//! Every connection starts with a hello (`b"DSRT"`, protocol version,
//! role). The master assigns each worker its id and the cluster topology
//! (the peer address list); topology updates are re-sent when a loopback
//! mesh grows. Frames are varint-length-prefixed byte strings with a hard
//! [`MAX_FRAME_LEN`] sanity limit, checked **before** any allocation.

use dsr_sync::{Arc, Condvar, Mutex};
use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::error::TransportError;
use crate::fault::{FaultPhase, FaultPlan};
use crate::stats::{CommStats, FailoverStats};
use crate::topology::Topology;
use crate::transport::{Transport, WireMessage};
use crate::wire;

/// Connection magic: four bytes every hello starts with.
pub const MAGIC: [u8; 4] = *b"DSRT";

/// Protocol version carried in every hello. Version 2 added session ids to
/// both hello forms and explicit worker routing to the exchange op
/// (partition-addressed replication).
pub const PROTOCOL_VERSION: u64 = 2;

/// Hard upper bound on a single frame's announced length. A corrupt stream
/// (or a peer that is not speaking the protocol) is rejected before the
/// transport allocates a buffer for it.
pub const MAX_FRAME_LEN: u64 = 256 * 1024 * 1024;

const ROLE_MASTER: u64 = 0;
const ROLE_PEER: u64 = 1;

/// First failover retry delay; doubles per retry up to
/// [`FAILOVER_BACKOFF_MAX`].
const FAILOVER_BACKOFF_START: Duration = Duration::from_millis(25);
const FAILOVER_BACKOFF_MAX: Duration = Duration::from_millis(400);

/// Connect timeout for liveness probes (failure attribution and rejoin
/// attempts): a dead process refuses instantly, so this stays short.
const PROBE_TIMEOUT: Duration = Duration::from_millis(500);

const OP_ECHO: u64 = 1;
const OP_TOPOLOGY: u64 = 2;
const OP_EXCHANGE: u64 = 3;
const OP_SHUTDOWN: u64 = 4;

// ---------------------------------------------------------------------------
// Frame codec over byte streams.
// ---------------------------------------------------------------------------

/// Low-level framing failure, classified into [`TransportError`] by the
/// caller (which knows the peer and the phase).
#[derive(Debug)]
pub(crate) enum FrameIoError {
    /// The underlying read/write failed (includes clean EOF).
    Io(std::io::Error),
    /// A varint exceeded 64 bits.
    VarintOverflow,
    /// A frame announced a length beyond [`MAX_FRAME_LEN`].
    Oversized(u64),
}

impl FrameIoError {
    fn classify(self, peer: &str, context: &str) -> TransportError {
        match self {
            FrameIoError::Io(source) => TransportError::from_io(peer, context, source),
            FrameIoError::VarintOverflow => TransportError::Protocol {
                peer: peer.to_string(),
                reason: format!("varint overflow during {context}"),
            },
            FrameIoError::Oversized(announced) => TransportError::OversizedFrame {
                announced,
                limit: MAX_FRAME_LEN,
            },
        }
    }
}

impl From<std::io::Error> for FrameIoError {
    fn from(err: std::io::Error) -> Self {
        FrameIoError::Io(err)
    }
}

/// Reads one LEB128 varint from a byte stream.
pub(crate) fn read_varint(reader: &mut impl Read) -> Result<u64, FrameIoError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        reader.read_exact(&mut byte)?;
        if shift == 63 && byte[0] & 0x7F > 1 {
            return Err(FrameIoError::VarintOverflow);
        }
        value |= u64::from(byte[0] & 0x7F) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift >= 64 {
            return Err(FrameIoError::VarintOverflow);
        }
    }
}

/// Reads one varint-length-prefixed frame, rejecting announced lengths
/// beyond [`MAX_FRAME_LEN`] *before* allocating.
pub(crate) fn read_frame(reader: &mut impl Read) -> Result<Vec<u8>, FrameIoError> {
    let len = read_varint(reader)?;
    if len > MAX_FRAME_LEN {
        return Err(FrameIoError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    Ok(payload)
}

/// Appends a varint-length-prefixed frame to `buf`.
pub(crate) fn put_frame(buf: &mut Vec<u8>, frame: &[u8]) {
    wire::put_varint(buf, frame.len() as u64);
    buf.extend_from_slice(frame);
}

/// Appends a varint-length-prefixed UTF-8 string to `buf`.
fn put_string(buf: &mut Vec<u8>, s: &str) {
    put_frame(buf, s.as_bytes());
}

fn read_string(reader: &mut impl Read) -> Result<String, FrameIoError> {
    let bytes = read_frame(reader)?;
    String::from_utf8(bytes).map_err(|_| {
        FrameIoError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "address is not UTF-8",
        ))
    })
}

// ---------------------------------------------------------------------------
// Cluster specification.
// ---------------------------------------------------------------------------

/// Describes a TCP cluster: the worker addresses and the socket policies.
///
/// Parsed from a minimal TOML subset ([`ClusterSpec::from_toml_str`] /
/// [`ClusterSpec::from_file`]) or from the environment
/// ([`ClusterSpec::from_env`]):
///
/// ```toml
/// # cluster.toml — addresses in partition order; partition p is hosted by
/// # worker p % len(workers).
/// workers = ["127.0.0.1:7101", "127.0.0.1:7102", "127.0.0.1:7103"]
/// connect_timeout_ms = 5000
/// io_timeout_ms = 30000
/// ```
///
/// Environment form: `DSR_CLUSTER_WORKERS=127.0.0.1:7101,127.0.0.1:7102`
/// plus optional `DSR_CLUSTER_CONNECT_TIMEOUT_MS` /
/// `DSR_CLUSTER_IO_TIMEOUT_MS` / `DSR_CLUSTER_REPLICATION` (default 1).
///
/// With `replication = 2` every partition is hosted by two workers
/// (round-robin placement unless `assignments` pins it explicitly), and the
/// master retries a failed collective leg against the next replica instead
/// of failing the query — see the crate's fault-tolerance docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Worker addresses (`host:port`), in worker-id order.
    pub workers: Vec<String>,
    /// How long [`TcpTransport::connect`] waits for each worker socket.
    pub connect_timeout: Duration,
    /// Read/write timeout applied to every cluster socket; an exceeded
    /// timeout surfaces as [`TransportError::Timeout`] instead of a hang.
    pub io_timeout: Duration,
    /// How many workers host each partition (default 1 = no replication).
    /// With the default round-robin placement partition `p` lives on
    /// workers `p % W, (p+1) % W, …`.
    pub replication: usize,
    /// Explicit partition placement: `assignments[w]` lists the partitions
    /// hosted by worker `w`. `None` (the default) means round-robin
    /// placement derived from `replication`.
    pub assignments: Option<Vec<Vec<usize>>>,
}

impl ClusterSpec {
    /// A spec for `workers` with the default timeouts (5 s connect,
    /// 30 s I/O) and no replication.
    pub fn new(workers: Vec<String>) -> Self {
        ClusterSpec {
            workers,
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(30),
            replication: 1,
            assignments: None,
        }
    }

    /// Starts a builder-style spec for `workers`; see
    /// [`ClusterSpecBuilder`].
    pub fn builder(workers: Vec<String>) -> ClusterSpecBuilder {
        ClusterSpecBuilder {
            spec: ClusterSpec::new(workers),
        }
    }

    /// Parses the TOML subset shown in the type docs: `key = value` lines,
    /// string arrays, integers, `#` comments, and an optional `[cluster]`
    /// section header. Unknown keys are rejected (a typo should fail, not
    /// silently fall back to a default).
    pub fn from_toml_str(text: &str) -> Result<Self, String> {
        let mut workers: Option<Vec<String>> = None;
        let mut connect_timeout_ms: Option<u64> = None;
        let mut io_timeout_ms: Option<u64> = None;
        let mut replication: Option<u64> = None;
        let mut assignments: Option<(Vec<Vec<usize>>, usize)> = None;
        for (number, raw) in text.lines().enumerate() {
            let line = match raw.find('#') {
                Some(at) => &raw[..at],
                None => raw,
            }
            .trim();
            if line.is_empty() || line == "[cluster]" {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", number + 1))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "workers" => workers = Some(parse_string_array(value, number + 1)?),
                "connect_timeout_ms" => {
                    connect_timeout_ms = Some(parse_integer(value, number + 1)?)
                }
                "io_timeout_ms" => io_timeout_ms = Some(parse_integer(value, number + 1)?),
                "replication" => {
                    let r = parse_integer(value, number + 1)?;
                    if r == 0 {
                        return Err(format!(
                            "line {}: replication must be at least 1",
                            number + 1
                        ));
                    }
                    replication = Some(r);
                }
                "assignments" => {
                    let lists = parse_string_array(value, number + 1)?;
                    let mut parsed = Vec::with_capacity(lists.len());
                    for list in &lists {
                        parsed.push(parse_partition_list(list, number + 1)?);
                    }
                    assignments = Some((parsed, number + 1));
                }
                other => {
                    return Err(format!(
                        "line {}: unknown key {other:?} (expected workers, \
                         connect_timeout_ms, io_timeout_ms, replication or \
                         assignments)",
                        number + 1
                    ))
                }
            }
        }
        let workers = workers.ok_or_else(|| "missing `workers = [...]`".to_string())?;
        if workers.is_empty() {
            return Err("`workers` must list at least one address".to_string());
        }
        let mut spec = ClusterSpec::new(workers);
        if let Some(ms) = connect_timeout_ms {
            spec.connect_timeout = Duration::from_millis(ms);
        }
        if let Some(ms) = io_timeout_ms {
            spec.io_timeout = Duration::from_millis(ms);
        }
        if let Some(r) = replication {
            spec.replication = r as usize;
        }
        if let Some((lists, line)) = assignments {
            if lists.len() != spec.workers.len() {
                return Err(format!(
                    "line {line}: assignments lists {} workers, but `workers` \
                     lists {}",
                    lists.len(),
                    spec.workers.len()
                ));
            }
            spec.assignments = Some(lists);
        }
        Ok(spec)
    }

    /// Reads and parses a spec file (see [`ClusterSpec::from_toml_str`]).
    pub fn from_file(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|err| format!("cannot read {}: {err}", path.display()))?;
        Self::from_toml_str(&text)
    }

    /// Builds a spec from `DSR_CLUSTER_WORKERS` (comma-separated
    /// addresses); returns `None` when the variable is unset.
    pub fn from_env() -> Option<Result<Self, String>> {
        let workers = std::env::var("DSR_CLUSTER_WORKERS").ok()?;
        let workers: Vec<String> = workers
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        if workers.is_empty() {
            return Some(Err("DSR_CLUSTER_WORKERS lists no addresses".to_string()));
        }
        let mut spec = ClusterSpec::new(workers);
        for (var, slot) in [
            ("DSR_CLUSTER_CONNECT_TIMEOUT_MS", &mut spec.connect_timeout),
            ("DSR_CLUSTER_IO_TIMEOUT_MS", &mut spec.io_timeout),
        ] {
            if let Ok(value) = std::env::var(var) {
                match value.parse::<u64>() {
                    Ok(ms) => *slot = Duration::from_millis(ms),
                    Err(_) => return Some(Err(format!("{var} must be an integer, got {value:?}"))),
                }
            }
        }
        if let Ok(value) = std::env::var("DSR_CLUSTER_REPLICATION") {
            match value.parse::<usize>() {
                Ok(r) if r >= 1 => spec.replication = r,
                _ => {
                    return Some(Err(format!(
                        "DSR_CLUSTER_REPLICATION must be a positive integer, got {value:?}"
                    )))
                }
            }
        }
        Some(Ok(spec))
    }
}

/// Builder-style construction of a [`ClusterSpec`]; validation that the
/// TOML parser performs line-by-line happens in [`ClusterSpecBuilder::build`].
///
/// ```
/// # use dsr_cluster::ClusterSpec;
/// let spec = ClusterSpec::builder(vec!["a:1".into(), "b:2".into()])
///     .replication(2)
///     .build()
///     .expect("valid spec");
/// assert_eq!(spec.replication, 2);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterSpecBuilder {
    spec: ClusterSpec,
}

impl ClusterSpecBuilder {
    /// Sets the replication factor (how many workers host each partition).
    pub fn replication(mut self, replication: usize) -> Self {
        self.spec.replication = replication;
        self
    }

    /// Sets the connect timeout.
    pub fn connect_timeout(mut self, timeout: Duration) -> Self {
        self.spec.connect_timeout = timeout;
        self
    }

    /// Sets the socket read/write timeout.
    pub fn io_timeout(mut self, timeout: Duration) -> Self {
        self.spec.io_timeout = timeout;
        self
    }

    /// Pins partition placement explicitly: `assignments[w]` lists the
    /// partitions hosted by worker `w`.
    pub fn assignments(mut self, assignments: Vec<Vec<usize>>) -> Self {
        self.spec.assignments = Some(assignments);
        self
    }

    /// Validates and returns the spec.
    ///
    /// # Errors
    /// Rejects an empty worker list, `replication == 0`, and an
    /// `assignments` table whose length differs from the worker count.
    pub fn build(self) -> Result<ClusterSpec, String> {
        if self.spec.workers.is_empty() {
            return Err("`workers` must list at least one address".to_string());
        }
        if self.spec.replication == 0 {
            return Err("replication must be at least 1".to_string());
        }
        if let Some(assignments) = &self.spec.assignments {
            if assignments.len() != self.spec.workers.len() {
                return Err(format!(
                    "assignments lists {} workers, but `workers` lists {}",
                    assignments.len(),
                    self.spec.workers.len()
                ));
            }
        }
        Ok(self.spec)
    }
}

fn parse_string_array(value: &str, line: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("line {line}: expected a [\"...\"] array"))?;
    // Split on commas *outside* quotes (assignments entries like "0, 3"
    // legitimately contain commas).
    let mut pieces = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    for ch in inner.chars() {
        match ch {
            '"' => {
                in_quotes = !in_quotes;
                current.push(ch);
            }
            ',' if !in_quotes => pieces.push(std::mem::take(&mut current)),
            _ => current.push(ch),
        }
    }
    if in_quotes {
        return Err(format!("line {line}: unterminated string in array"));
    }
    pieces.push(current);
    let mut items = Vec::new();
    for piece in &pieces {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        let unquoted = piece
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("line {line}: array items must be double-quoted strings"))?;
        items.push(unquoted.to_string());
    }
    Ok(items)
}

fn parse_integer(value: &str, line: usize) -> Result<u64, String> {
    value
        .parse::<u64>()
        .map_err(|_| format!("line {line}: expected an integer, got {value:?}"))
}

/// Parses one assignments entry: a comma-separated partition-id list like
/// `"0, 3, 4"` (an empty string means the worker hosts nothing).
fn parse_partition_list(list: &str, line: usize) -> Result<Vec<usize>, String> {
    list.split(',')
        .map(str::trim)
        .filter(|piece| !piece.is_empty())
        .map(|piece| {
            piece.parse::<usize>().map_err(|_| {
                format!("line {line}: assignments entries must be comma-separated partition ids")
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Worker endpoint (shared by loopback threads and the dsr-node binary).
// ---------------------------------------------------------------------------

/// Options for [`serve_worker`].
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Read/write timeout on peer-mesh sockets (and the handshake read).
    pub io_timeout: Duration,
    /// How long to wait for a master to connect before giving up
    /// (`None` = forever, the right default for a standalone worker).
    pub master_wait: Option<Duration>,
    /// After a master session ends without an explicit shutdown (master
    /// died, link severed): how long to wait for a replacement master
    /// before exiting. `None` (the default) serves exactly one session —
    /// the historical behavior. `Some` is what a fault-tolerant cluster
    /// needs: a worker that lost its master sticks around so the failover
    /// path (or a restarted master) can re-adopt it.
    pub rejoin_wait: Option<Duration>,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            io_timeout: Duration::from_secs(30),
            master_wait: None,
            rejoin_wait: None,
        }
    }
}

/// How a master session ended, as observed by the relay loop.
enum SessionEnd {
    /// The master sent an explicit `OP_SHUTDOWN`: the worker is done.
    Shutdown,
    /// The master connection dropped between ops (master died, failover
    /// reset, link severed): with a `rejoin_wait` the worker can serve a
    /// replacement session.
    MasterLost,
}

struct WorkerShared {
    options: WorkerOptions,
    /// Master connection slot (stream + session id), filled by the
    /// acceptor. Session ids are the master's reconnect epoch: every batch
    /// of links a master (re)connects shares one id, and peer lanes carry
    /// it so a lane from a stale session can never satisfy a newer
    /// exchange.
    master: Mutex<Option<(TcpStream, u64)>>,
    master_cv: Condvar,
    /// Incoming peer lanes by source worker id, tagged with the session id
    /// the peer announced.
    incoming: Mutex<HashMap<usize, (u64, TcpStream)>>,
    incoming_cv: Condvar,
    /// Outgoing peer lanes by destination worker id (cleared at session
    /// end: the next session builds fresh lanes at its own epoch).
    outgoing: Mutex<HashMap<usize, TcpStream>>,
    /// Assigned by the master hello.
    state: Mutex<WorkerState>,
    /// Set when the worker is exiting; tells the acceptor to stop.
    done: dsr_sync::atomic::AtomicBool,
}

#[derive(Default)]
struct WorkerState {
    my_id: usize,
    topology: Vec<String>,
    /// Session id of the currently served master session.
    session_id: u64,
}

/// Binds a listener for a worker. Separated from [`serve_worker`] so
/// callers can report the bound address (e.g. when listening on port 0)
/// before serving. A bind conflict returns an actionable error naming the
/// address.
pub fn bind_worker(listen: &str) -> Result<TcpListener, TransportError> {
    TcpListener::bind(listen).map_err(|source| TransportError::Io {
        context: format!("failed to bind worker listener on {listen}"),
        source,
    })
}

/// Serves **master sessions** on `listener`: waits for a master hello,
/// relays scatter/gather/exchange ops (forwarding exchange frames over the
/// worker mesh) until the master shuts the session down or disconnects.
/// Without a [`rejoin_wait`](WorkerOptions::rejoin_wait) the first session
/// is the only one (the historical contract); with one, a worker whose
/// master vanished lingers and serves the next master that adopts it —
/// the rejoin half of the failover protocol. The `dsr-node worker` command
/// and the loopback workers of [`TcpTransport::loopback`] both run exactly
/// this function.
pub fn serve_worker(listener: TcpListener, options: WorkerOptions) -> Result<(), TransportError> {
    let local = listener.local_addr().map_err(|source| TransportError::Io {
        context: "worker listener has no local address".to_string(),
        source,
    })?;
    let shared = Arc::new(WorkerShared {
        options: options.clone(),
        master: Mutex::new(None),
        master_cv: Condvar::new(),
        incoming: Mutex::new(HashMap::new()),
        incoming_cv: Condvar::new(),
        outgoing: Mutex::new(HashMap::new()),
        state: Mutex::new(WorkerState::default()),
        done: dsr_sync::atomic::AtomicBool::new(false),
    });
    let acceptor = {
        let shared = Arc::clone(&shared);
        dsr_sync::thread::spawn(move || accept_loop(listener, shared))
    };

    let mut served_any = false;
    let result = loop {
        let wait = if served_any {
            options.rejoin_wait
        } else {
            options.master_wait
        };
        let (master, session) = match wait_for_master(&shared, wait) {
            Ok(adopted) => adopted,
            // Never seeing a master within master_wait is an error; losing
            // one and not being re-adopted within rejoin_wait is a clean
            // exit (the cluster moved on without us).
            Err(err) if !served_any => break Err(err),
            Err(_) => break Ok(()),
        };
        served_any = true;
        begin_session(&shared, session);
        let end = relay_loop(&master, &shared);
        end_session(&shared);
        match end {
            Ok(SessionEnd::Shutdown) => break Ok(()),
            Ok(SessionEnd::MasterLost) => {
                if options.rejoin_wait.is_none() {
                    break Ok(());
                }
            }
            Err(err) => {
                if options.rejoin_wait.is_none() {
                    break Err(err);
                }
            }
        }
    };

    // Wake the acceptor (blocked in `accept`) so it can observe the ended
    // session and exit; then release every cached lane.
    shared.done.store(true, dsr_sync::atomic::Ordering::SeqCst);
    let _ = TcpStream::connect(local);
    let _ = acceptor.join();
    for (_, lane) in dsr_sync::lock(&shared.outgoing).drain() {
        let _ = lane.shutdown(Shutdown::Both);
    }
    result
}

/// Installs the new session id and discards peer lanes left over from
/// older sessions (their unread bytes would corrupt the new session's
/// exchanges).
fn begin_session(shared: &WorkerShared, session: u64) {
    dsr_sync::lock(&shared.state).session_id = session;
    let mut lanes = dsr_sync::lock(&shared.incoming);
    lanes.retain(|_, (sid, stream)| {
        if *sid < session {
            let _ = stream.shutdown(Shutdown::Both);
            false
        } else {
            true
        }
    });
}

/// Releases the session's outgoing lanes: the next session (this master's
/// or a replacement's) negotiates fresh lanes at its own epoch.
fn end_session(shared: &WorkerShared) {
    for (_, lane) in dsr_sync::lock(&shared.outgoing).drain() {
        let _ = lane.shutdown(Shutdown::Both);
    }
}

fn wait_for_master(
    shared: &WorkerShared,
    wait: Option<Duration>,
) -> Result<(TcpStream, u64), TransportError> {
    let mut slot = dsr_sync::lock(&shared.master);
    loop {
        if let Some(adopted) = slot.take() {
            return Ok(adopted);
        }
        match wait {
            None => slot = dsr_sync::wait(&shared.master_cv, slot),
            Some(limit) => {
                let (next, timeout) = dsr_sync::wait_timeout(&shared.master_cv, slot, limit);
                slot = next;
                if timeout.timed_out() && slot.is_none() {
                    return Err(TransportError::Timeout {
                        peer: "master".to_string(),
                        context: "waiting for a master to connect".to_string(),
                    });
                }
            }
        }
    }
}

/// Accepts connections and registers them by their hello role. Runs until
/// the session owner sets `done` and wakes it with a dummy connection.
fn accept_loop(listener: TcpListener, shared: Arc<WorkerShared>) {
    for conn in listener.incoming() {
        if shared.done.load(dsr_sync::atomic::Ordering::SeqCst) {
            break;
        }
        // Transient accept failures (ECONNABORTED from a client that gave
        // up, EINTR, fd pressure) must not end the session's ability to
        // register peers — skip and keep accepting.
        let Ok(stream) = conn else { continue };
        // Handshakes run on their own thread: a non-protocol connection
        // (port scan, wrong magic) or a client that connects and sends
        // nothing can stall for up to io_timeout, and must not head-of-
        // line-block a legitimate peer lane registering behind it. The
        // thread is short-lived (bounded by the handshake read timeout)
        // and registration order is irrelevant — waiters sit on condvars.
        let shared = Arc::clone(&shared);
        dsr_sync::thread::spawn(move || {
            let _ = register_connection(stream, &shared);
        });
    }
}

fn register_connection(stream: TcpStream, shared: &WorkerShared) -> Result<(), TransportError> {
    let peer = "connecting peer";
    stream
        .set_read_timeout(Some(shared.options.io_timeout))
        .map_err(|e| TransportError::from_io(peer, "set handshake timeout", e))?;
    let _ = stream.set_nodelay(true);
    let mut reader = &stream;
    let mut magic = [0u8; 4];
    reader
        .read_exact(&mut magic)
        .map_err(|e| TransportError::from_io(peer, "read hello magic", e))?;
    if magic != MAGIC {
        return Err(TransportError::Handshake {
            peer: peer.to_string(),
            reason: format!("bad magic {magic:?} (expected {MAGIC:?})"),
        });
    }
    let version = read_varint(&mut reader).map_err(|e| e.classify(peer, "read hello version"))?;
    if version != PROTOCOL_VERSION {
        return Err(TransportError::Handshake {
            peer: peer.to_string(),
            reason: format!("protocol version {version} (expected {PROTOCOL_VERSION})"),
        });
    }
    let role = read_varint(&mut reader).map_err(|e| e.classify(peer, "read hello role"))?;
    match role {
        ROLE_MASTER => {
            let my_id = read_varint(&mut reader).map_err(|e| e.classify(peer, "read id"))? as usize;
            let session =
                read_varint(&mut reader).map_err(|e| e.classify(peer, "read session id"))?;
            let count =
                read_varint(&mut reader).map_err(|e| e.classify(peer, "read topology"))? as usize;
            let mut topology = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                topology
                    .push(read_string(&mut reader).map_err(|e| e.classify(peer, "read topology"))?);
            }
            {
                let mut state = dsr_sync::lock(&shared.state);
                state.my_id = my_id;
                if !topology.is_empty() {
                    state.topology = topology;
                }
            }
            // Acknowledge so the master knows it reached a protocol worker.
            let mut ack = Vec::with_capacity(16);
            ack.extend_from_slice(&MAGIC);
            wire::put_varint(&mut ack, PROTOCOL_VERSION);
            wire::put_varint(&mut ack, my_id as u64);
            let mut writer = &stream;
            writer
                .write_all(&ack)
                .map_err(|e| TransportError::from_io(peer, "write hello ack", e))?;
            // The relay loop blocks between collectives for arbitrarily
            // long: no read timeout on the master connection.
            let _ = stream.set_read_timeout(None);
            let mut slot = dsr_sync::lock(&shared.master);
            // A newer master (higher session id) supersedes a pending one
            // the serve loop never adopted.
            if let Some((stale, _)) = slot.replace((stream, session)) {
                let _ = stale.shutdown(Shutdown::Both);
            }
            shared.master_cv.notify_all();
        }
        ROLE_PEER => {
            let from =
                read_varint(&mut reader).map_err(|e| e.classify(peer, "read peer id"))? as usize;
            let session =
                read_varint(&mut reader).map_err(|e| e.classify(peer, "read peer session"))?;
            let mut lanes = dsr_sync::lock(&shared.incoming);
            // Keep the lane from the newest session; a stale peer lane must
            // never shadow the one the current exchange is waiting for.
            match lanes.get(&from) {
                Some(&(existing, _)) if existing >= session => {
                    let _ = stream.shutdown(Shutdown::Both);
                }
                _ => {
                    if let Some((_, stale)) = lanes.insert(from, (session, stream)) {
                        let _ = stale.shutdown(Shutdown::Both);
                    }
                }
            }
            shared.incoming_cv.notify_all();
        }
        other => {
            return Err(TransportError::Handshake {
                peer: peer.to_string(),
                reason: format!("unknown hello role {other}"),
            })
        }
    }
    Ok(())
}

/// One forwarded group of frames: payloads from logical node `src` to
/// logical node `dst`, hosted by `dst_worker`.
struct Group {
    src: usize,
    dst: usize,
    dst_worker: usize,
    frames: Vec<Vec<u8>>,
}

fn relay_loop(master: &TcpStream, shared: &WorkerShared) -> Result<SessionEnd, TransportError> {
    let peer = "master";
    let mut reader = master;
    loop {
        let opcode = match read_varint(&mut reader) {
            Ok(op) => op,
            // The master dropping the connection between ops is a session
            // end (clean, or a failover reset) — not an error.
            Err(FrameIoError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return Ok(SessionEnd::MasterLost)
            }
            Err(FrameIoError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::ConnectionAborted
                ) =>
            {
                return Ok(SessionEnd::MasterLost)
            }
            Err(e) => return Err(e.classify(peer, "read opcode")),
        };
        match opcode {
            OP_ECHO => {
                let frame = read_frame(&mut reader).map_err(|e| e.classify(peer, "read echo"))?;
                let mut out = Vec::with_capacity(frame.len() + wire::MAX_VARINT_LEN);
                put_frame(&mut out, &frame);
                let mut writer = master;
                writer
                    .write_all(&out)
                    .map_err(|e| TransportError::from_io(peer, "write echo reply", e))?;
            }
            OP_TOPOLOGY => {
                let count = read_varint(&mut reader)
                    .map_err(|e| e.classify(peer, "read topology size"))?
                    as usize;
                let mut topology = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    topology.push(
                        read_string(&mut reader).map_err(|e| e.classify(peer, "read topology"))?,
                    );
                }
                dsr_sync::lock(&shared.state).topology = topology;
            }
            OP_EXCHANGE => handle_exchange(master, shared)?,
            OP_SHUTDOWN => {
                let mut writer = master;
                let _ = writer.write_all(&[0]); // empty ack frame
                return Ok(SessionEnd::Shutdown);
            }
            other => {
                return Err(TransportError::Protocol {
                    peer: peer.to_string(),
                    reason: format!("unknown opcode {other}"),
                })
            }
        }
    }
}

fn handle_exchange(master: &TcpStream, shared: &WorkerShared) -> Result<(), TransportError> {
    let peer = "master";
    let mut reader = master;
    let context = "read exchange op";
    let send_count = read_varint(&mut reader).map_err(|e| e.classify(peer, context))? as usize;
    let mut sends: Vec<Group> = Vec::with_capacity(send_count.min(1024));
    for _ in 0..send_count {
        let src = read_varint(&mut reader).map_err(|e| e.classify(peer, context))? as usize;
        let dst = read_varint(&mut reader).map_err(|e| e.classify(peer, context))? as usize;
        let dst_worker = read_varint(&mut reader).map_err(|e| e.classify(peer, context))? as usize;
        let frame_count = read_varint(&mut reader).map_err(|e| e.classify(peer, context))? as usize;
        let mut frames = Vec::with_capacity(frame_count.min(4096));
        for _ in 0..frame_count {
            frames.push(read_frame(&mut reader).map_err(|e| e.classify(peer, context))?);
        }
        sends.push(Group {
            src,
            dst,
            dst_worker,
            frames,
        });
    }
    let recv_count = read_varint(&mut reader).map_err(|e| e.classify(peer, context))? as usize;
    let mut recvs: Vec<(usize, usize, usize, usize)> = Vec::with_capacity(recv_count.min(1024));
    for _ in 0..recv_count {
        let src = read_varint(&mut reader).map_err(|e| e.classify(peer, context))? as usize;
        let dst = read_varint(&mut reader).map_err(|e| e.classify(peer, context))? as usize;
        let src_worker = read_varint(&mut reader).map_err(|e| e.classify(peer, context))? as usize;
        let count = read_varint(&mut reader).map_err(|e| e.classify(peer, context))? as usize;
        recvs.push((src, dst, src_worker, count));
    }

    let (my_id, topology, session) = {
        let state = dsr_sync::lock(&shared.state);
        (state.my_id, state.topology.clone(), state.session_id)
    };

    // Split sends: groups whose destination lives on this worker short-
    // circuit locally; the rest are forwarded over the peer mesh, one
    // writer thread per destination worker so a full socket buffer can
    // never produce a circular wait. The master routes partitions to
    // workers (that is what the topology and failover are for); this side
    // just follows the explicit worker ids in the op.
    let mut local: HashMap<(usize, usize), Vec<Vec<u8>>> = HashMap::new();
    let mut remote: BTreeMap<usize, Vec<Group>> = BTreeMap::new();
    for group in sends {
        if group.dst_worker == my_id {
            local.insert((group.src, group.dst), group.frames);
        } else {
            remote.entry(group.dst_worker).or_default().push(group);
        }
    }

    let mut received: Vec<Vec<Vec<u8>>> = Vec::with_capacity(recvs.len());
    let forward_result: Result<(), TransportError> = dsr_sync::thread::scope(|scope| {
        let writers: Vec<_> = remote
            .into_iter()
            .map(|(worker, groups)| {
                let shared = &shared;
                let topology = &topology;
                scope
                    .spawn(move || forward_groups(shared, topology, my_id, session, worker, groups))
            })
            .collect();

        // Read the expected groups while the writers run. Per-lane frames
        // arrive in master-specified (src, dst) order.
        let mut lanes: HashMap<usize, TcpStream> = HashMap::new();
        for &(src, dst, src_worker, count) in &recvs {
            if src_worker == my_id {
                let frames = local
                    .remove(&(src, dst))
                    .ok_or_else(|| TransportError::Protocol {
                        peer: peer.to_string(),
                        reason: format!("exchange op lists local group {src}->{dst} it never sent"),
                    })?;
                if frames.len() != count {
                    return Err(TransportError::Protocol {
                        peer: peer.to_string(),
                        reason: format!(
                            "local group {src}->{dst}: expected {count} frames, got {}",
                            frames.len()
                        ),
                    });
                }
                received.push(frames);
            } else {
                if let std::collections::hash_map::Entry::Vacant(slot) = lanes.entry(src_worker) {
                    slot.insert(incoming_lane(shared, src_worker, &topology, session)?);
                }
                let lane = lanes.get_mut(&src_worker).expect("lane just inserted");
                received.push(read_group(lane, src_worker, src, dst, count, &topology)?);
            }
        }
        for writer in writers {
            writer.join().expect("peer forward thread")?;
        }
        Ok(())
    });
    forward_result?;

    // Reply: the frames of every expected group, in op order.
    let mut reply = Vec::new();
    for frames in &received {
        for frame in frames {
            put_frame(&mut reply, frame);
        }
    }
    let mut writer = master;
    writer
        .write_all(&reply)
        .map_err(|e| TransportError::from_io(peer, "write exchange reply", e))
}

/// Connects (or reuses) the outgoing lane to `worker` and writes `groups`
/// in order.
fn forward_groups(
    shared: &WorkerShared,
    topology: &[String],
    my_id: usize,
    session: u64,
    worker: usize,
    groups: Vec<Group>,
) -> Result<(), TransportError> {
    let peer = peer_name(worker, topology);
    let lane = {
        let mut lanes = dsr_sync::lock(&shared.outgoing);
        #[allow(clippy::map_entry)] // lane construction is fallible; entry() cannot early-return
        if !lanes.contains_key(&worker) {
            let addr = topology
                .get(worker)
                .ok_or_else(|| TransportError::Protocol {
                    peer: peer.clone(),
                    reason: format!(
                        "worker {worker} is outside the {}-worker topology",
                        topology.len()
                    ),
                })?;
            let stream = TcpStream::connect(addr)
                .map_err(|e| TransportError::from_io(&peer, "connect peer lane", e))?;
            let _ = stream.set_nodelay(true);
            stream
                .set_write_timeout(Some(shared.options.io_timeout))
                .map_err(|e| TransportError::from_io(&peer, "set peer timeout", e))?;
            let mut hello = Vec::with_capacity(16);
            hello.extend_from_slice(&MAGIC);
            wire::put_varint(&mut hello, PROTOCOL_VERSION);
            wire::put_varint(&mut hello, ROLE_PEER);
            wire::put_varint(&mut hello, my_id as u64);
            wire::put_varint(&mut hello, session);
            let mut writer = &stream;
            writer
                .write_all(&hello)
                .map_err(|e| TransportError::from_io(&peer, "write peer hello", e))?;
            lanes.insert(worker, stream);
        }
        lanes
            .get(&worker)
            .expect("lane just ensured")
            .try_clone()
            .map_err(|e| TransportError::from_io(&peer, "clone peer lane", e))?
    };
    let mut buf = Vec::new();
    for group in &groups {
        wire::put_varint(&mut buf, group.src as u64);
        wire::put_varint(&mut buf, group.dst as u64);
        wire::put_varint(&mut buf, group.frames.len() as u64);
        for frame in &group.frames {
            put_frame(&mut buf, frame);
        }
    }
    let mut writer = &lane;
    writer
        .write_all(&buf)
        .map_err(|e| TransportError::from_io(&peer, "forward exchange frames", e))
}

/// Waits (bounded) for the incoming lane from `from` **belonging to
/// `session`** and returns a read-timeout-configured clone of it. A lane
/// left over from an older session is discarded on sight (its unread bytes
/// belong to an exchange that already failed); a lane from a newer session
/// means this exchange is already stale, so the wait simply runs out.
fn incoming_lane(
    shared: &WorkerShared,
    from: usize,
    topology: &[String],
    session: u64,
) -> Result<TcpStream, TransportError> {
    let peer = peer_name(from, topology);
    let deadline = std::time::Instant::now() + shared.options.io_timeout;
    let mut lanes = dsr_sync::lock(&shared.incoming);
    loop {
        match lanes.get(&from) {
            Some(&(sid, ref stream)) if sid == session => {
                let clone = stream
                    .try_clone()
                    .map_err(|e| TransportError::from_io(&peer, "clone peer lane", e))?;
                clone
                    .set_read_timeout(Some(shared.options.io_timeout))
                    .map_err(|e| TransportError::from_io(&peer, "set peer timeout", e))?;
                return Ok(clone);
            }
            Some(&(sid, _)) if sid < session => {
                if let Some((_, stale)) = lanes.remove(&from) {
                    let _ = stale.shutdown(Shutdown::Both);
                }
            }
            _ => {}
        }
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        if remaining.is_zero() {
            return Err(TransportError::Timeout {
                peer,
                context: "waiting for peer lane".to_string(),
            });
        }
        let (next, _) = dsr_sync::wait_timeout(&shared.incoming_cv, lanes, remaining);
        lanes = next;
    }
}

/// Reads one forwarded group from a peer lane and validates its header
/// against the master-announced expectation.
fn read_group(
    lane: &mut TcpStream,
    from_worker: usize,
    src: usize,
    dst: usize,
    count: usize,
    topology: &[String],
) -> Result<Vec<Vec<u8>>, TransportError> {
    let peer = peer_name(from_worker, topology);
    let context = "read forwarded frames";
    let got_src = read_varint(lane).map_err(|e| e.classify(&peer, context))? as usize;
    let got_dst = read_varint(lane).map_err(|e| e.classify(&peer, context))? as usize;
    let got_count = read_varint(lane).map_err(|e| e.classify(&peer, context))? as usize;
    if (got_src, got_dst, got_count) != (src, dst, count) {
        return Err(TransportError::Protocol {
            peer,
            reason: format!(
                "expected group {src}->{dst} ({count} frames), \
                 got {got_src}->{got_dst} ({got_count} frames)"
            ),
        });
    }
    let mut frames = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        frames.push(read_frame(lane).map_err(|e| e.classify(&peer, context))?);
    }
    Ok(frames)
}

fn peer_name(worker: usize, topology: &[String]) -> String {
    match topology.get(worker) {
        Some(addr) => format!("worker {worker} ({addr})"),
        None => format!("worker {worker}"),
    }
}

// ---------------------------------------------------------------------------
// Master side.
// ---------------------------------------------------------------------------

struct WorkerLink {
    stream: TcpStream,
    addr: String,
    /// Topology length this worker last saw (hello or OP_TOPOLOGY).
    topology_seen: usize,
}

impl WorkerLink {
    fn name(&self, id: usize) -> String {
        format!("worker {id} ({})", self.addr)
    }
}

struct LoopbackWorker {
    handle: Option<dsr_sync::thread::JoinHandle<()>>,
}

struct MasterState {
    /// Worker addresses in worker-id order (the cluster roster).
    addrs: Vec<String>,
    /// Live master→worker links; `None` = not connected (suspect, or a
    /// failover reset pending reconnect). Indexed like `addrs`.
    links: Vec<Option<WorkerLink>>,
    /// `Some` when this transport self-hosts its workers and may grow the
    /// mesh; `None` for a fixed remote cluster.
    loopback: Option<Vec<LoopbackWorker>>,
    connect_timeout: Duration,
    io_timeout: Duration,
    /// Replication factor for derived (round-robin) topologies.
    replication: usize,
    /// Explicit partition placement from the [`ClusterSpec`], if any.
    assignments: Option<Vec<Vec<usize>>>,
    /// Routing table for the current collective width; rebuilt when the
    /// width or the roster changes, suspicion carried across rebuilds.
    topology: Option<Topology>,
    /// Session epoch: bumped on every batch reconnect, carried in every
    /// hello so workers can match peer lanes to sessions. All live links
    /// always share one epoch.
    epoch: u64,
    /// Collectives served so far (the clock [`Fault::after`] counts on).
    collectives: u64,
}

impl MasterState {
    /// Grows a loopback mesh to at least `num_partitions` workers, rebuilds
    /// the routing table when the collective width or the roster changed,
    /// and fails fast when some partition has no live replica. A remote
    /// cluster never grows: extra partitions wrap onto the existing
    /// workers.
    fn ensure_mesh(&mut self, num_partitions: usize) -> Result<(), TransportError> {
        if let Some(workers) = &mut self.loopback {
            while self.addrs.len() < num_partitions {
                let listener = bind_worker("127.0.0.1:0")?;
                let addr = listener
                    .local_addr()
                    .map_err(|source| TransportError::Io {
                        context: "loopback listener address".to_string(),
                        source,
                    })?
                    .to_string();
                let options = WorkerOptions {
                    io_timeout: self.io_timeout,
                    master_wait: Some(self.io_timeout),
                    // Loopback workers survive failover resets: the master
                    // reconnects them within the I/O timeout.
                    rejoin_wait: Some(self.io_timeout),
                };
                let handle = dsr_sync::thread::spawn(move || {
                    if let Err(err) = serve_worker(listener, options) {
                        eprintln!("dsr loopback worker failed: {err}");
                    }
                });
                workers.push(LoopbackWorker {
                    handle: Some(handle),
                });
                self.addrs.push(addr);
                self.links.push(None);
            }
        }
        if self.addrs.is_empty() {
            return Err(TransportError::Protocol {
                peer: "cluster".to_string(),
                reason: "no workers configured".to_string(),
            });
        }
        let stale = match &self.topology {
            None => true,
            Some(t) => t.num_partitions() != num_partitions || t.num_workers() != self.addrs.len(),
        };
        if stale {
            let mut rebuilt = match &self.assignments {
                Some(assignments) => Topology::from_worker_partitions(num_partitions, assignments)
                    .map_err(|reason| TransportError::Protocol {
                        peer: "cluster".to_string(),
                        reason: format!("invalid partition assignments: {reason}"),
                    })?,
                None => Topology::round_robin(num_partitions, self.addrs.len(), self.replication),
            };
            if let Some(old) = &self.topology {
                rebuilt.inherit_suspects(old);
            }
            self.topology = Some(rebuilt);
        }
        if let Some(partition) = self
            .topology
            .as_ref()
            .and_then(Topology::unroutable_partition)
        {
            return Err(TransportError::NoReplica { partition });
        }
        Ok(())
    }

    /// Severs and forgets every live link. The next [`ensure_ready`]
    /// reconnects all non-suspect workers in one batch at a fresh epoch —
    /// the only way every session (and thus every peer lane) stays
    /// matched.
    fn drop_all_links(&mut self) {
        for slot in &mut self.links {
            if let Some(link) = slot.take() {
                let _ = link.stream.shutdown(Shutdown::Both);
            }
        }
    }

    /// Pushes the current address roster to links whose workers last saw a
    /// shorter one (loopback growth moves the list under them).
    fn refresh_topology(&mut self) -> Result<(), TransportError> {
        let addrs = self.addrs.clone();
        for (id, slot) in self.links.iter_mut().enumerate() {
            let Some(link) = slot else { continue };
            if link.topology_seen == addrs.len() {
                continue;
            }
            let mut op = Vec::new();
            wire::put_varint(&mut op, OP_TOPOLOGY);
            wire::put_varint(&mut op, addrs.len() as u64);
            for addr in &addrs {
                put_string(&mut op, addr);
            }
            let name = link.name(id);
            let mut writer = &link.stream;
            writer
                .write_all(&op)
                .map_err(|e| TransportError::from_io(&name, "send topology update", e))?;
            link.topology_seen = addrs.len();
        }
        Ok(())
    }
}

/// Connects to one worker and performs the master handshake, announcing
/// `session` (the master's reconnect epoch).
fn connect_link(
    addr: &str,
    id: usize,
    session: u64,
    topology: &[String],
    connect_timeout: Duration,
    io_timeout: Duration,
) -> Result<WorkerLink, TransportError> {
    let peer = format!("worker {id} ({addr})");
    let resolved: SocketAddr = addr
        .to_socket_addrs()
        .map_err(|e| TransportError::from_io(&peer, "resolve worker address", e))?
        .next()
        .ok_or_else(|| TransportError::Handshake {
            peer: peer.clone(),
            reason: "address resolves to nothing".to_string(),
        })?;
    let stream = TcpStream::connect_timeout(&resolved, connect_timeout)
        .map_err(|e| TransportError::from_io(&peer, "connect to worker", e))?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(io_timeout))
        .map_err(|e| TransportError::from_io(&peer, "set read timeout", e))?;
    stream
        .set_write_timeout(Some(io_timeout))
        .map_err(|e| TransportError::from_io(&peer, "set write timeout", e))?;

    let mut hello = Vec::new();
    hello.extend_from_slice(&MAGIC);
    wire::put_varint(&mut hello, PROTOCOL_VERSION);
    wire::put_varint(&mut hello, ROLE_MASTER);
    wire::put_varint(&mut hello, id as u64);
    wire::put_varint(&mut hello, session);
    wire::put_varint(&mut hello, topology.len() as u64);
    for address in topology {
        put_string(&mut hello, address);
    }
    let mut writer = &stream;
    writer
        .write_all(&hello)
        .map_err(|e| TransportError::from_io(&peer, "write master hello", e))?;

    let mut reader = &stream;
    let mut magic = [0u8; 4];
    reader
        .read_exact(&mut magic)
        .map_err(|e| TransportError::from_io(&peer, "read hello ack", e))?;
    if magic != MAGIC {
        return Err(TransportError::Handshake {
            peer,
            reason: format!("bad ack magic {magic:?} — is a dsr-node worker listening there?"),
        });
    }
    let version = read_varint(&mut reader).map_err(|e| e.classify(&peer, "read ack version"))?;
    if version != PROTOCOL_VERSION {
        return Err(TransportError::Handshake {
            peer,
            reason: format!("worker speaks protocol version {version}, master {PROTOCOL_VERSION}"),
        });
    }
    let echoed = read_varint(&mut reader).map_err(|e| e.classify(&peer, "read ack id"))?;
    if echoed != id as u64 {
        return Err(TransportError::Handshake {
            peer,
            reason: format!("worker acknowledged id {echoed}, expected {id}"),
        });
    }
    Ok(WorkerLink {
        stream,
        addr: addr.to_string(),
        topology_seen: topology.len(),
    })
}

/// An armed [`Fault`]: `fired` once the link was severed, `attributed`
/// once a collective failure was blamed on it.
struct ArmedFault {
    fault: crate::fault::Fault,
    fired: bool,
    attributed: bool,
}

/// The TCP backend: collectives over real sockets and worker endpoints.
///
/// See the [module docs](self) for the architecture. Collectives are
/// internally serialized (one at a time per transport), so one
/// `TcpTransport` can be shared by concurrent query threads, exactly like
/// the pipe backend.
///
/// # Fault tolerance
///
/// Every collective leg is addressed **by partition** through the
/// transport's [`Topology`]. When a worker stops answering mid-collective
/// it is marked *suspect* and — if every partition it hosted has another
/// live replica ([`ClusterSpec::replication`] ≥ 2) — the same logical
/// frames are retried against the next replica with bounded backoff.
/// [`FailoverStats`] counts retries/suspects/resyncs; [`CommStats`] does
/// not change under failover (frames are encoded and counted once per
/// logical collective), so byte accounting stays comparable to the
/// fault-free backends. A recovered worker is re-adopted with
/// [`TcpTransport::rejoin_suspects`].
pub struct TcpTransport {
    state: Mutex<MasterState>,
    failover: FailoverStats,
    faults: Mutex<Vec<ArmedFault>>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport").finish_non_exhaustive()
    }
}

/// Per-worker outcome of one echo attempt: the `(node, message)` pairs that
/// worker delivered, or the failure that interrupted it.
type EchoOutcome<M> = (usize, Result<Vec<(usize, M)>, TransportError>);
/// Per-worker outcome of one exchange attempt: the `(src, dst, message)`
/// triples collected from that worker's reply, or the failure.
type ExchangeOutcome<M> = (usize, Result<Vec<(usize, usize, M)>, TransportError>);

impl TcpTransport {
    /// A self-hosted loopback cluster: workers are spawned as threads of
    /// this process, each serving a real `127.0.0.1` socket, one per
    /// logical node, growing lazily with the largest collective seen. This
    /// is the `DSR_TRANSPORT=tcp` backend.
    pub fn loopback() -> Self {
        Self::loopback_with_timeout(Duration::from_secs(30))
    }

    /// [`TcpTransport::loopback`] with an explicit I/O timeout (tests use
    /// short ones so failure paths resolve quickly).
    pub fn loopback_with_timeout(io_timeout: Duration) -> Self {
        Self::loopback_replicated_with_timeout(1, io_timeout)
    }

    /// A loopback cluster hosting every partition on `replication`
    /// workers (round-robin placement).
    pub fn loopback_replicated(replication: usize) -> Self {
        Self::loopback_replicated_with_timeout(replication, Duration::from_secs(30))
    }

    /// [`TcpTransport::loopback_replicated`] with an explicit I/O timeout.
    pub fn loopback_replicated_with_timeout(replication: usize, io_timeout: Duration) -> Self {
        assert!(replication > 0, "replication factor must be at least 1");
        TcpTransport {
            state: Mutex::new(MasterState {
                addrs: Vec::new(),
                links: Vec::new(),
                loopback: Some(Vec::new()),
                connect_timeout: io_timeout,
                io_timeout,
                replication,
                assignments: None,
                topology: None,
                epoch: 0,
                collectives: 0,
            }),
            failover: FailoverStats::new(),
            faults: Mutex::new(Vec::new()),
        }
    }

    /// Connects to the external workers of `spec` (each a running
    /// `dsr-node worker`) and performs the handshake with every one.
    /// Partition placement follows `spec.assignments` when present,
    /// otherwise round-robin at `spec.replication`.
    pub fn connect(spec: &ClusterSpec) -> Result<Self, TransportError> {
        let mut links = Vec::with_capacity(spec.workers.len());
        let session = 1u64;
        for (id, addr) in spec.workers.iter().enumerate() {
            links.push(Some(connect_link(
                addr,
                id,
                session,
                &spec.workers,
                spec.connect_timeout,
                spec.io_timeout,
            )?));
        }
        Ok(TcpTransport {
            state: Mutex::new(MasterState {
                addrs: spec.workers.clone(),
                links,
                loopback: None,
                connect_timeout: spec.connect_timeout,
                io_timeout: spec.io_timeout,
                replication: spec.replication,
                assignments: spec.assignments.clone(),
                topology: None,
                epoch: session,
                collectives: 0,
            }),
            failover: FailoverStats::new(),
            faults: Mutex::new(Vec::new()),
        })
    }

    /// Number of known workers (0 for a loopback mesh that has not served
    /// a collective yet). Suspects count: they are still part of the
    /// roster.
    pub fn num_workers(&self) -> usize {
        dsr_sync::lock(&self.state).addrs.len()
    }

    /// Worker ids currently marked suspect (ascending).
    pub fn suspects(&self) -> Vec<usize> {
        dsr_sync::lock(&self.state)
            .topology
            .as_ref()
            .map(Topology::suspects)
            .unwrap_or_default()
    }

    /// Failover counters: retries, suspect transitions, resyncs. All zero
    /// in a fault-free run (the benchmark gate pins them there).
    pub fn failover_stats(&self) -> &FailoverStats {
        &self.failover
    }

    /// Arms `plan` on this transport: each planned fault severs its
    /// worker's master link at the start of the first matching collective,
    /// exactly as if the worker process died at that moment. See
    /// [`FaultPlan`].
    pub fn inject_faults(&self, plan: FaultPlan) {
        let mut armed = dsr_sync::lock(&self.faults);
        armed.extend(plan.faults().iter().map(|&fault| ArmedFault {
            fault,
            fired: false,
            attributed: false,
        }));
    }

    /// Severs the connection to worker `index` before the next collective,
    /// as if the process died (test hook for the failure-path suites).
    /// Sugar for a one-fault [`FaultPlan`].
    #[doc(hidden)]
    pub fn debug_disconnect_worker(&self, index: usize) {
        self.inject_faults(FaultPlan::new().disconnect(index));
    }

    /// Tries to re-adopt every suspect worker: a short-timeout reconnect,
    /// then `backlog` (the differential state the worker missed — for the
    /// DSR engine, the update-batch summary deltas) is streamed through it
    /// and measured into `stats`. Returns the ids of the workers that came
    /// back; each one clears its suspect flag (bumping the topology
    /// generation) and counts one
    /// [`resync`](crate::FailoverSnapshot::resyncs).
    ///
    /// Rejoin never happens implicitly mid-collective — the caller decides
    /// when (typically between query/update batches).
    pub fn rejoin_suspects<M: WireMessage>(&self, backlog: &[M], stats: &CommStats) -> Vec<usize> {
        let mut state = dsr_sync::lock(&self.state);
        let suspects = match &state.topology {
            Some(t) => t.suspects(),
            None => return Vec::new(),
        };
        if suspects.is_empty() {
            return Vec::new();
        }
        let frames: Vec<Vec<u8>> = backlog.iter().map(wire::encode_to_vec).collect();
        let probe_timeout = state
            .connect_timeout
            .min(PROBE_TIMEOUT.max(Duration::from_millis(250)));
        let mut rejoined = Vec::new();
        for worker in suspects {
            let addr = state.addrs[worker].clone();
            state.epoch += 1;
            let link = match connect_link(
                &addr,
                worker,
                state.epoch,
                &state.addrs.clone(),
                probe_timeout,
                state.io_timeout,
            ) {
                Ok(link) => link,
                Err(_) => continue, // still down; stays suspect
            };
            // Stream the missed state through the fresh link. One round,
            // one message per backlog frame — the caller's stats witness
            // that the rejoin moved delta-sized traffic, not a rebuild.
            let mut ok = true;
            if !frames.is_empty() {
                stats.record_round();
                for frame in &frames {
                    let mut op = Vec::with_capacity(frame.len() + 2 * wire::MAX_VARINT_LEN);
                    wire::put_varint(&mut op, OP_ECHO);
                    put_frame(&mut op, frame);
                    let mut writer = &link.stream;
                    if writer.write_all(&op).is_err() {
                        ok = false;
                        break;
                    }
                    let mut reader = &link.stream;
                    match read_frame(&mut reader) {
                        Ok(echoed) if echoed == *frame => stats.record_message(frame.len()),
                        _ => {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if !ok {
                let _ = link.stream.shutdown(Shutdown::Both);
                continue;
            }
            if let Some(topology) = state.topology.as_mut() {
                topology.mark_live(worker);
            }
            state.links[worker] = Some(link);
            self.failover.record_resync();
            rejoined.push(worker);
        }
        if !rejoined.is_empty() {
            // Reset every session so the next collective reconnects the
            // whole cluster at one shared epoch (mixed epochs would wedge
            // the worker-to-worker lanes).
            state.drop_all_links();
        }
        rejoined
    }

    /// Brings the mesh to a serving state for a `num_partitions`-wide
    /// collective: grows/derives the topology, then (re)connects every
    /// non-suspect worker **in one batch at one epoch** whenever any link
    /// is missing. A worker that refuses the reconnect is marked suspect;
    /// the loop then retries with the shrunken roster until the topology
    /// is either served or unroutable.
    fn ensure_ready(
        &self,
        state: &mut MasterState,
        num_partitions: usize,
    ) -> Result<(), TransportError> {
        state.ensure_mesh(num_partitions)?;
        loop {
            let topology = state.topology.as_ref().expect("ensured");
            let missing: Vec<usize> = (0..state.addrs.len())
                .filter(|&w| !topology.is_suspect(w) && state.links[w].is_none())
                .collect();
            if missing.is_empty() {
                state.refresh_topology()?;
                return Ok(());
            }
            state.drop_all_links();
            state.epoch += 1;
            let epoch = state.epoch;
            let addrs = state.addrs.clone();
            let mut failed: Option<(usize, TransportError)> = None;
            for (worker, addr) in addrs.iter().enumerate() {
                if state.topology.as_ref().expect("ensured").is_suspect(worker) {
                    continue;
                }
                match connect_link(
                    addr,
                    worker,
                    epoch,
                    &addrs,
                    state.connect_timeout,
                    state.io_timeout,
                ) {
                    Ok(link) => state.links[worker] = Some(link),
                    Err(err) => {
                        failed = Some((worker, err));
                        break;
                    }
                }
            }
            let Some((worker, err)) = failed else {
                state.refresh_topology()?;
                return Ok(());
            };
            if state
                .topology
                .as_mut()
                .expect("ensured")
                .mark_suspect(worker)
            {
                self.failover.record_suspect();
            }
            if !state.topology.as_ref().expect("ensured").fully_routable() {
                // The typed connect error names the worker; the caller can
                // restart it and rejoin.
                return Err(err);
            }
            // Some partition still has a live replica: retry the batch
            // without the dead worker.
        }
    }

    /// Severs the links of every armed, unfired fault matching `phase`,
    /// and advances the collective clock.
    fn fire_faults(&self, state: &mut MasterState, phase: FaultPhase) {
        let collective = state.collectives;
        state.collectives += 1;
        let mut armed = dsr_sync::lock(&self.faults);
        for fault in armed.iter_mut() {
            if fault.fired || collective < fault.fault.after || !fault.fault.phase.matches(phase) {
                continue;
            }
            fault.fired = true;
            if let Some(link) = state.links.get(fault.fault.worker).and_then(Option::as_ref) {
                let _ = link.stream.shutdown(Shutdown::Both);
            }
        }
    }

    /// Digests the per-worker failures of one collective attempt:
    /// attributes them to culprit workers, marks those suspect, and
    /// decides between *retry against the next replica* (`Ok`) and
    /// *surface the primary error* (`Err`: non-connectivity failure,
    /// unroutable topology, or retry budget exhausted).
    fn absorb_failures(
        &self,
        state: &mut MasterState,
        mut failures: Vec<(usize, TransportError)>,
        attempts: usize,
        reset_sessions: bool,
    ) -> Result<(), TransportError> {
        failures.sort_by_key(|&(worker, _)| worker);
        // Protocol violations and decode failures are not what failover is
        // for: retrying them against another replica cannot help.
        if let Some(at) = failures
            .iter()
            .position(|(_, err)| !err.is_connectivity_loss())
        {
            return Err(failures.swap_remove(at).1);
        }
        let failed: Vec<usize> = failures.iter().map(|&(worker, _)| worker).collect();

        // Attribute the loss. A dying worker takes collateral victims (a
        // peer blocked reading its lane also times out / resets), and
        // suspecting a healthy worker wastes a replica — so: (1) armed
        // faults that fired and were not yet blamed, (2) workers whose
        // listener refuses a probe (a dead process refuses instantly),
        // (3) the lowest failed id as a last resort.
        let mut culprits: Vec<usize> = Vec::new();
        {
            let mut armed = dsr_sync::lock(&self.faults);
            for fault in armed.iter_mut() {
                if fault.fired && !fault.attributed && failed.contains(&fault.fault.worker) {
                    fault.attributed = true;
                    culprits.push(fault.fault.worker);
                }
            }
        }
        if culprits.is_empty() {
            for &worker in &failed {
                if probe_worker(&state.addrs[worker]).is_err() {
                    culprits.push(worker);
                }
            }
        }
        if culprits.is_empty() {
            culprits.push(failed[0]);
        }
        culprits.sort_unstable();
        culprits.dedup();

        let primary = {
            let at = failures
                .iter()
                .position(|(worker, _)| culprits.contains(worker))
                .unwrap_or(0);
            failures.swap_remove(at).1
        };
        for &worker in &culprits {
            if state
                .topology
                .as_mut()
                .expect("collective ran, topology exists")
                .mark_suspect(worker)
            {
                self.failover.record_suspect();
            }
            if let Some(link) = state.links[worker].take() {
                let _ = link.stream.shutdown(Shutdown::Both);
            }
        }
        let routable = state
            .topology
            .as_ref()
            .expect("collective ran, topology exists")
            .fully_routable();
        if !routable || attempts > state.addrs.len() + 1 {
            return Err(primary);
        }
        if reset_sessions {
            // An exchange wove worker-to-worker lanes through the dead
            // worker's session; every survivor may hold a wedged or
            // half-consumed lane. Reset all sessions so the retry starts
            // from clean streams at one shared epoch.
            state.drop_all_links();
        }
        self.failover.record_retry();
        Ok(())
    }

    fn encode_and_count<M: WireMessage>(message: &M, stats: &CommStats) -> Vec<u8> {
        let encoded = wire::encode_to_vec(message);
        debug_assert_eq!(
            encoded.len(),
            message.byte_size(),
            "MessageSize::byte_size drifted from the wire encoding"
        );
        stats.record_message(encoded.len());
        encoded
    }

    /// Round-trips one frame per partition through the worker hosting it
    /// (`ECHO`): the shared implementation of scatter and gather. Frames
    /// are encoded (and counted) **once**; a worker failure marks it
    /// suspect and retries the undelivered partitions against their next
    /// replicas, so [`CommStats`] is identical with and without failover.
    fn echo_round<M: WireMessage>(
        &self,
        messages: Vec<M>,
        stats: &CommStats,
        fault_phase: FaultPhase,
        phase: &str,
    ) -> Result<Vec<M>, TransportError> {
        stats.record_round();
        let k = messages.len();
        let mut state = dsr_sync::lock(&self.state);
        self.ensure_ready(&mut state, k)?;
        self.fire_faults(&mut state, fault_phase);
        let encoded: Vec<Vec<u8>> = messages
            .iter()
            .map(|m| Self::encode_and_count(m, stats))
            .collect();
        drop(messages);

        let mut delivered: Vec<Option<M>> = (0..k).map(|_| None).collect();
        let mut attempts = 0usize;
        let mut backoff = FAILOVER_BACKOFF_START;
        loop {
            attempts += 1;
            let topology = state.topology.as_ref().expect("ensured");
            let mut by_worker: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for (node, slot) in delivered.iter().enumerate() {
                if slot.is_some() {
                    continue;
                }
                let worker = topology
                    .route(node)
                    .ok_or(TransportError::NoReplica { partition: node })?;
                by_worker.entry(worker).or_default().push(node);
            }
            if by_worker.is_empty() {
                break;
            }
            let state_ref = &*state;
            let outcomes: Vec<EchoOutcome<M>> = dsr_sync::thread::scope(|scope| {
                let tasks: Vec<_> = by_worker
                    .iter()
                    .map(|(&worker, nodes)| {
                        let link = state_ref.links[worker]
                            .as_ref()
                            .expect("routable workers are connected");
                        let encoded = &encoded;
                        let task =
                            scope.spawn(move || -> Result<Vec<(usize, M)>, TransportError> {
                                let name = link.name(worker);
                                let mut results = Vec::with_capacity(nodes.len());
                                for &node in nodes {
                                    let mut op = Vec::with_capacity(
                                        encoded[node].len() + 2 * wire::MAX_VARINT_LEN,
                                    );
                                    wire::put_varint(&mut op, OP_ECHO);
                                    put_frame(&mut op, &encoded[node]);
                                    let mut writer = &link.stream;
                                    writer.write_all(&op).map_err(|e| {
                                        TransportError::from_io(&name, &format!("{phase} send"), e)
                                    })?;
                                    let mut reader = &link.stream;
                                    let frame = read_frame(&mut reader).map_err(|e| {
                                        e.classify(&name, &format!("{phase} reply"))
                                    })?;
                                    let message = wire::decode_exact::<M>(&frame)?;
                                    results.push((node, message));
                                }
                                Ok(results)
                            });
                        (worker, task)
                    })
                    .collect();
                tasks
                    .into_iter()
                    .map(|(worker, task)| (worker, task.join().expect("tcp echo thread")))
                    .collect()
            });
            let mut failures: Vec<(usize, TransportError)> = Vec::new();
            for (worker, outcome) in outcomes {
                match outcome {
                    Ok(results) => {
                        for (node, message) in results {
                            delivered[node] = Some(message);
                        }
                    }
                    Err(err) => failures.push((worker, err)),
                }
            }
            if failures.is_empty() {
                continue; // loop re-plans; exits when nothing is missing
            }
            self.absorb_failures(&mut state, failures, attempts, false)?;
            dsr_sync::thread::sleep(backoff);
            backoff = (backoff * 2).min(FAILOVER_BACKOFF_MAX);
            self.ensure_ready(&mut state, k)?;
        }
        Ok(delivered
            .into_iter()
            .map(|m| m.expect("every node delivered"))
            .collect())
    }
}

/// Short-timeout liveness probe: can `addr` still be connected to? A
/// killed worker process refuses instantly; a live one accepts (the
/// connection is immediately shut down without a hello, which its
/// handshake thread treats as noise).
fn probe_worker(addr: &str) -> Result<(), ()> {
    let resolved: SocketAddr = addr.to_socket_addrs().map_err(|_| ())?.next().ok_or(())?;
    let stream = TcpStream::connect_timeout(&resolved, PROBE_TIMEOUT).map_err(|_| ())?;
    let _ = stream.shutdown(Shutdown::Both);
    Ok(())
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        let mut state = dsr_sync::lock(&self.state);
        let self_hosted = state.loopback.is_some();
        for (id, slot) in state.links.iter().enumerate() {
            match slot {
                Some(link) => {
                    let mut writer = &link.stream;
                    if writer.write_all(&[OP_SHUTDOWN as u8]).is_ok() {
                        let mut reader = &link.stream;
                        let _ = read_frame(&mut reader); // best-effort ack
                    }
                    let _ = link.stream.shutdown(Shutdown::Both);
                }
                // A loopback worker without a link may be sitting in its
                // rejoin wait (suspect, or a failover reset we never
                // followed up on); poke it with a minimal session so its
                // thread exits instead of blocking the join below.
                None if self_hosted => shutdown_worker(&state.addrs[id], id),
                None => {}
            }
        }
        if let Some(workers) = &mut state.loopback {
            for worker in workers {
                if let Some(handle) = worker.handle.take() {
                    let _ = handle.join();
                }
            }
        }
    }
}

/// Best-effort: connect to a linkless worker, complete a minimal master
/// handshake (maximum session id, empty address list), and order it to
/// shut down. Used for loopback teardown; failures mean the worker is
/// already gone.
fn shutdown_worker(addr: &str, id: usize) {
    let Ok(mut resolved) = addr.to_socket_addrs() else {
        return;
    };
    let Some(resolved) = resolved.next() else {
        return;
    };
    let Ok(stream) = TcpStream::connect_timeout(&resolved, Duration::from_secs(1)) else {
        return;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(1)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut hello = Vec::with_capacity(24);
    hello.extend_from_slice(&MAGIC);
    wire::put_varint(&mut hello, PROTOCOL_VERSION);
    wire::put_varint(&mut hello, ROLE_MASTER);
    wire::put_varint(&mut hello, id as u64);
    wire::put_varint(&mut hello, u64::MAX); // newest possible session
    wire::put_varint(&mut hello, 0); // no topology change
    let mut writer = &stream;
    if writer.write_all(&hello).is_err() {
        return;
    }
    let mut reader = &stream;
    let mut ack = [0u8; 4];
    if reader.read_exact(&mut ack).is_err() {
        return;
    }
    let _ = read_varint(&mut reader); // version
    let _ = read_varint(&mut reader); // echoed id
    let _ = writer.write_all(&[OP_SHUTDOWN as u8]);
    let mut reader = &stream;
    let _ = read_frame(&mut reader); // best-effort ack
    let _ = stream.shutdown(Shutdown::Both);
}

impl Transport for TcpTransport {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn topology(&self, num_partitions: usize) -> Topology {
        let state = dsr_sync::lock(&self.state);
        if let Some(current) = &state.topology {
            if current.num_partitions() == num_partitions {
                return current.clone();
            }
        }
        // Derive what ensure_mesh would build, without mutating (a
        // loopback mesh grows to the collective width on demand).
        let workers = if state.loopback.is_some() {
            state.addrs.len().max(num_partitions).max(1)
        } else {
            state.addrs.len().max(1)
        };
        let mut derived = match &state.assignments {
            Some(assignments) => Topology::from_worker_partitions(num_partitions, assignments)
                .unwrap_or_else(|_| {
                    Topology::round_robin(num_partitions, workers, state.replication)
                }),
            None => Topology::round_robin(num_partitions, workers, state.replication),
        };
        if let Some(current) = &state.topology {
            derived.inherit_suspects(current);
        }
        derived
    }

    fn scatter<M: WireMessage>(
        &self,
        messages: Vec<M>,
        stats: &CommStats,
    ) -> Result<Vec<M>, TransportError> {
        self.echo_round(messages, stats, FaultPhase::Scatter, "scatter")
    }

    fn gather<M: WireMessage>(
        &self,
        messages: Vec<M>,
        stats: &CommStats,
    ) -> Result<Vec<M>, TransportError> {
        self.echo_round(messages, stats, FaultPhase::Gather, "gather")
    }

    fn all_to_all<M: WireMessage>(
        &self,
        num_nodes: usize,
        outgoing: Vec<Vec<(usize, M)>>,
        stats: &CommStats,
    ) -> Result<Vec<Vec<(usize, M)>>, TransportError> {
        assert_eq!(outgoing.len(), num_nodes, "one send list per node");
        stats.record_round();
        let mut state = dsr_sync::lock(&self.state);
        self.ensure_ready(&mut state, num_nodes)?;
        self.fire_faults(&mut state, FaultPhase::Exchange);

        // Encode cross-node payloads (stats count each logical message
        // once, like every other backend — failover retries reuse these
        // frames); self-sends never touch a socket.
        let mut groups: BTreeMap<(usize, usize), Vec<Vec<u8>>> = BTreeMap::new();
        let mut self_sends: Vec<Vec<M>> = (0..num_nodes).map(|_| Vec::new()).collect();
        for (src, sends) in outgoing.into_iter().enumerate() {
            for (dst, message) in sends {
                assert!(dst < num_nodes, "destination {dst} out of range");
                if dst == src {
                    self_sends[src].push(message);
                } else {
                    groups
                        .entry((src, dst))
                        .or_default()
                        .push(Self::encode_and_count(&message, stats));
                }
            }
        }

        let mut incoming: Vec<Vec<(usize, M)>> = (0..num_nodes).map(|_| Vec::new()).collect();
        let mut attempts = 0usize;
        let mut backoff = FAILOVER_BACKOFF_START;
        loop {
            attempts += 1;
            // Route every partition through the current topology. Per
            // worker: the groups it must forward (src routed there) and
            // the groups it will collect (dst routed there), both in
            // (src, dst) order — the order every mesh lane preserves.
            let topology = state.topology.as_ref().expect("ensured");
            let mut route = vec![0usize; num_nodes];
            for (node, slot) in route.iter_mut().enumerate() {
                *slot = topology
                    .route(node)
                    .ok_or(TransportError::NoReplica { partition: node })?;
            }
            let mut send_plan: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
            let mut recv_plan: BTreeMap<usize, Vec<(usize, usize, usize)>> = BTreeMap::new();
            for (&(src, dst), frames) in &groups {
                send_plan.entry(route[src]).or_default().push((src, dst));
                recv_plan
                    .entry(route[dst])
                    .or_default()
                    .push((src, dst, frames.len()));
            }
            let involved: Vec<usize> = {
                let mut workers: Vec<usize> =
                    send_plan.keys().chain(recv_plan.keys()).copied().collect();
                workers.sort_unstable();
                workers.dedup();
                workers
            };

            // Per worker thread: the `(src, dst, message)` triples it
            // collected from its reply.
            let state_ref = &*state;
            let route_ref = &route;
            let outcomes: Vec<ExchangeOutcome<M>> = dsr_sync::thread::scope(|scope| {
                let tasks: Vec<_> = involved
                    .iter()
                    .map(|&worker| {
                        let link = state_ref.links[worker]
                            .as_ref()
                            .expect("routable workers are connected");
                        let groups = &groups;
                        let sends = send_plan.get(&worker);
                        let recvs = recv_plan.get(&worker);
                        let task = scope.spawn(
                            move || -> Result<Vec<(usize, usize, M)>, TransportError> {
                                let name = link.name(worker);
                                let mut op = Vec::new();
                                wire::put_varint(&mut op, OP_EXCHANGE);
                                let send_list = sends.map(Vec::as_slice).unwrap_or(&[]);
                                wire::put_varint(&mut op, send_list.len() as u64);
                                for &(src, dst) in send_list {
                                    let frames = &groups[&(src, dst)];
                                    wire::put_varint(&mut op, src as u64);
                                    wire::put_varint(&mut op, dst as u64);
                                    wire::put_varint(&mut op, route_ref[dst] as u64);
                                    wire::put_varint(&mut op, frames.len() as u64);
                                    for frame in frames {
                                        put_frame(&mut op, frame);
                                    }
                                }
                                let recv_list = recvs.map(Vec::as_slice).unwrap_or(&[]);
                                wire::put_varint(&mut op, recv_list.len() as u64);
                                for &(src, dst, count) in recv_list {
                                    wire::put_varint(&mut op, src as u64);
                                    wire::put_varint(&mut op, dst as u64);
                                    wire::put_varint(&mut op, route_ref[src] as u64);
                                    wire::put_varint(&mut op, count as u64);
                                }
                                let mut writer = &link.stream;
                                writer.write_all(&op).map_err(|e| {
                                    TransportError::from_io(&name, "exchange send", e)
                                })?;
                                let mut reader = &link.stream;
                                let mut collected = Vec::new();
                                for &(src, dst, count) in recv_list {
                                    for _ in 0..count {
                                        let frame = read_frame(&mut reader)
                                            .map_err(|e| e.classify(&name, "exchange reply"))?;
                                        collected.push((
                                            src,
                                            dst,
                                            wire::decode_exact::<M>(&frame)?,
                                        ));
                                    }
                                }
                                Ok(collected)
                            },
                        );
                        (worker, task)
                    })
                    .collect();
                tasks
                    .into_iter()
                    .map(|(worker, task)| (worker, task.join().expect("tcp exchange thread")))
                    .collect()
            });
            let mut failures: Vec<(usize, TransportError)> = Vec::new();
            let mut collected_all: Vec<Vec<(usize, usize, M)>> = Vec::new();
            for (worker, outcome) in outcomes {
                match outcome {
                    Ok(collected) => collected_all.push(collected),
                    Err(err) => failures.push((worker, err)),
                }
            }
            if failures.is_empty() {
                // Replies are per-worker; within one worker they are
                // (src, dst) sorted, and each dst is routed to exactly one
                // worker, so pushing in worker order keeps every inbox
                // sorted by source.
                for collected in collected_all {
                    for (src, dst, message) in collected {
                        incoming[dst].push((src, message));
                    }
                }
                break;
            }
            // An exchange is all-or-nothing per attempt: partial results
            // from surviving workers are discarded (their lanes may be
            // wedged mid-group), sessions are reset, and the whole round
            // is replayed against the post-failover routing.
            self.absorb_failures(&mut state, failures, attempts, true)?;
            dsr_sync::thread::sleep(backoff);
            backoff = (backoff * 2).min(FAILOVER_BACKOFF_MAX);
            self.ensure_ready(&mut state, num_nodes)?;
        }
        for inbox in &mut incoming {
            inbox.sort_by_key(|&(src, _)| src);
        }

        // Merge self-sends at their sorted position, preserving send order.
        for (node, messages) in self_sends.into_iter().enumerate() {
            let at = incoming[node].partition_point(|&(src, _)| src < node);
            for (offset, message) in messages.into_iter().enumerate() {
                incoming[node].insert(at + offset, (node, message));
            }
        }
        Ok(incoming)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        put_frame(&mut buf, b"hello");
        put_frame(&mut buf, b"");
        let mut cursor = Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"");
    }

    #[test]
    fn frame_codec_rejects_short_reads() {
        // Length prefix announces 5 bytes, stream holds 2: an error, not a
        // panic and not a hang.
        let mut buf = Vec::new();
        wire::put_varint(&mut buf, 5);
        buf.extend_from_slice(b"ab");
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, FrameIoError::Io(ref e)
            if e.kind() == std::io::ErrorKind::UnexpectedEof));
        // Truncated mid-varint.
        let err = read_frame(&mut Cursor::new(vec![0x80u8])).unwrap_err();
        assert!(matches!(err, FrameIoError::Io(_)));
        // Classified as a typed transport error with peer context.
        let classified = err.classify("worker 2", "exchange reply");
        assert!(matches!(classified, TransportError::Disconnected { .. }));
        assert!(classified.to_string().contains("worker 2"));
    }

    #[test]
    fn frame_codec_rejects_oversized_length_prefixes_before_allocating() {
        // A 1 TiB announcement must be rejected from the 10 prefix bytes
        // alone — if the guard were missing this test would try (and fail)
        // to allocate the buffer.
        let mut buf = Vec::new();
        wire::put_varint(&mut buf, 1 << 40);
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        match err {
            FrameIoError::Oversized(announced) => assert_eq!(announced, 1 << 40),
            other => panic!("expected Oversized, got {other:?}"),
        }
        let classified = err.classify("worker 0", "scatter reply");
        assert!(matches!(
            classified,
            TransportError::OversizedFrame {
                limit: MAX_FRAME_LEN,
                ..
            }
        ));
        // Varint overflow in the prefix is also typed.
        let err = read_frame(&mut Cursor::new(vec![0xFFu8; 11])).unwrap_err();
        assert!(matches!(err, FrameIoError::VarintOverflow));
    }

    #[test]
    fn cluster_spec_parses_toml_subset() {
        let spec = ClusterSpec::from_toml_str(
            r#"
            # three workers on loopback
            [cluster]
            workers = ["127.0.0.1:7101", "127.0.0.1:7102", "127.0.0.1:7103"]
            connect_timeout_ms = 1500
            io_timeout_ms = 12000
            "#,
        )
        .expect("parses");
        assert_eq!(spec.workers.len(), 3);
        assert_eq!(spec.workers[1], "127.0.0.1:7102");
        assert_eq!(spec.connect_timeout, Duration::from_millis(1500));
        assert_eq!(spec.io_timeout, Duration::from_millis(12000));

        // Defaults apply when the keys are omitted.
        let spec = ClusterSpec::from_toml_str("workers = [\"a:1\"]").expect("parses");
        assert_eq!(spec.io_timeout, Duration::from_secs(30));
    }

    #[test]
    fn cluster_spec_parses_replication_and_assignments() {
        let spec = ClusterSpec::from_toml_str(
            r#"
            workers = ["a:1", "b:2", "c:3"]
            replication = 2
            assignments = ["0, 1", "1, 2", "2, 0"]
            "#,
        )
        .expect("parses");
        assert_eq!(spec.replication, 2);
        assert_eq!(
            spec.assignments,
            Some(vec![vec![0, 1], vec![1, 2], vec![2, 0]])
        );

        // Replication defaults to 1 with no assignments.
        let spec = ClusterSpec::from_toml_str("workers = [\"a:1\"]").expect("parses");
        assert_eq!(spec.replication, 1);
        assert_eq!(spec.assignments, None);

        let err = ClusterSpec::from_toml_str("workers = [\"a:1\"]\nreplication = 0").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = ClusterSpec::from_toml_str("workers = [\"a:1\", \"b:2\"]\nassignments = [\"0\"]")
            .unwrap_err();
        assert!(err.contains("assignments"), "{err}");
        let err = ClusterSpec::from_toml_str("workers = [\"a:1\"]\nassignments = [\"zero\"]")
            .unwrap_err();
        assert!(err.contains("partition ids"), "{err}");
    }

    #[test]
    fn cluster_spec_builder_validates() {
        let spec = ClusterSpec::builder(vec!["a:1".into(), "b:2".into()])
            .replication(2)
            .connect_timeout(Duration::from_secs(1))
            .io_timeout(Duration::from_secs(2))
            .build()
            .expect("valid");
        assert_eq!(spec.replication, 2);
        assert_eq!(spec.connect_timeout, Duration::from_secs(1));
        assert_eq!(spec.io_timeout, Duration::from_secs(2));

        assert!(ClusterSpec::builder(Vec::new()).build().is_err());
        assert!(ClusterSpec::builder(vec!["a:1".into()])
            .replication(0)
            .build()
            .is_err());
        assert!(ClusterSpec::builder(vec!["a:1".into(), "b:2".into()])
            .assignments(vec![vec![0]])
            .build()
            .is_err());
    }

    #[test]
    fn cluster_spec_rejects_garbage_with_line_numbers() {
        let err = ClusterSpec::from_toml_str("workers = [\"a:1\"]\nbogus_key = 3").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("bogus_key"), "{err}");
        let err = ClusterSpec::from_toml_str("").unwrap_err();
        assert!(err.contains("workers"));
        let err = ClusterSpec::from_toml_str("workers = []").unwrap_err();
        assert!(err.contains("at least one"));
        let err = ClusterSpec::from_toml_str("workers = [unquoted]").unwrap_err();
        assert!(err.contains("double-quoted"));
    }

    #[test]
    fn loopback_mesh_grows_and_routes() {
        let transport = TcpTransport::loopback_with_timeout(Duration::from_secs(10));
        let stats = CommStats::new();
        for k in [2usize, 4, 3] {
            let outgoing: Vec<Vec<(usize, u32)>> =
                (0..k).map(|i| vec![((i + 1) % k, i as u32)]).collect();
            let incoming = transport.all_to_all(k, outgoing, &stats).expect("exchange");
            for dst in 0..k {
                let expected_src = (dst + k - 1) % k;
                assert_eq!(incoming[dst], vec![(expected_src, expected_src as u32)]);
            }
        }
        assert_eq!(transport.num_workers(), 4, "mesh grew to the largest k");
    }

    #[test]
    fn connecting_to_a_non_protocol_peer_fails_the_handshake() {
        // A listener that answers every connection with garbage.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let rogue = dsr_sync::thread::spawn(move || {
            if let Ok((mut conn, _)) = listener.accept() {
                let _ = conn.write_all(b"HTTP/1.1 400 Bad Request\r\n\r\n");
            }
        });
        let mut spec = ClusterSpec::new(vec![addr.clone()]);
        spec.connect_timeout = Duration::from_secs(5);
        spec.io_timeout = Duration::from_secs(5);
        let err = TcpTransport::connect(&spec).expect_err("handshake must fail");
        match &err {
            TransportError::Handshake { peer, reason } => {
                assert!(peer.contains(&addr), "peer named: {peer}");
                assert!(reason.contains("magic"), "actionable reason: {reason}");
            }
            other => panic!("expected Handshake error, got {other}"),
        }
        rogue.join().expect("rogue listener");
    }

    #[test]
    fn connecting_to_a_dead_address_is_a_typed_error() {
        // Port 1 on loopback is essentially never listening.
        let mut spec = ClusterSpec::new(vec!["127.0.0.1:1".to_string()]);
        spec.connect_timeout = Duration::from_millis(500);
        let err = TcpTransport::connect(&spec).expect_err("nothing listens there");
        assert!(
            matches!(
                err,
                TransportError::Io { .. } | TransportError::Timeout { .. }
            ),
            "got {err}"
        );
        assert!(err.to_string().contains("127.0.0.1:1"));
    }

    #[test]
    fn worker_death_mid_session_surfaces_disconnected() {
        let transport = TcpTransport::loopback_with_timeout(Duration::from_secs(5));
        let stats = CommStats::new();
        // Healthy first round establishes the 3-worker mesh.
        let delivered = transport
            .scatter(vec![1u32, 2, 3], &stats)
            .expect("healthy scatter");
        assert_eq!(delivered, vec![1, 2, 3]);
        // Kill worker 1 and observe the next collective fail with a typed
        // error instead of panicking or hanging.
        transport.debug_disconnect_worker(1);
        let err = transport
            .scatter(vec![4u32, 5, 6], &stats)
            .expect_err("dead worker must surface");
        assert!(
            matches!(
                err,
                TransportError::Disconnected { .. }
                    | TransportError::Io { .. }
                    | TransportError::Timeout { .. }
            ),
            "got {err}"
        );
        assert!(err.to_string().contains("worker 1"), "{err}");
    }

    #[test]
    fn replicated_scatter_survives_a_worker_death() {
        let transport = TcpTransport::loopback_replicated_with_timeout(2, Duration::from_secs(5));
        let stats = CommStats::new();
        let delivered = transport
            .scatter(vec![1u32, 2, 3], &stats)
            .expect("healthy scatter");
        assert_eq!(delivered, vec![1, 2, 3]);

        transport.inject_faults(FaultPlan::new().disconnect(1));
        let delivered = transport
            .scatter(vec![4u32, 5, 6], &stats)
            .expect("failover routes around the dead worker");
        assert_eq!(delivered, vec![4, 5, 6]);
        let failover = transport.failover_stats().snapshot();
        assert!(failover.retries >= 1, "{failover:?}");
        assert_eq!(failover.suspects, 1, "{failover:?}");
        assert_eq!(transport.suspects(), vec![1]);
        // The collective is byte-identical to a fault-free run: encoded
        // once, retried from the same frames.
        let baseline = CommStats::new();
        let clean = TcpTransport::loopback_with_timeout(Duration::from_secs(5));
        clean.scatter(vec![1u32, 2, 3], &baseline).expect("clean");
        clean.scatter(vec![4u32, 5, 6], &baseline).expect("clean");
        assert_eq!(stats.snapshot(), baseline.snapshot());
    }

    #[test]
    fn replicated_exchange_survives_a_worker_death() {
        let transport = TcpTransport::loopback_replicated_with_timeout(2, Duration::from_secs(5));
        let stats = CommStats::new();
        let k = 3usize;
        let ring = |tag: u32| -> Vec<Vec<(usize, u32)>> {
            (0..k)
                .map(|i| vec![((i + 1) % k, tag + i as u32)])
                .collect()
        };
        let incoming = transport.all_to_all(k, ring(10), &stats).expect("healthy");
        assert_eq!(incoming[1], vec![(0, 10)]);

        transport.inject_faults(FaultPlan::new().disconnect(0).during(FaultPhase::Exchange));
        let incoming = transport
            .all_to_all(k, ring(20), &stats)
            .expect("failover replays the exchange");
        for dst in 0..k {
            let src = (dst + k - 1) % k;
            assert_eq!(incoming[dst], vec![(src, 20 + src as u32)], "dst {dst}");
        }
        let failover = transport.failover_stats().snapshot();
        assert!(failover.retries >= 1, "{failover:?}");
        assert_eq!(failover.suspects, 1, "{failover:?}");
    }

    #[test]
    fn fault_phase_gating_and_after_threshold() {
        let transport = TcpTransport::loopback_replicated_with_timeout(2, Duration::from_secs(5));
        let stats = CommStats::new();
        // Armed for an exchange only: scatters sail through unharmed.
        transport.inject_faults(
            FaultPlan::new()
                .disconnect(2)
                .after(2)
                .during(FaultPhase::Exchange),
        );
        transport
            .scatter(vec![1u32, 2, 3], &stats)
            .expect("collective 0");
        transport
            .scatter(vec![1u32, 2, 3], &stats)
            .expect("collective 1");
        transport
            .scatter(vec![1u32, 2, 3], &stats)
            .expect("collective 2: wrong phase");
        assert_eq!(transport.failover_stats().snapshot().retries, 0);
        // First exchange at/after the threshold fires the fault.
        let outgoing: Vec<Vec<(usize, u32)>> =
            (0..3).map(|i| vec![(((i + 1) % 3), i as u32)]).collect();
        transport
            .all_to_all(3, outgoing, &stats)
            .expect("failover absorbs it");
        assert_eq!(transport.suspects(), vec![2]);
        assert!(transport.failover_stats().snapshot().retries >= 1);
    }

    #[test]
    fn rejoined_worker_serves_again_after_resync() {
        let transport = TcpTransport::loopback_replicated_with_timeout(2, Duration::from_secs(5));
        let stats = CommStats::new();
        transport
            .scatter(vec![1u32, 2, 3], &stats)
            .expect("healthy scatter");
        transport.inject_faults(FaultPlan::new().disconnect(1));
        transport
            .scatter(vec![4u32, 5, 6], &stats)
            .expect("failover");
        assert_eq!(transport.suspects(), vec![1]);

        // Loopback worker threads survive the severed link (rejoin_wait),
        // so the suspect can be re-adopted, replaying a backlog through it.
        let resync_stats = CommStats::new();
        let backlog = vec![7u32, 8, 9];
        let rejoined = transport.rejoin_suspects(&backlog, &resync_stats);
        assert_eq!(rejoined, vec![1]);
        assert!(transport.suspects().is_empty());
        let failover = transport.failover_stats().snapshot();
        assert_eq!(failover.resyncs, 1, "{failover:?}");
        let (rounds, messages, bytes) = resync_stats.snapshot();
        assert_eq!(rounds, 1);
        assert_eq!(messages, backlog.len() as u64);
        assert!(bytes > 0);

        // The rejoined worker serves the next collective.
        let delivered = transport
            .scatter(vec![10u32, 11, 12], &stats)
            .expect("post-rejoin scatter");
        assert_eq!(delivered, vec![10, 11, 12]);
    }

    #[test]
    fn unreplicated_cluster_stays_fail_fast() {
        // R=1: a suspect makes its partitions unroutable, so the typed
        // error (naming the worker) surfaces instead of a futile retry.
        let transport = TcpTransport::loopback_with_timeout(Duration::from_secs(5));
        let stats = CommStats::new();
        transport
            .scatter(vec![1u32, 2, 3], &stats)
            .expect("healthy");
        transport.inject_faults(FaultPlan::new().disconnect(2));
        let err = transport
            .scatter(vec![4u32, 5, 6], &stats)
            .expect_err("no replica to fail over to");
        assert!(err.to_string().contains("worker 2"), "{err}");
        // And the suspect sticks: the next collective fails fast on the
        // routing table without waiting on sockets.
        let err = transport
            .scatter(vec![7u32, 8, 9], &stats)
            .expect_err("still unroutable");
        assert!(
            matches!(err, TransportError::NoReplica { partition: 2 }),
            "got {err}"
        );
    }

    #[test]
    fn transport_reports_its_topology() {
        let transport = TcpTransport::loopback_replicated_with_timeout(2, Duration::from_secs(5));
        // Before any collective: derived from the replication factor.
        let topo = transport.topology(3);
        assert_eq!(topo.replication(), 2);
        assert_eq!(topo.replicas(0), &[0, 1]);
        let stats = CommStats::new();
        transport
            .scatter(vec![1u32, 2, 3], &stats)
            .expect("healthy");
        transport.inject_faults(FaultPlan::new().disconnect(0));
        transport
            .scatter(vec![4u32, 5, 6], &stats)
            .expect("failover");
        // After failover: the reported table carries the suspect flag.
        let topo = transport.topology(3);
        assert!(topo.is_suspect(0));
        assert_eq!(topo.route(0), Some(1));
    }
}
