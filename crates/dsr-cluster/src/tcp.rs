//! TCP transport: the scatter/exchange/gather collectives over real
//! sockets and real worker endpoints.
//!
//! This is the deployment backend of the reproduction. Where
//! [`WireTransport`](crate::WireTransport) ships encoded frames through OS
//! pipes inside one process, [`TcpTransport`] routes every frame through
//! **worker endpoints** speaking a length-framed protocol over
//! [`std::net::TcpStream`]:
//!
//! * **scatter / gather** — the master round-trips each slave's frame
//!   through the worker hosting that partition (`ECHO` op), so every
//!   payload is encoded, crosses a socket, and is decoded from the bytes
//!   the worker actually returned.
//! * **all-to-all** — each payload takes the realistic two-hop route
//!   `master → worker(src) → worker(dst) → master`: workers forward frames
//!   to each other over a lazily built **worker-to-worker mesh** of
//!   directed TCP lanes, exactly like slaves exchanging Step-2 buffers in
//!   the paper's MPI deployment. [`CommStats`] counts each logical message
//!   once (at encode time), so the three backends report byte-identical
//!   volumes.
//!
//! Two modes share all of this code:
//!
//! * [`TcpTransport::loopback`] self-hosts its workers as threads inside
//!   the current process, each serving a real `127.0.0.1` socket. This is
//!   what `DSR_TRANSPORT=tcp` uses, so the whole test matrix runs over
//!   genuine sockets with zero orchestration.
//! * [`TcpTransport::connect`] attaches to **external worker processes**
//!   (the `dsr-node` binary) described by a [`ClusterSpec`]. Workers host
//!   one or more partitions (`partition → partition % workers`).
//!
//! Failures are values, not panics: a worker dying mid-exchange, a
//! handshake against a non-protocol peer, a timed-out read or an oversized
//! frame all surface as a typed [`TransportError`] from the collective
//! that observed them.
//!
//! # Protocol
//!
//! Every connection starts with a hello (`b"DSRT"`, protocol version,
//! role). The master assigns each worker its id and the cluster topology
//! (the peer address list); topology updates are re-sent when a loopback
//! mesh grows. Frames are varint-length-prefixed byte strings with a hard
//! [`MAX_FRAME_LEN`] sanity limit, checked **before** any allocation.

use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::error::TransportError;
use crate::stats::CommStats;
use crate::transport::{Transport, WireMessage};
use crate::wire;

/// Connection magic: four bytes every hello starts with.
pub const MAGIC: [u8; 4] = *b"DSRT";

/// Protocol version carried in every hello.
pub const PROTOCOL_VERSION: u64 = 1;

/// Hard upper bound on a single frame's announced length. A corrupt stream
/// (or a peer that is not speaking the protocol) is rejected before the
/// transport allocates a buffer for it.
pub const MAX_FRAME_LEN: u64 = 256 * 1024 * 1024;

const ROLE_MASTER: u64 = 0;
const ROLE_PEER: u64 = 1;

const OP_ECHO: u64 = 1;
const OP_TOPOLOGY: u64 = 2;
const OP_EXCHANGE: u64 = 3;
const OP_SHUTDOWN: u64 = 4;

// ---------------------------------------------------------------------------
// Frame codec over byte streams.
// ---------------------------------------------------------------------------

/// Low-level framing failure, classified into [`TransportError`] by the
/// caller (which knows the peer and the phase).
#[derive(Debug)]
pub(crate) enum FrameIoError {
    /// The underlying read/write failed (includes clean EOF).
    Io(std::io::Error),
    /// A varint exceeded 64 bits.
    VarintOverflow,
    /// A frame announced a length beyond [`MAX_FRAME_LEN`].
    Oversized(u64),
}

impl FrameIoError {
    fn classify(self, peer: &str, context: &str) -> TransportError {
        match self {
            FrameIoError::Io(source) => TransportError::from_io(peer, context, source),
            FrameIoError::VarintOverflow => TransportError::Protocol {
                peer: peer.to_string(),
                reason: format!("varint overflow during {context}"),
            },
            FrameIoError::Oversized(announced) => TransportError::OversizedFrame {
                announced,
                limit: MAX_FRAME_LEN,
            },
        }
    }
}

impl From<std::io::Error> for FrameIoError {
    fn from(err: std::io::Error) -> Self {
        FrameIoError::Io(err)
    }
}

/// Reads one LEB128 varint from a byte stream.
pub(crate) fn read_varint(reader: &mut impl Read) -> Result<u64, FrameIoError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        reader.read_exact(&mut byte)?;
        if shift == 63 && byte[0] & 0x7F > 1 {
            return Err(FrameIoError::VarintOverflow);
        }
        value |= u64::from(byte[0] & 0x7F) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift >= 64 {
            return Err(FrameIoError::VarintOverflow);
        }
    }
}

/// Reads one varint-length-prefixed frame, rejecting announced lengths
/// beyond [`MAX_FRAME_LEN`] *before* allocating.
pub(crate) fn read_frame(reader: &mut impl Read) -> Result<Vec<u8>, FrameIoError> {
    let len = read_varint(reader)?;
    if len > MAX_FRAME_LEN {
        return Err(FrameIoError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    Ok(payload)
}

/// Appends a varint-length-prefixed frame to `buf`.
pub(crate) fn put_frame(buf: &mut Vec<u8>, frame: &[u8]) {
    wire::put_varint(buf, frame.len() as u64);
    buf.extend_from_slice(frame);
}

/// Appends a varint-length-prefixed UTF-8 string to `buf`.
fn put_string(buf: &mut Vec<u8>, s: &str) {
    put_frame(buf, s.as_bytes());
}

fn read_string(reader: &mut impl Read) -> Result<String, FrameIoError> {
    let bytes = read_frame(reader)?;
    String::from_utf8(bytes).map_err(|_| {
        FrameIoError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "address is not UTF-8",
        ))
    })
}

// ---------------------------------------------------------------------------
// Cluster specification.
// ---------------------------------------------------------------------------

/// Describes a TCP cluster: the worker addresses and the socket policies.
///
/// Parsed from a minimal TOML subset ([`ClusterSpec::from_toml_str`] /
/// [`ClusterSpec::from_file`]) or from the environment
/// ([`ClusterSpec::from_env`]):
///
/// ```toml
/// # cluster.toml — addresses in partition order; partition p is hosted by
/// # worker p % len(workers).
/// workers = ["127.0.0.1:7101", "127.0.0.1:7102", "127.0.0.1:7103"]
/// connect_timeout_ms = 5000
/// io_timeout_ms = 30000
/// ```
///
/// Environment form: `DSR_CLUSTER_WORKERS=127.0.0.1:7101,127.0.0.1:7102`
/// plus optional `DSR_CLUSTER_CONNECT_TIMEOUT_MS` /
/// `DSR_CLUSTER_IO_TIMEOUT_MS`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Worker addresses (`host:port`), in worker-id order.
    pub workers: Vec<String>,
    /// How long [`TcpTransport::connect`] waits for each worker socket.
    pub connect_timeout: Duration,
    /// Read/write timeout applied to every cluster socket; an exceeded
    /// timeout surfaces as [`TransportError::Timeout`] instead of a hang.
    pub io_timeout: Duration,
}

impl ClusterSpec {
    /// A spec for `workers` with the default timeouts (5 s connect,
    /// 30 s I/O).
    pub fn new(workers: Vec<String>) -> Self {
        ClusterSpec {
            workers,
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(30),
        }
    }

    /// Parses the TOML subset shown in the type docs: `key = value` lines,
    /// string arrays, integers, `#` comments, and an optional `[cluster]`
    /// section header. Unknown keys are rejected (a typo should fail, not
    /// silently fall back to a default).
    pub fn from_toml_str(text: &str) -> Result<Self, String> {
        let mut workers: Option<Vec<String>> = None;
        let mut connect_timeout_ms: Option<u64> = None;
        let mut io_timeout_ms: Option<u64> = None;
        for (number, raw) in text.lines().enumerate() {
            let line = match raw.find('#') {
                Some(at) => &raw[..at],
                None => raw,
            }
            .trim();
            if line.is_empty() || line == "[cluster]" {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", number + 1))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "workers" => workers = Some(parse_string_array(value, number + 1)?),
                "connect_timeout_ms" => {
                    connect_timeout_ms = Some(parse_integer(value, number + 1)?)
                }
                "io_timeout_ms" => io_timeout_ms = Some(parse_integer(value, number + 1)?),
                other => {
                    return Err(format!(
                        "line {}: unknown key {other:?} (expected workers, \
                         connect_timeout_ms or io_timeout_ms)",
                        number + 1
                    ))
                }
            }
        }
        let workers = workers.ok_or_else(|| "missing `workers = [...]`".to_string())?;
        if workers.is_empty() {
            return Err("`workers` must list at least one address".to_string());
        }
        let mut spec = ClusterSpec::new(workers);
        if let Some(ms) = connect_timeout_ms {
            spec.connect_timeout = Duration::from_millis(ms);
        }
        if let Some(ms) = io_timeout_ms {
            spec.io_timeout = Duration::from_millis(ms);
        }
        Ok(spec)
    }

    /// Reads and parses a spec file (see [`ClusterSpec::from_toml_str`]).
    pub fn from_file(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|err| format!("cannot read {}: {err}", path.display()))?;
        Self::from_toml_str(&text)
    }

    /// Builds a spec from `DSR_CLUSTER_WORKERS` (comma-separated
    /// addresses); returns `None` when the variable is unset.
    pub fn from_env() -> Option<Result<Self, String>> {
        let workers = std::env::var("DSR_CLUSTER_WORKERS").ok()?;
        let workers: Vec<String> = workers
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        if workers.is_empty() {
            return Some(Err("DSR_CLUSTER_WORKERS lists no addresses".to_string()));
        }
        let mut spec = ClusterSpec::new(workers);
        for (var, slot) in [
            ("DSR_CLUSTER_CONNECT_TIMEOUT_MS", &mut spec.connect_timeout),
            ("DSR_CLUSTER_IO_TIMEOUT_MS", &mut spec.io_timeout),
        ] {
            if let Ok(value) = std::env::var(var) {
                match value.parse::<u64>() {
                    Ok(ms) => *slot = Duration::from_millis(ms),
                    Err(_) => return Some(Err(format!("{var} must be an integer, got {value:?}"))),
                }
            }
        }
        Some(Ok(spec))
    }
}

fn parse_string_array(value: &str, line: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("line {line}: expected a [\"...\"] array"))?;
    let mut items = Vec::new();
    for piece in inner.split(',') {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        let unquoted = piece
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("line {line}: array items must be double-quoted strings"))?;
        items.push(unquoted.to_string());
    }
    Ok(items)
}

fn parse_integer(value: &str, line: usize) -> Result<u64, String> {
    value
        .parse::<u64>()
        .map_err(|_| format!("line {line}: expected an integer, got {value:?}"))
}

// ---------------------------------------------------------------------------
// Worker endpoint (shared by loopback threads and the dsr-node binary).
// ---------------------------------------------------------------------------

/// Options for [`serve_worker`].
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Read/write timeout on peer-mesh sockets (and the handshake read).
    pub io_timeout: Duration,
    /// How long to wait for a master to connect before giving up
    /// (`None` = forever, the right default for a standalone worker).
    pub master_wait: Option<Duration>,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            io_timeout: Duration::from_secs(30),
            master_wait: None,
        }
    }
}

struct WorkerShared {
    options: WorkerOptions,
    /// Master connection slot, filled by the acceptor.
    master: Mutex<Option<TcpStream>>,
    master_cv: Condvar,
    /// Incoming peer lanes by source worker id.
    incoming: Mutex<HashMap<usize, TcpStream>>,
    incoming_cv: Condvar,
    /// Outgoing peer lanes by destination worker id.
    outgoing: Mutex<HashMap<usize, TcpStream>>,
    /// Assigned by the master hello.
    state: Mutex<WorkerState>,
    /// Set when the master session ended; tells the acceptor to exit.
    done: std::sync::atomic::AtomicBool,
}

#[derive(Default)]
struct WorkerState {
    my_id: usize,
    topology: Vec<String>,
}

/// Binds a listener for a worker. Separated from [`serve_worker`] so
/// callers can report the bound address (e.g. when listening on port 0)
/// before serving. A bind conflict returns an actionable error naming the
/// address.
pub fn bind_worker(listen: &str) -> Result<TcpListener, TransportError> {
    TcpListener::bind(listen).map_err(|source| TransportError::Io {
        context: format!("failed to bind worker listener on {listen}"),
        source,
    })
}

/// Serves **one master session** on `listener`: waits for a master hello,
/// relays scatter/gather/exchange ops (forwarding exchange frames over the
/// worker mesh) until the master shuts the session down or disconnects,
/// then returns. The `dsr-node worker` command and the loopback workers of
/// [`TcpTransport::loopback`] both run exactly this function.
pub fn serve_worker(listener: TcpListener, options: WorkerOptions) -> Result<(), TransportError> {
    let local = listener.local_addr().map_err(|source| TransportError::Io {
        context: "worker listener has no local address".to_string(),
        source,
    })?;
    let shared = Arc::new(WorkerShared {
        options: options.clone(),
        master: Mutex::new(None),
        master_cv: Condvar::new(),
        incoming: Mutex::new(HashMap::new()),
        incoming_cv: Condvar::new(),
        outgoing: Mutex::new(HashMap::new()),
        state: Mutex::new(WorkerState::default()),
        done: std::sync::atomic::AtomicBool::new(false),
    });
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(listener, shared))
    };

    let result = (|| {
        let master = wait_for_master(&shared)?;
        relay_loop(&master, &shared)
    })();

    // Wake the acceptor (blocked in `accept`) so it can observe the ended
    // session and exit; then release every cached lane.
    shared.done.store(true, std::sync::atomic::Ordering::SeqCst);
    let _ = TcpStream::connect(local);
    let _ = acceptor.join();
    for (_, lane) in shared.outgoing.lock().expect("outgoing lanes").drain() {
        let _ = lane.shutdown(Shutdown::Both);
    }
    result
}

fn wait_for_master(shared: &WorkerShared) -> Result<TcpStream, TransportError> {
    let mut slot = shared.master.lock().expect("master slot");
    loop {
        if let Some(master) = slot.take() {
            return Ok(master);
        }
        match shared.options.master_wait {
            None => slot = shared.master_cv.wait(slot).expect("master slot"),
            Some(limit) => {
                let (next, timeout) = shared
                    .master_cv
                    .wait_timeout(slot, limit)
                    .expect("master slot");
                slot = next;
                if timeout.timed_out() && slot.is_none() {
                    return Err(TransportError::Timeout {
                        peer: "master".to_string(),
                        context: "waiting for a master to connect".to_string(),
                    });
                }
            }
        }
    }
}

/// Accepts connections and registers them by their hello role. Runs until
/// the session owner sets `done` and wakes it with a dummy connection.
fn accept_loop(listener: TcpListener, shared: Arc<WorkerShared>) {
    for conn in listener.incoming() {
        if shared.done.load(std::sync::atomic::Ordering::SeqCst) {
            break;
        }
        // Transient accept failures (ECONNABORTED from a client that gave
        // up, EINTR, fd pressure) must not end the session's ability to
        // register peers — skip and keep accepting.
        let Ok(stream) = conn else { continue };
        // Handshakes run on their own thread: a non-protocol connection
        // (port scan, wrong magic) or a client that connects and sends
        // nothing can stall for up to io_timeout, and must not head-of-
        // line-block a legitimate peer lane registering behind it. The
        // thread is short-lived (bounded by the handshake read timeout)
        // and registration order is irrelevant — waiters sit on condvars.
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            let _ = register_connection(stream, &shared);
        });
    }
}

fn register_connection(stream: TcpStream, shared: &WorkerShared) -> Result<(), TransportError> {
    let peer = "connecting peer";
    stream
        .set_read_timeout(Some(shared.options.io_timeout))
        .map_err(|e| TransportError::from_io(peer, "set handshake timeout", e))?;
    let _ = stream.set_nodelay(true);
    let mut reader = &stream;
    let mut magic = [0u8; 4];
    reader
        .read_exact(&mut magic)
        .map_err(|e| TransportError::from_io(peer, "read hello magic", e))?;
    if magic != MAGIC {
        return Err(TransportError::Handshake {
            peer: peer.to_string(),
            reason: format!("bad magic {magic:?} (expected {MAGIC:?})"),
        });
    }
    let version = read_varint(&mut reader).map_err(|e| e.classify(peer, "read hello version"))?;
    if version != PROTOCOL_VERSION {
        return Err(TransportError::Handshake {
            peer: peer.to_string(),
            reason: format!("protocol version {version} (expected {PROTOCOL_VERSION})"),
        });
    }
    let role = read_varint(&mut reader).map_err(|e| e.classify(peer, "read hello role"))?;
    match role {
        ROLE_MASTER => {
            let my_id = read_varint(&mut reader).map_err(|e| e.classify(peer, "read id"))? as usize;
            let count =
                read_varint(&mut reader).map_err(|e| e.classify(peer, "read topology"))? as usize;
            let mut topology = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                topology
                    .push(read_string(&mut reader).map_err(|e| e.classify(peer, "read topology"))?);
            }
            {
                let mut state = shared.state.lock().expect("worker state");
                state.my_id = my_id;
                state.topology = topology;
            }
            // Acknowledge so the master knows it reached a protocol worker.
            let mut ack = Vec::with_capacity(16);
            ack.extend_from_slice(&MAGIC);
            wire::put_varint(&mut ack, PROTOCOL_VERSION);
            wire::put_varint(&mut ack, my_id as u64);
            let mut writer = &stream;
            writer
                .write_all(&ack)
                .map_err(|e| TransportError::from_io(peer, "write hello ack", e))?;
            // The relay loop blocks between collectives for arbitrarily
            // long: no read timeout on the master connection.
            let _ = stream.set_read_timeout(None);
            let mut slot = shared.master.lock().expect("master slot");
            *slot = Some(stream);
            shared.master_cv.notify_all();
        }
        ROLE_PEER => {
            let from =
                read_varint(&mut reader).map_err(|e| e.classify(peer, "read peer id"))? as usize;
            let mut lanes = shared.incoming.lock().expect("incoming lanes");
            lanes.insert(from, stream);
            shared.incoming_cv.notify_all();
        }
        other => {
            return Err(TransportError::Handshake {
                peer: peer.to_string(),
                reason: format!("unknown hello role {other}"),
            })
        }
    }
    Ok(())
}

/// One forwarded group of frames: payloads from logical node `src` to
/// logical node `dst`.
struct Group {
    src: usize,
    dst: usize,
    frames: Vec<Vec<u8>>,
}

fn relay_loop(master: &TcpStream, shared: &WorkerShared) -> Result<(), TransportError> {
    let peer = "master";
    let mut reader = master;
    loop {
        let opcode = match read_varint(&mut reader) {
            Ok(op) => op,
            // The master dropping the connection between ops is a clean
            // session end, not an error.
            Err(FrameIoError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return Ok(())
            }
            Err(e) => return Err(e.classify(peer, "read opcode")),
        };
        match opcode {
            OP_ECHO => {
                let frame = read_frame(&mut reader).map_err(|e| e.classify(peer, "read echo"))?;
                let mut out = Vec::with_capacity(frame.len() + wire::MAX_VARINT_LEN);
                put_frame(&mut out, &frame);
                let mut writer = master;
                writer
                    .write_all(&out)
                    .map_err(|e| TransportError::from_io(peer, "write echo reply", e))?;
            }
            OP_TOPOLOGY => {
                let count = read_varint(&mut reader)
                    .map_err(|e| e.classify(peer, "read topology size"))?
                    as usize;
                let mut topology = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    topology.push(
                        read_string(&mut reader).map_err(|e| e.classify(peer, "read topology"))?,
                    );
                }
                shared.state.lock().expect("worker state").topology = topology;
            }
            OP_EXCHANGE => handle_exchange(master, shared)?,
            OP_SHUTDOWN => {
                let mut writer = master;
                let _ = writer.write_all(&[0]); // empty ack frame
                return Ok(());
            }
            other => {
                return Err(TransportError::Protocol {
                    peer: peer.to_string(),
                    reason: format!("unknown opcode {other}"),
                })
            }
        }
    }
}

fn handle_exchange(master: &TcpStream, shared: &WorkerShared) -> Result<(), TransportError> {
    let peer = "master";
    let mut reader = master;
    let context = "read exchange op";
    let send_count = read_varint(&mut reader).map_err(|e| e.classify(peer, context))? as usize;
    let mut sends: Vec<Group> = Vec::with_capacity(send_count.min(1024));
    for _ in 0..send_count {
        let src = read_varint(&mut reader).map_err(|e| e.classify(peer, context))? as usize;
        let dst = read_varint(&mut reader).map_err(|e| e.classify(peer, context))? as usize;
        let frame_count = read_varint(&mut reader).map_err(|e| e.classify(peer, context))? as usize;
        let mut frames = Vec::with_capacity(frame_count.min(4096));
        for _ in 0..frame_count {
            frames.push(read_frame(&mut reader).map_err(|e| e.classify(peer, context))?);
        }
        sends.push(Group { src, dst, frames });
    }
    let recv_count = read_varint(&mut reader).map_err(|e| e.classify(peer, context))? as usize;
    let mut recvs: Vec<(usize, usize, usize)> = Vec::with_capacity(recv_count.min(1024));
    for _ in 0..recv_count {
        let src = read_varint(&mut reader).map_err(|e| e.classify(peer, context))? as usize;
        let dst = read_varint(&mut reader).map_err(|e| e.classify(peer, context))? as usize;
        let count = read_varint(&mut reader).map_err(|e| e.classify(peer, context))? as usize;
        recvs.push((src, dst, count));
    }

    let (my_id, topology) = {
        let state = shared.state.lock().expect("worker state");
        (state.my_id, state.topology.clone())
    };
    let num_workers = topology.len().max(1);
    let worker_of = |node: usize| node % num_workers;

    // Split sends: groups whose destination lives on this worker short-
    // circuit locally; the rest are forwarded over the peer mesh, one
    // writer thread per destination worker so a full socket buffer can
    // never produce a circular wait.
    let mut local: HashMap<(usize, usize), Vec<Vec<u8>>> = HashMap::new();
    let mut remote: BTreeMap<usize, Vec<Group>> = BTreeMap::new();
    for group in sends {
        if worker_of(group.dst) == my_id {
            local.insert((group.src, group.dst), group.frames);
        } else {
            remote.entry(worker_of(group.dst)).or_default().push(group);
        }
    }

    let mut received: Vec<Vec<Vec<u8>>> = Vec::with_capacity(recvs.len());
    let forward_result: Result<(), TransportError> = std::thread::scope(|scope| {
        let writers: Vec<_> = remote
            .into_iter()
            .map(|(worker, groups)| {
                let shared = &shared;
                let topology = &topology;
                scope.spawn(move || forward_groups(shared, topology, my_id, worker, groups))
            })
            .collect();

        // Read the expected groups while the writers run. Per-lane frames
        // arrive in master-specified (src, dst) order.
        let mut lanes: HashMap<usize, TcpStream> = HashMap::new();
        for &(src, dst, count) in &recvs {
            if worker_of(src) == my_id {
                let frames = local
                    .remove(&(src, dst))
                    .ok_or_else(|| TransportError::Protocol {
                        peer: peer.to_string(),
                        reason: format!("exchange op lists local group {src}->{dst} it never sent"),
                    })?;
                if frames.len() != count {
                    return Err(TransportError::Protocol {
                        peer: peer.to_string(),
                        reason: format!(
                            "local group {src}->{dst}: expected {count} frames, got {}",
                            frames.len()
                        ),
                    });
                }
                received.push(frames);
            } else {
                let from = worker_of(src);
                if let std::collections::hash_map::Entry::Vacant(slot) = lanes.entry(from) {
                    slot.insert(incoming_lane(shared, from, &topology)?);
                }
                let lane = lanes.get_mut(&from).expect("lane just inserted");
                received.push(read_group(lane, from, src, dst, count, &topology)?);
            }
        }
        for writer in writers {
            writer.join().expect("peer forward thread")?;
        }
        Ok(())
    });
    forward_result?;

    // Reply: the frames of every expected group, in op order.
    let mut reply = Vec::new();
    for frames in &received {
        for frame in frames {
            put_frame(&mut reply, frame);
        }
    }
    let mut writer = master;
    writer
        .write_all(&reply)
        .map_err(|e| TransportError::from_io(peer, "write exchange reply", e))
}

/// Connects (or reuses) the outgoing lane to `worker` and writes `groups`
/// in order.
fn forward_groups(
    shared: &WorkerShared,
    topology: &[String],
    my_id: usize,
    worker: usize,
    groups: Vec<Group>,
) -> Result<(), TransportError> {
    let peer = peer_name(worker, topology);
    let lane = {
        let mut lanes = shared.outgoing.lock().expect("outgoing lanes");
        #[allow(clippy::map_entry)] // lane construction is fallible; entry() cannot early-return
        if !lanes.contains_key(&worker) {
            let addr = topology
                .get(worker)
                .ok_or_else(|| TransportError::Protocol {
                    peer: peer.clone(),
                    reason: format!(
                        "worker {worker} is outside the {}-worker topology",
                        topology.len()
                    ),
                })?;
            let stream = TcpStream::connect(addr)
                .map_err(|e| TransportError::from_io(&peer, "connect peer lane", e))?;
            let _ = stream.set_nodelay(true);
            stream
                .set_write_timeout(Some(shared.options.io_timeout))
                .map_err(|e| TransportError::from_io(&peer, "set peer timeout", e))?;
            let mut hello = Vec::with_capacity(16);
            hello.extend_from_slice(&MAGIC);
            wire::put_varint(&mut hello, PROTOCOL_VERSION);
            wire::put_varint(&mut hello, ROLE_PEER);
            wire::put_varint(&mut hello, my_id as u64);
            let mut writer = &stream;
            writer
                .write_all(&hello)
                .map_err(|e| TransportError::from_io(&peer, "write peer hello", e))?;
            lanes.insert(worker, stream);
        }
        lanes
            .get(&worker)
            .expect("lane just ensured")
            .try_clone()
            .map_err(|e| TransportError::from_io(&peer, "clone peer lane", e))?
    };
    let mut buf = Vec::new();
    for group in &groups {
        wire::put_varint(&mut buf, group.src as u64);
        wire::put_varint(&mut buf, group.dst as u64);
        wire::put_varint(&mut buf, group.frames.len() as u64);
        for frame in &group.frames {
            put_frame(&mut buf, frame);
        }
    }
    let mut writer = &lane;
    writer
        .write_all(&buf)
        .map_err(|e| TransportError::from_io(&peer, "forward exchange frames", e))
}

/// Waits (bounded) for the incoming lane from `from` and returns a
/// read-timeout-configured clone of it.
fn incoming_lane(
    shared: &WorkerShared,
    from: usize,
    topology: &[String],
) -> Result<TcpStream, TransportError> {
    let peer = peer_name(from, topology);
    let deadline = std::time::Instant::now() + shared.options.io_timeout;
    let mut lanes = shared.incoming.lock().expect("incoming lanes");
    loop {
        if let Some(stream) = lanes.get(&from) {
            let clone = stream
                .try_clone()
                .map_err(|e| TransportError::from_io(&peer, "clone peer lane", e))?;
            clone
                .set_read_timeout(Some(shared.options.io_timeout))
                .map_err(|e| TransportError::from_io(&peer, "set peer timeout", e))?;
            return Ok(clone);
        }
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        if remaining.is_zero() {
            return Err(TransportError::Timeout {
                peer,
                context: "waiting for peer lane".to_string(),
            });
        }
        let (next, _) = shared
            .incoming_cv
            .wait_timeout(lanes, remaining)
            .expect("incoming lanes");
        lanes = next;
    }
}

/// Reads one forwarded group from a peer lane and validates its header
/// against the master-announced expectation.
fn read_group(
    lane: &mut TcpStream,
    from_worker: usize,
    src: usize,
    dst: usize,
    count: usize,
    topology: &[String],
) -> Result<Vec<Vec<u8>>, TransportError> {
    let peer = peer_name(from_worker, topology);
    let context = "read forwarded frames";
    let got_src = read_varint(lane).map_err(|e| e.classify(&peer, context))? as usize;
    let got_dst = read_varint(lane).map_err(|e| e.classify(&peer, context))? as usize;
    let got_count = read_varint(lane).map_err(|e| e.classify(&peer, context))? as usize;
    if (got_src, got_dst, got_count) != (src, dst, count) {
        return Err(TransportError::Protocol {
            peer,
            reason: format!(
                "expected group {src}->{dst} ({count} frames), \
                 got {got_src}->{got_dst} ({got_count} frames)"
            ),
        });
    }
    let mut frames = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        frames.push(read_frame(lane).map_err(|e| e.classify(&peer, context))?);
    }
    Ok(frames)
}

fn peer_name(worker: usize, topology: &[String]) -> String {
    match topology.get(worker) {
        Some(addr) => format!("worker {worker} ({addr})"),
        None => format!("worker {worker}"),
    }
}

// ---------------------------------------------------------------------------
// Master side.
// ---------------------------------------------------------------------------

struct WorkerLink {
    stream: TcpStream,
    addr: String,
    /// Topology length this worker last saw (hello or OP_TOPOLOGY).
    topology_seen: usize,
}

impl WorkerLink {
    fn name(&self, id: usize) -> String {
        format!("worker {id} ({})", self.addr)
    }
}

struct LoopbackWorker {
    handle: Option<std::thread::JoinHandle<()>>,
}

struct MasterState {
    links: Vec<WorkerLink>,
    /// `Some` when this transport self-hosts its workers and may grow the
    /// mesh; `None` for a fixed remote cluster.
    loopback: Option<Vec<LoopbackWorker>>,
    io_timeout: Duration,
}

impl MasterState {
    fn worker_of(&self, node: usize) -> usize {
        node % self.links.len().max(1)
    }

    /// Grows a loopback mesh to at least `num_nodes` workers and brings
    /// every worker's topology up to date. A remote cluster never grows:
    /// extra logical nodes wrap onto the existing workers.
    fn ensure(&mut self, num_nodes: usize) -> Result<(), TransportError> {
        if let Some(workers) = &mut self.loopback {
            while self.links.len() < num_nodes {
                let listener = bind_worker("127.0.0.1:0")?;
                let addr = listener
                    .local_addr()
                    .map_err(|source| TransportError::Io {
                        context: "loopback listener address".to_string(),
                        source,
                    })?
                    .to_string();
                let options = WorkerOptions {
                    io_timeout: self.io_timeout,
                    master_wait: Some(self.io_timeout),
                };
                let handle = std::thread::spawn(move || {
                    if let Err(err) = serve_worker(listener, options) {
                        eprintln!("dsr loopback worker failed: {err}");
                    }
                });
                workers.push(LoopbackWorker {
                    handle: Some(handle),
                });
                let id = self.links.len();
                let topology: Vec<String> = self
                    .links
                    .iter()
                    .map(|l| l.addr.clone())
                    .chain(std::iter::once(addr.clone()))
                    .collect();
                let link = connect_link(&addr, id, &topology, self.io_timeout, self.io_timeout)?;
                self.links.push(link);
            }
        }
        if self.links.is_empty() {
            return Err(TransportError::Protocol {
                peer: "cluster".to_string(),
                reason: "no workers configured".to_string(),
            });
        }
        // Refresh stale topologies (loopback growth moves the address list).
        let topology: Vec<String> = self.links.iter().map(|l| l.addr.clone()).collect();
        for (id, link) in self.links.iter_mut().enumerate() {
            if link.topology_seen == topology.len() {
                continue;
            }
            let mut op = Vec::new();
            wire::put_varint(&mut op, OP_TOPOLOGY);
            wire::put_varint(&mut op, topology.len() as u64);
            for addr in &topology {
                put_string(&mut op, addr);
            }
            let name = link.name(id);
            let mut writer = &link.stream;
            writer
                .write_all(&op)
                .map_err(|e| TransportError::from_io(&name, "send topology update", e))?;
            link.topology_seen = topology.len();
        }
        Ok(())
    }
}

/// Connects to one worker and performs the master handshake.
fn connect_link(
    addr: &str,
    id: usize,
    topology: &[String],
    connect_timeout: Duration,
    io_timeout: Duration,
) -> Result<WorkerLink, TransportError> {
    let peer = format!("worker {id} ({addr})");
    let resolved: SocketAddr = addr
        .to_socket_addrs()
        .map_err(|e| TransportError::from_io(&peer, "resolve worker address", e))?
        .next()
        .ok_or_else(|| TransportError::Handshake {
            peer: peer.clone(),
            reason: "address resolves to nothing".to_string(),
        })?;
    let stream = TcpStream::connect_timeout(&resolved, connect_timeout)
        .map_err(|e| TransportError::from_io(&peer, "connect to worker", e))?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(io_timeout))
        .map_err(|e| TransportError::from_io(&peer, "set read timeout", e))?;
    stream
        .set_write_timeout(Some(io_timeout))
        .map_err(|e| TransportError::from_io(&peer, "set write timeout", e))?;

    let mut hello = Vec::new();
    hello.extend_from_slice(&MAGIC);
    wire::put_varint(&mut hello, PROTOCOL_VERSION);
    wire::put_varint(&mut hello, ROLE_MASTER);
    wire::put_varint(&mut hello, id as u64);
    wire::put_varint(&mut hello, topology.len() as u64);
    for address in topology {
        put_string(&mut hello, address);
    }
    let mut writer = &stream;
    writer
        .write_all(&hello)
        .map_err(|e| TransportError::from_io(&peer, "write master hello", e))?;

    let mut reader = &stream;
    let mut magic = [0u8; 4];
    reader
        .read_exact(&mut magic)
        .map_err(|e| TransportError::from_io(&peer, "read hello ack", e))?;
    if magic != MAGIC {
        return Err(TransportError::Handshake {
            peer,
            reason: format!("bad ack magic {magic:?} — is a dsr-node worker listening there?"),
        });
    }
    let version = read_varint(&mut reader).map_err(|e| e.classify(&peer, "read ack version"))?;
    if version != PROTOCOL_VERSION {
        return Err(TransportError::Handshake {
            peer,
            reason: format!("worker speaks protocol version {version}, master {PROTOCOL_VERSION}"),
        });
    }
    let echoed = read_varint(&mut reader).map_err(|e| e.classify(&peer, "read ack id"))?;
    if echoed != id as u64 {
        return Err(TransportError::Handshake {
            peer,
            reason: format!("worker acknowledged id {echoed}, expected {id}"),
        });
    }
    Ok(WorkerLink {
        stream,
        addr: addr.to_string(),
        topology_seen: topology.len(),
    })
}

/// The TCP backend: collectives over real sockets and worker endpoints.
///
/// See the [module docs](self) for the architecture. Collectives are
/// internally serialized (one at a time per transport), so one
/// `TcpTransport` can be shared by concurrent query threads, exactly like
/// the pipe backend.
pub struct TcpTransport {
    state: Mutex<MasterState>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport").finish_non_exhaustive()
    }
}

impl TcpTransport {
    /// A self-hosted loopback cluster: workers are spawned as threads of
    /// this process, each serving a real `127.0.0.1` socket, one per
    /// logical node, growing lazily with the largest collective seen. This
    /// is the `DSR_TRANSPORT=tcp` backend.
    pub fn loopback() -> Self {
        Self::loopback_with_timeout(Duration::from_secs(30))
    }

    /// [`TcpTransport::loopback`] with an explicit I/O timeout (tests use
    /// short ones so failure paths resolve quickly).
    pub fn loopback_with_timeout(io_timeout: Duration) -> Self {
        TcpTransport {
            state: Mutex::new(MasterState {
                links: Vec::new(),
                loopback: Some(Vec::new()),
                io_timeout,
            }),
        }
    }

    /// Connects to the external workers of `spec` (each a running
    /// `dsr-node worker`) and performs the handshake with every one.
    /// Partition `p` is hosted by worker `p % spec.workers.len()`.
    pub fn connect(spec: &ClusterSpec) -> Result<Self, TransportError> {
        let mut links = Vec::with_capacity(spec.workers.len());
        for (id, addr) in spec.workers.iter().enumerate() {
            links.push(connect_link(
                addr,
                id,
                &spec.workers,
                spec.connect_timeout,
                spec.io_timeout,
            )?);
        }
        Ok(TcpTransport {
            state: Mutex::new(MasterState {
                links,
                loopback: None,
                io_timeout: spec.io_timeout,
            }),
        })
    }

    /// Number of connected workers (0 for a loopback mesh that has not
    /// served a collective yet).
    pub fn num_workers(&self) -> usize {
        self.state.lock().expect("tcp state").links.len()
    }

    /// Severs the connection to worker `index` as if the process died
    /// (test hook for the failure-path suites: the next collective
    /// touching that worker returns a typed [`TransportError`]).
    #[doc(hidden)]
    pub fn debug_disconnect_worker(&self, index: usize) {
        let state = self.state.lock().expect("tcp state");
        if let Some(link) = state.links.get(index) {
            let _ = link.stream.shutdown(Shutdown::Both);
        }
    }

    fn encode_and_count<M: WireMessage>(message: &M, stats: &CommStats) -> Vec<u8> {
        let encoded = wire::encode_to_vec(message);
        debug_assert_eq!(
            encoded.len(),
            message.byte_size(),
            "MessageSize::byte_size drifted from the wire encoding"
        );
        stats.record_message(encoded.len());
        encoded
    }

    /// Round-trips one frame per node through the node's worker (`ECHO`):
    /// the shared implementation of scatter and gather.
    fn echo_round<M: WireMessage>(
        &self,
        messages: Vec<M>,
        stats: &CommStats,
        phase: &str,
    ) -> Result<Vec<M>, TransportError> {
        stats.record_round();
        let k = messages.len();
        let mut state = self.state.lock().expect("tcp state");
        state.ensure(k)?;
        let state = &*state;
        let encoded: Vec<Vec<u8>> = messages
            .iter()
            .map(|m| Self::encode_and_count(m, stats))
            .collect();
        drop(messages);

        let mut by_worker: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for node in 0..k {
            by_worker
                .entry(state.worker_of(node))
                .or_default()
                .push(node);
        }
        let mut delivered: Vec<Option<M>> = (0..k).map(|_| None).collect();
        let outcome: Result<Vec<Vec<(usize, M)>>, TransportError> = std::thread::scope(|scope| {
            let tasks: Vec<_> = by_worker
                .iter()
                .map(|(&worker, nodes)| {
                    let link = &state.links[worker];
                    let encoded = &encoded;
                    scope.spawn(move || -> Result<Vec<(usize, M)>, TransportError> {
                        let name = link.name(worker);
                        let mut results = Vec::with_capacity(nodes.len());
                        for &node in nodes {
                            let mut op =
                                Vec::with_capacity(encoded[node].len() + 2 * wire::MAX_VARINT_LEN);
                            wire::put_varint(&mut op, OP_ECHO);
                            put_frame(&mut op, &encoded[node]);
                            let mut writer = &link.stream;
                            writer.write_all(&op).map_err(|e| {
                                TransportError::from_io(&name, &format!("{phase} send"), e)
                            })?;
                            let mut reader = &link.stream;
                            let frame = read_frame(&mut reader)
                                .map_err(|e| e.classify(&name, &format!("{phase} reply")))?;
                            let message = wire::decode_exact::<M>(&frame)?;
                            results.push((node, message));
                        }
                        Ok(results)
                    })
                })
                .collect();
            tasks
                .into_iter()
                .map(|t| t.join().expect("tcp echo thread"))
                .collect()
        });
        for (node, message) in outcome?.into_iter().flatten() {
            delivered[node] = Some(message);
        }
        Ok(delivered
            .into_iter()
            .map(|m| m.expect("every node delivered"))
            .collect())
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        let mut state = self.state.lock().expect("tcp state");
        for link in &state.links {
            let mut writer = &link.stream;
            if writer.write_all(&[OP_SHUTDOWN as u8]).is_ok() {
                let mut reader = &link.stream;
                let _ = read_frame(&mut reader); // best-effort ack
            }
            let _ = link.stream.shutdown(Shutdown::Both);
        }
        if let Some(workers) = &mut state.loopback {
            for worker in workers {
                if let Some(handle) = worker.handle.take() {
                    let _ = handle.join();
                }
            }
        }
    }
}

impl Transport for TcpTransport {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn scatter<M: WireMessage>(
        &self,
        messages: Vec<M>,
        stats: &CommStats,
    ) -> Result<Vec<M>, TransportError> {
        self.echo_round(messages, stats, "scatter")
    }

    fn gather<M: WireMessage>(
        &self,
        messages: Vec<M>,
        stats: &CommStats,
    ) -> Result<Vec<M>, TransportError> {
        self.echo_round(messages, stats, "gather")
    }

    fn all_to_all<M: WireMessage>(
        &self,
        num_nodes: usize,
        outgoing: Vec<Vec<(usize, M)>>,
        stats: &CommStats,
    ) -> Result<Vec<Vec<(usize, M)>>, TransportError> {
        assert_eq!(outgoing.len(), num_nodes, "one send list per node");
        stats.record_round();
        let mut state = self.state.lock().expect("tcp state");
        state.ensure(num_nodes)?;
        let state = &*state;

        // Encode cross-node payloads (stats count each logical message
        // once, like every other backend); self-sends never touch a socket.
        let mut groups: BTreeMap<(usize, usize), Vec<Vec<u8>>> = BTreeMap::new();
        let mut self_sends: Vec<Vec<M>> = (0..num_nodes).map(|_| Vec::new()).collect();
        for (src, sends) in outgoing.into_iter().enumerate() {
            for (dst, message) in sends {
                assert!(dst < num_nodes, "destination {dst} out of range");
                if dst == src {
                    self_sends[src].push(message);
                } else {
                    groups
                        .entry((src, dst))
                        .or_default()
                        .push(Self::encode_and_count(&message, stats));
                }
            }
        }

        // Per worker: the groups it must forward (src hosted there) and
        // the groups it will collect (dst hosted there), both in (src, dst)
        // order — the order every mesh lane preserves.
        let mut send_plan: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
        let mut recv_plan: BTreeMap<usize, Vec<(usize, usize, usize)>> = BTreeMap::new();
        for (&(src, dst), frames) in &groups {
            send_plan
                .entry(state.worker_of(src))
                .or_default()
                .push((src, dst));
            recv_plan
                .entry(state.worker_of(dst))
                .or_default()
                .push((src, dst, frames.len()));
        }
        let involved: Vec<usize> = {
            let mut workers: Vec<usize> =
                send_plan.keys().chain(recv_plan.keys()).copied().collect();
            workers.sort_unstable();
            workers.dedup();
            workers
        };

        // Per worker thread: the `(src, dst, message)` triples it
        // collected from its reply.
        type Collected<M> = Vec<(usize, usize, M)>;
        let mut incoming: Vec<Vec<(usize, M)>> = (0..num_nodes).map(|_| Vec::new()).collect();
        let outcome: Result<Vec<Collected<M>>, TransportError> = std::thread::scope(|scope| {
            let tasks: Vec<_> = involved
                .iter()
                .map(|&worker| {
                    let link = &state.links[worker];
                    let groups = &groups;
                    let sends = send_plan.get(&worker);
                    let recvs = recv_plan.get(&worker);
                    scope.spawn(move || -> Result<Vec<(usize, usize, M)>, TransportError> {
                        let name = link.name(worker);
                        let mut op = Vec::new();
                        wire::put_varint(&mut op, OP_EXCHANGE);
                        let send_list = sends.map(Vec::as_slice).unwrap_or(&[]);
                        wire::put_varint(&mut op, send_list.len() as u64);
                        for &(src, dst) in send_list {
                            let frames = &groups[&(src, dst)];
                            wire::put_varint(&mut op, src as u64);
                            wire::put_varint(&mut op, dst as u64);
                            wire::put_varint(&mut op, frames.len() as u64);
                            for frame in frames {
                                put_frame(&mut op, frame);
                            }
                        }
                        let recv_list = recvs.map(Vec::as_slice).unwrap_or(&[]);
                        wire::put_varint(&mut op, recv_list.len() as u64);
                        for &(src, dst, count) in recv_list {
                            wire::put_varint(&mut op, src as u64);
                            wire::put_varint(&mut op, dst as u64);
                            wire::put_varint(&mut op, count as u64);
                        }
                        let mut writer = &link.stream;
                        writer
                            .write_all(&op)
                            .map_err(|e| TransportError::from_io(&name, "exchange send", e))?;
                        let mut reader = &link.stream;
                        let mut collected = Vec::new();
                        for &(src, dst, count) in recv_list {
                            for _ in 0..count {
                                let frame = read_frame(&mut reader)
                                    .map_err(|e| e.classify(&name, "exchange reply"))?;
                                collected.push((src, dst, wire::decode_exact::<M>(&frame)?));
                            }
                        }
                        Ok(collected)
                    })
                })
                .collect();
            tasks
                .into_iter()
                .map(|t| t.join().expect("tcp exchange thread"))
                .collect()
        });
        // Replies are per-worker; within one worker they are (src, dst)
        // sorted, and each dst is served by exactly one worker, so pushing
        // in worker order keeps every inbox sorted by source.
        for collected in outcome? {
            for (src, dst, message) in collected {
                incoming[dst].push((src, message));
            }
        }
        for inbox in &mut incoming {
            inbox.sort_by_key(|&(src, _)| src);
        }

        // Merge self-sends at their sorted position, preserving send order.
        for (node, messages) in self_sends.into_iter().enumerate() {
            let at = incoming[node].partition_point(|&(src, _)| src < node);
            for (offset, message) in messages.into_iter().enumerate() {
                incoming[node].insert(at + offset, (node, message));
            }
        }
        Ok(incoming)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        put_frame(&mut buf, b"hello");
        put_frame(&mut buf, b"");
        let mut cursor = Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"");
    }

    #[test]
    fn frame_codec_rejects_short_reads() {
        // Length prefix announces 5 bytes, stream holds 2: an error, not a
        // panic and not a hang.
        let mut buf = Vec::new();
        wire::put_varint(&mut buf, 5);
        buf.extend_from_slice(b"ab");
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, FrameIoError::Io(ref e)
            if e.kind() == std::io::ErrorKind::UnexpectedEof));
        // Truncated mid-varint.
        let err = read_frame(&mut Cursor::new(vec![0x80u8])).unwrap_err();
        assert!(matches!(err, FrameIoError::Io(_)));
        // Classified as a typed transport error with peer context.
        let classified = err.classify("worker 2", "exchange reply");
        assert!(matches!(classified, TransportError::Disconnected { .. }));
        assert!(classified.to_string().contains("worker 2"));
    }

    #[test]
    fn frame_codec_rejects_oversized_length_prefixes_before_allocating() {
        // A 1 TiB announcement must be rejected from the 10 prefix bytes
        // alone — if the guard were missing this test would try (and fail)
        // to allocate the buffer.
        let mut buf = Vec::new();
        wire::put_varint(&mut buf, 1 << 40);
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        match err {
            FrameIoError::Oversized(announced) => assert_eq!(announced, 1 << 40),
            other => panic!("expected Oversized, got {other:?}"),
        }
        let classified = err.classify("worker 0", "scatter reply");
        assert!(matches!(
            classified,
            TransportError::OversizedFrame {
                limit: MAX_FRAME_LEN,
                ..
            }
        ));
        // Varint overflow in the prefix is also typed.
        let err = read_frame(&mut Cursor::new(vec![0xFFu8; 11])).unwrap_err();
        assert!(matches!(err, FrameIoError::VarintOverflow));
    }

    #[test]
    fn cluster_spec_parses_toml_subset() {
        let spec = ClusterSpec::from_toml_str(
            r#"
            # three workers on loopback
            [cluster]
            workers = ["127.0.0.1:7101", "127.0.0.1:7102", "127.0.0.1:7103"]
            connect_timeout_ms = 1500
            io_timeout_ms = 12000
            "#,
        )
        .expect("parses");
        assert_eq!(spec.workers.len(), 3);
        assert_eq!(spec.workers[1], "127.0.0.1:7102");
        assert_eq!(spec.connect_timeout, Duration::from_millis(1500));
        assert_eq!(spec.io_timeout, Duration::from_millis(12000));

        // Defaults apply when the keys are omitted.
        let spec = ClusterSpec::from_toml_str("workers = [\"a:1\"]").expect("parses");
        assert_eq!(spec.io_timeout, Duration::from_secs(30));
    }

    #[test]
    fn cluster_spec_rejects_garbage_with_line_numbers() {
        let err = ClusterSpec::from_toml_str("workers = [\"a:1\"]\nbogus_key = 3").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("bogus_key"), "{err}");
        let err = ClusterSpec::from_toml_str("").unwrap_err();
        assert!(err.contains("workers"));
        let err = ClusterSpec::from_toml_str("workers = []").unwrap_err();
        assert!(err.contains("at least one"));
        let err = ClusterSpec::from_toml_str("workers = [unquoted]").unwrap_err();
        assert!(err.contains("double-quoted"));
    }

    #[test]
    fn loopback_mesh_grows_and_routes() {
        let transport = TcpTransport::loopback_with_timeout(Duration::from_secs(10));
        let stats = CommStats::new();
        for k in [2usize, 4, 3] {
            let outgoing: Vec<Vec<(usize, u32)>> =
                (0..k).map(|i| vec![((i + 1) % k, i as u32)]).collect();
            let incoming = transport.all_to_all(k, outgoing, &stats).expect("exchange");
            for dst in 0..k {
                let expected_src = (dst + k - 1) % k;
                assert_eq!(incoming[dst], vec![(expected_src, expected_src as u32)]);
            }
        }
        assert_eq!(transport.num_workers(), 4, "mesh grew to the largest k");
    }

    #[test]
    fn connecting_to_a_non_protocol_peer_fails_the_handshake() {
        // A listener that answers every connection with garbage.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let rogue = std::thread::spawn(move || {
            if let Ok((mut conn, _)) = listener.accept() {
                let _ = conn.write_all(b"HTTP/1.1 400 Bad Request\r\n\r\n");
            }
        });
        let mut spec = ClusterSpec::new(vec![addr.clone()]);
        spec.connect_timeout = Duration::from_secs(5);
        spec.io_timeout = Duration::from_secs(5);
        let err = TcpTransport::connect(&spec).expect_err("handshake must fail");
        match &err {
            TransportError::Handshake { peer, reason } => {
                assert!(peer.contains(&addr), "peer named: {peer}");
                assert!(reason.contains("magic"), "actionable reason: {reason}");
            }
            other => panic!("expected Handshake error, got {other}"),
        }
        rogue.join().expect("rogue listener");
    }

    #[test]
    fn connecting_to_a_dead_address_is_a_typed_error() {
        // Port 1 on loopback is essentially never listening.
        let mut spec = ClusterSpec::new(vec!["127.0.0.1:1".to_string()]);
        spec.connect_timeout = Duration::from_millis(500);
        let err = TcpTransport::connect(&spec).expect_err("nothing listens there");
        assert!(
            matches!(
                err,
                TransportError::Io { .. } | TransportError::Timeout { .. }
            ),
            "got {err}"
        );
        assert!(err.to_string().contains("127.0.0.1:1"));
    }

    #[test]
    fn worker_death_mid_session_surfaces_disconnected() {
        let transport = TcpTransport::loopback_with_timeout(Duration::from_secs(5));
        let stats = CommStats::new();
        // Healthy first round establishes the 3-worker mesh.
        let delivered = transport
            .scatter(vec![1u32, 2, 3], &stats)
            .expect("healthy scatter");
        assert_eq!(delivered, vec![1, 2, 3]);
        // Kill worker 1 and observe the next collective fail with a typed
        // error instead of panicking or hanging.
        transport.debug_disconnect_worker(1);
        let err = transport
            .scatter(vec![4u32, 5, 6], &stats)
            .expect_err("dead worker must surface");
        assert!(
            matches!(
                err,
                TransportError::Disconnected { .. }
                    | TransportError::Io { .. }
                    | TransportError::Timeout { .. }
            ),
            "got {err}"
        );
        assert!(err.to_string().contains("worker 1"), "{err}");
    }
}
