//! Persistent slave worker pool.
//!
//! [`run_on_slaves`](crate::run_on_slaves) originally spawned one OS thread
//! per slave *per call*. That is fine for a handful of index builds, but a
//! query-serving deployment issues thousands of queries per second and each
//! one would pay two rounds of thread spawn/join (step 1 and step 3 of
//! Algorithm 2). [`SlavePool`] replaces that with a fixed set of long-lived
//! worker threads fed through a shared job queue: submitting `k` slave tasks
//! is two mutex operations and a condvar wake per task, and the same pool is
//! shared by every concurrent client of the engine.
//!
//! # Design
//!
//! * Jobs are closures pushed onto a `Mutex<VecDeque>` guarded by a condvar;
//!   any idle worker pops the next job (there is no per-slave thread
//!   affinity — slaves in this simulation are state-free tasks, the state
//!   lives in the `DsrIndex` the caller's closure borrows).
//! * [`SlavePool::run`] borrows the caller's closure and result buffer, so
//!   jobs are *not* `'static`. The pool erases the lifetime when boxing the
//!   job and restores soundness by construction: `run` does not return until
//!   every job it submitted has sent its completion message, and a job sends
//!   that message strictly *after* the borrowing closure has been consumed
//!   and dropped. No borrow escapes the dynamic extent of `run`.
//! * If `run` is invoked from *inside* a pool worker (a nested fan-out), the
//!   calling worker helps drain the queue while it waits instead of
//!   blocking. Nested runs therefore cannot deadlock even when every worker
//!   is busy.
//! * A panicking job does not kill its worker: the payload is caught,
//!   shipped back with the completion message, and re-thrown by `run` after
//!   all sibling jobs have finished — the same "a crashed slave is a crashed
//!   query" contract as the spawn-per-call implementation.

#![allow(unsafe_code)] // lifetime erasure for pooled jobs; soundness argued above.

use dsr_sync::atomic::{AtomicU64, Ordering};
use dsr_sync::mpsc::{channel, Receiver, Sender};
use dsr_sync::thread::JoinHandle;
use dsr_sync::{Arc, Condvar, Mutex, OnceLock};
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Panic payload captured from a slave task.
type PanicPayload = Box<dyn Any + Send + 'static>;

/// Completion message of one job: `Ok` or the panic payload.
type JobResult = Result<(), PanicPayload>;

/// A queued unit of work. The boxed closure is lifetime-erased (see module
/// docs); `done` is sent only after the closure has been consumed.
struct Job {
    work: Box<dyn FnOnce() + Send + 'static>,
    done: Sender<JobResult>,
}

impl Job {
    /// Runs the job to completion and reports the outcome. The closure (and
    /// with it every borrow it captured) is dropped *before* the completion
    /// message is sent, so a waiting `run` call never observes live borrows
    /// after it resumes.
    fn execute(self, shared: &PoolShared) {
        let Job { work, done } = self;
        let result = catch_unwind(AssertUnwindSafe(work));
        shared.jobs_executed.fetch_add(1, Ordering::Relaxed);
        // The receiver may be gone only if `run` itself panicked; ignore.
        let _ = done.send(result.map(|_| ()));
    }
}

/// State shared between the pool handle and its workers.
struct PoolShared {
    queue: Mutex<PoolQueue>,
    available: Condvar,
    jobs_executed: AtomicU64,
}

struct PoolQueue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

impl PoolShared {
    /// Pops a job without blocking; used by callers helping while they wait.
    fn try_pop(&self) -> Option<Job> {
        dsr_sync::lock(&self.queue).jobs.pop_front()
    }

    /// Blocks until a job is available or shutdown is signalled.
    fn pop_blocking(&self) -> Option<Job> {
        let mut queue = dsr_sync::lock(&self.queue);
        loop {
            if let Some(job) = queue.jobs.pop_front() {
                return Some(job);
            }
            if queue.shutdown {
                return None;
            }
            queue = dsr_sync::wait(&self.available, queue);
        }
    }
}

thread_local! {
    /// Whether the current thread is a pool worker (used to decide between
    /// blocking and helping in [`SlavePool::run`]).
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A fixed-size pool of long-lived slave worker threads.
///
/// See the module docs for the design. The cluster exposes one process-wide
/// pool through [`global_pool`]; [`run_on_slaves`](crate::run_on_slaves) is
/// a thin wrapper over it, so every existing call site transparently reuses
/// workers instead of spawning threads.
pub struct SlavePool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for SlavePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlavePool")
            .field("workers", &self.workers.len())
            .field("jobs_executed", &self.jobs_executed())
            .finish()
    }
}

impl SlavePool {
    /// Creates a pool with `num_workers` long-lived worker threads (at least
    /// one).
    pub fn new(num_workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            jobs_executed: AtomicU64::new(0),
        });
        let workers = (0..num_workers.max(1))
            .map(|w| {
                let shared = Arc::clone(&shared);
                dsr_sync::thread::Builder::new()
                    .name(format!("dsr-slave-{w}"))
                    .spawn(move || {
                        IS_POOL_WORKER.with(|flag| flag.set(true));
                        while let Some(job) = shared.pop_blocking() {
                            job.execute(&shared);
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        SlavePool { shared, workers }
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Total number of jobs executed by this pool since creation.
    pub fn jobs_executed(&self) -> u64 {
        self.shared.jobs_executed.load(Ordering::Relaxed)
    }

    /// Runs `task(slave_id)` for every slave `0..num_slaves` on the pool and
    /// returns the results in slave order.
    ///
    /// Semantics are identical to the historical spawn-per-call
    /// `run_on_slaves`: `num_slaves == 0` returns an empty vector without
    /// touching the pool, `num_slaves == 1` runs the task inline on the
    /// calling thread (the centralized fast path), and a panic in any task
    /// is re-thrown here after all sibling tasks have completed.
    ///
    /// `num_slaves` may exceed [`Self::num_workers`]; excess tasks queue.
    pub fn run<R, F>(&self, num_slaves: usize, task: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if num_slaves == 0 {
            return Vec::new();
        }
        if num_slaves == 1 {
            return vec![task(0)];
        }

        let mut results: Vec<Option<R>> = (0..num_slaves).map(|_| None).collect();
        let (done_tx, done_rx) = channel::<JobResult>();
        {
            let task = &task;
            let mut queue = dsr_sync::lock(&self.shared.queue);
            for (slave, slot) in results.iter_mut().enumerate() {
                let work: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    *slot = Some(task(slave));
                });
                // SAFETY: lifetime erasure only. The job's completion message
                // is sent after `work` (and every borrow of `task`/`results`
                // it captured) has been dropped, and we block below until all
                // `num_slaves` completion messages have arrived. Hence no
                // borrow outlives this call frame.
                let work: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(work) };
                queue.jobs.push_back(Job {
                    work,
                    done: done_tx.clone(),
                });
            }
        }
        // Wake workers only after the queue lock is released, so they don't
        // stampede into a mutex the submitter still holds.
        for _ in 0..num_slaves {
            self.shared.available.notify_one();
        }
        drop(done_tx);

        let first_panic = self.await_completions(num_slaves, &done_rx);
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|r| r.expect("slave task completed"))
            .collect()
    }

    /// Waits for `expected` completion messages, helping to drain the queue
    /// when called from a pool worker (nested fan-out). Returns the first
    /// panic payload, if any.
    fn await_completions(
        &self,
        expected: usize,
        done_rx: &Receiver<JobResult>,
    ) -> Option<PanicPayload> {
        let helping = IS_POOL_WORKER.with(|flag| flag.get());
        let mut completed = 0usize;
        let mut first_panic: Option<PanicPayload> = None;
        while completed < expected {
            if helping {
                // Collect finished jobs without blocking, then help run
                // whatever is queued (ours or another run's) so nested runs
                // make progress even when every worker is busy.
                while let Ok(result) = done_rx.try_recv() {
                    completed += 1;
                    if let Err(payload) = result {
                        first_panic.get_or_insert(payload);
                    }
                }
                if completed >= expected {
                    break;
                }
                if let Some(job) = self.shared.try_pop() {
                    job.execute(&self.shared);
                    continue;
                }
            }
            // Queue is drained (or we are an external caller): every
            // outstanding job is running on some thread, so blocking on the
            // completion channel cannot deadlock.
            match done_rx.recv() {
                Ok(result) => {
                    completed += 1;
                    if let Err(payload) = result {
                        first_panic.get_or_insert(payload);
                    }
                }
                Err(_) => unreachable!("every job sends exactly one completion"),
            }
        }
        first_panic
    }
}

impl Drop for SlavePool {
    fn drop(&mut self) {
        {
            let mut queue = dsr_sync::lock(&self.shared.queue);
            queue.shutdown = true;
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            // Workers only exit cleanly; a panic here would mean a bug in the
            // pool itself (job panics are caught), so propagate it.
            if let Err(payload) = worker.join() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// The process-wide slave pool backing [`run_on_slaves`](crate::run_on_slaves).
///
/// Sized to the machine's available parallelism (at least two workers so the
/// simulated slaves actually overlap). Created lazily on first use and kept
/// alive for the lifetime of the process.
pub fn global_pool() -> &'static SlavePool {
    static POOL: OnceLock<SlavePool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = dsr_sync::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .max(2);
        // The global pool outlives any single model-checker execution, so
        // its workers must never be registered as model threads (the model
        // run would wait forever for them to finish). A model test that
        // wants *scheduled* workers creates its own short-lived
        // `SlavePool::new` inside the checked closure instead.
        dsr_sync::model::without_model(|| SlavePool::new(workers))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsr_sync::atomic::{AtomicUsize, Ordering};
    use dsr_sync::thread::ThreadId;
    use std::collections::HashSet;

    #[test]
    fn results_in_slave_order() {
        let pool = SlavePool::new(3);
        assert_eq!(pool.run(5, |slave| slave * 10), vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn zero_and_one_slave_fast_paths() {
        let pool = SlavePool::new(2);
        assert!(pool.run(0, |s| s).is_empty());
        assert_eq!(pool.run(1, |s| s + 1), vec![1]);
        // The single-slave fast path runs inline: no job reaches the queue.
        assert_eq!(pool.jobs_executed(), 0);
    }

    #[test]
    fn workers_are_reused_across_runs() {
        let pool = SlavePool::new(4);
        let ids = Mutex::new(HashSet::<ThreadId>::new());
        for _ in 0..10 {
            pool.run(4, |_| {
                ids.lock().unwrap().insert(dsr_sync::thread::current().id());
                // Give sibling workers a chance to grab their own job.
                dsr_sync::thread::sleep(std::time::Duration::from_millis(1));
            });
        }
        let distinct = ids.lock().unwrap().len();
        // Spawn-per-call would produce up to 40 distinct thread ids; a
        // persistent pool is bounded by its worker count.
        assert!(
            distinct <= 4,
            "expected <= 4 worker threads, saw {distinct}"
        );
        assert_eq!(pool.jobs_executed(), 40);
    }

    #[test]
    fn more_tasks_than_workers() {
        let pool = SlavePool::new(2);
        let counter = AtomicUsize::new(0);
        let results = pool.run(16, |slave| {
            counter.fetch_add(1, Ordering::SeqCst);
            slave
        });
        assert_eq!(counter.load(Ordering::SeqCst), 16);
        assert_eq!(results, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_runs_from_many_client_threads() {
        let pool = SlavePool::new(4);
        dsr_sync::thread::scope(|scope| {
            for t in 0..8 {
                let pool = &pool;
                scope.spawn(move || {
                    for round in 0..20 {
                        let results = pool.run(3, |slave| t * 1000 + round * 10 + slave);
                        assert_eq!(
                            results,
                            vec![
                                t * 1000 + round * 10,
                                t * 1000 + round * 10 + 1,
                                t * 1000 + round * 10 + 2
                            ]
                        );
                    }
                });
            }
        });
    }

    #[test]
    fn nested_runs_do_not_deadlock() {
        // 2 workers, and every outer task performs an inner fan-out: without
        // caller-helping this would deadlock (both workers blocked waiting
        // for inner jobs nobody can run).
        let pool = SlavePool::new(2);
        let results = pool.run(2, |outer| {
            let inner = pool.run(3, |i| outer * 100 + i);
            inner.iter().sum::<usize>()
        });
        assert_eq!(results, vec![3, 303]);
    }

    #[test]
    #[should_panic(expected = "pooled slave exploded")]
    fn panics_propagate_and_pool_survives() {
        let pool = SlavePool::new(2);
        // First verify the pool keeps working after a panicking run…
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(3, |slave| {
                if slave == 1 {
                    panic!("warm-up panic");
                }
                slave
            })
        }));
        assert!(caught.is_err());
        assert_eq!(pool.run(3, |s| s), vec![0, 1, 2]);
        // …then let the expected panic escape.
        pool.run(2, |slave| {
            if slave == 0 {
                panic!("pooled slave exploded");
            }
            slave
        });
    }

    #[test]
    fn global_pool_is_shared() {
        let a = global_pool() as *const SlavePool;
        let b = global_pool() as *const SlavePool;
        assert_eq!(a, b);
        assert!(global_pool().num_workers() >= 2);
    }

    /// Model check of the dispatch → execute → completion-channel barrier:
    /// a short-lived pool created *inside* the checked closure gets model
    /// workers, so the whole submit/notify/drain/shutdown handshake is
    /// explored schedule by schedule. `run` must return both results in
    /// slave order and the `Drop` shutdown handshake must terminate in
    /// every interleaving.
    #[test]
    fn model_run_barrier_and_shutdown() {
        use dsr_sync::model::Model;
        Model::new()
            .max_schedules(512)
            .check(|| {
                let pool = SlavePool::new(2);
                assert_eq!(pool.run(2, |slave| slave + 10), vec![10, 11]);
                drop(pool); // shutdown handshake joins both model workers
            })
            .expect("pool barrier must hold in every explored schedule");
    }
}
