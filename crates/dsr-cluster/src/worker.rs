//! Parallel execution of per-slave tasks.
//!
//! [`run_on_slaves`] executes one closure per slave and collects the results
//! in slave order — the "local evaluation … at all slaves i = 1..k in
//! parallel" steps of Algorithms 1 and 2. Historically each call spawned
//! `num_slaves` fresh OS threads; it is now a thin wrapper over the
//! process-wide persistent [`SlavePool`](crate::SlavePool) (see
//! [`crate::pool`]), so call sites keep their signature while a serving
//! workload stops paying per-query thread spawn.

use crate::pool::global_pool;

/// Runs `task(slave_id)` for every slave `0..num_slaves` in parallel on the
/// process-wide [`SlavePool`](crate::SlavePool) and returns the results in
/// slave order.
///
/// The closure receives the slave id. Panics in any task are propagated to
/// the caller (a crashed slave is a crashed query, exactly like an MPI
/// abort). `num_slaves == 0` returns an empty vector and `num_slaves == 1`
/// runs the task inline on the calling thread, identical to the historical
/// spawn-per-call implementation.
pub fn run_on_slaves<R, F>(num_slaves: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    // Handle the inline fast paths here rather than deferring to
    // `SlavePool::run`, so they never *instantiate* the global pool: a
    // single-partition workload stays entirely on the calling thread (and a
    // single-partition model test stays entirely under the model scheduler).
    if num_slaves == 0 {
        return Vec::new();
    }
    if num_slaves == 1 {
        return vec![task(0)];
    }
    global_pool().run(num_slaves, task)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsr_sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_in_slave_order() {
        let results = run_on_slaves(5, |slave| slave * 10);
        assert_eq!(results, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn zero_and_one_slave() {
        assert!(run_on_slaves(0, |s| s).is_empty());
        assert_eq!(run_on_slaves(1, |s| s + 1), vec![1]);
    }

    #[test]
    fn tasks_actually_run_concurrently_or_at_least_all_run() {
        let counter = AtomicUsize::new(0);
        run_on_slaves(8, |_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    #[should_panic(expected = "slave exploded")]
    fn panics_propagate() {
        run_on_slaves(3, |slave| {
            if slave == 1 {
                panic!("slave exploded");
            }
            slave
        });
    }
}
