//! Parallel execution of per-slave tasks.
//!
//! [`run_on_slaves`] executes one closure per slave on its own thread and
//! collects the results in slave order — the "local evaluation … at all
//! slaves i = 1..k in parallel" steps of Algorithms 1 and 2.

/// Runs `task(slave_id)` for every slave `0..num_slaves` in parallel and
/// returns the results in slave order.
///
/// The closure receives the slave id. Panics in any task are propagated to
/// the caller (a crashed slave is a crashed query, exactly like an MPI
/// abort).
pub fn run_on_slaves<R, F>(num_slaves: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if num_slaves == 0 {
        return Vec::new();
    }
    if num_slaves == 1 {
        // Avoid thread overhead in the single-slave (centralized) setting.
        return vec![task(0)];
    }
    let mut results: Vec<Option<R>> = (0..num_slaves).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(num_slaves);
        for (slave, slot) in results.iter_mut().enumerate() {
            let task = &task;
            handles.push(scope.spawn(move || {
                *slot = Some(task(slave));
            }));
        }
        for handle in handles {
            // Propagate panics from slave tasks.
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("slave task completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_in_slave_order() {
        let results = run_on_slaves(5, |slave| slave * 10);
        assert_eq!(results, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn zero_and_one_slave() {
        assert!(run_on_slaves(0, |s| s).is_empty());
        assert_eq!(run_on_slaves(1, |s| s + 1), vec![1]);
    }

    #[test]
    fn tasks_actually_run_concurrently_or_at_least_all_run() {
        let counter = AtomicUsize::new(0);
        run_on_slaves(8, |_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    #[should_panic(expected = "slave exploded")]
    fn panics_propagate() {
        run_on_slaves(3, |slave| {
            if slave == 1 {
                panic!("slave exploded");
            }
            slave
        });
    }
}
