//! Communication statistics collected by the simulated cluster.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe counters for rounds, messages and bytes exchanged.
///
/// A fresh instance is typically created per query (or per index build) so
/// experiments can report per-query communication, matching the paper's
/// "Comm. Size (in KB)" plots.
#[derive(Debug, Default)]
pub struct CommStats {
    rounds: AtomicU64,
    messages: AtomicU64,
    bytes: AtomicU64,
}

impl CommStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one communication round (a bulk exchange among all nodes).
    pub fn record_round(&self) {
        self.rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a single message of `bytes` bytes.
    pub fn record_message(&self, bytes: usize) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records `count` messages totalling `bytes` bytes.
    pub fn record_messages(&self, count: u64, bytes: u64) {
        self.messages.fetch_add(count, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Number of communication rounds so far.
    pub fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }

    /// Number of messages so far.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Number of bytes so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Bytes expressed in kilobytes (the unit of Figure 5 / Figure 8).
    pub fn kilobytes(&self) -> f64 {
        self.bytes() as f64 / 1024.0
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.rounds.store(0, Ordering::Relaxed);
        self.messages.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
    }

    /// Snapshot of `(rounds, messages, bytes)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (self.rounds(), self.messages(), self.bytes())
    }
}

impl Clone for CommStats {
    fn clone(&self) -> Self {
        let c = CommStats::new();
        c.rounds.store(self.rounds(), Ordering::Relaxed);
        c.messages.store(self.messages(), Ordering::Relaxed);
        c.bytes.store(self.bytes(), Ordering::Relaxed);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counting() {
        let s = CommStats::new();
        s.record_round();
        s.record_message(100);
        s.record_messages(3, 300);
        assert_eq!(s.rounds(), 1);
        assert_eq!(s.messages(), 4);
        assert_eq!(s.bytes(), 400);
        assert!((s.kilobytes() - 400.0 / 1024.0).abs() < 1e-9);
        assert_eq!(s.snapshot(), (1, 4, 400));
        s.reset();
        assert_eq!(s.snapshot(), (0, 0, 0));
    }

    #[test]
    fn concurrent_counting() {
        let s = Arc::new(CommStats::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_message(10);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.messages(), 8000);
        assert_eq!(s.bytes(), 80_000);
    }

    #[test]
    fn clone_snapshots_values() {
        let s = CommStats::new();
        s.record_message(5);
        let c = s.clone();
        s.record_message(5);
        assert_eq!(c.messages(), 1);
        assert_eq!(s.messages(), 2);
    }
}
