//! Communication statistics collected by the simulated cluster.

use dsr_sync::atomic::{AtomicU64, Ordering};

/// Thread-safe counters for rounds, messages and bytes exchanged.
///
/// A fresh instance is typically created per query (or per index build) so
/// experiments can report per-query communication, matching the paper's
/// "Comm. Size (in KB)" plots.
#[derive(Debug, Default)]
pub struct CommStats {
    rounds: AtomicU64,
    messages: AtomicU64,
    bytes: AtomicU64,
}

impl CommStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one communication round (a bulk exchange among all nodes).
    pub fn record_round(&self) {
        self.rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a single message of `bytes` bytes.
    pub fn record_message(&self, bytes: usize) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records `count` messages totalling `bytes` bytes.
    pub fn record_messages(&self, count: u64, bytes: u64) {
        self.messages.fetch_add(count, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Number of communication rounds so far.
    pub fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }

    /// Number of messages so far.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Number of bytes so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Bytes expressed in kilobytes (the unit of Figure 5 / Figure 8).
    pub fn kilobytes(&self) -> f64 {
        self.bytes() as f64 / 1024.0
    }

    /// Bulk-adds `rounds` rounds and `messages` messages totalling `bytes`
    /// bytes (used to fold one query's counters into a long-lived
    /// aggregate).
    pub fn add(&self, rounds: u64, messages: u64, bytes: u64) {
        self.rounds.fetch_add(rounds, Ordering::Relaxed);
        self.messages.fetch_add(messages, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Folds another collector's counters into this one.
    pub fn merge(&self, other: &CommStats) {
        let (rounds, messages, bytes) = other.snapshot();
        self.add(rounds, messages, bytes);
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.rounds.store(0, Ordering::Relaxed);
        self.messages.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
    }

    /// Snapshot of `(rounds, messages, bytes)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (self.rounds(), self.messages(), self.bytes())
    }
}

impl Clone for CommStats {
    fn clone(&self) -> Self {
        let c = CommStats::new();
        c.rounds.store(self.rounds(), Ordering::Relaxed);
        c.messages.store(self.messages(), Ordering::Relaxed);
        c.bytes.store(self.bytes(), Ordering::Relaxed);
        c
    }
}

/// Communication cost of one differential index refresh (Section 3.3.3).
///
/// Incremental updates ship `SummaryDelta` refresh messages (defined in
/// `dsr-core::protocol`) through the same [`Transport`](crate::Transport)
/// as queries, so their cost is *measured* wire bytes — the quantities
/// behind the paper's Figure 6 — rather than an estimate. `update_rounds`
/// is `0` when an update batch turned out to be communication-free
/// (duplicates, reachability-preserving local insertions) and `1` when a
/// refresh exchange ran.
///
/// The struct is a plain value snapshot (unlike the atomic [`CommStats`]):
/// one is returned per update batch and aggregates are folded with
/// [`UpdateStats::merge`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Communication rounds of the refresh exchange (0 or 1 per batch).
    pub update_rounds: u64,
    /// Refresh messages shipped (one per affected-partition delta per
    /// receiving peer).
    pub update_messages: u64,
    /// Exact wire bytes of the shipped deltas (byte-identical between the
    /// in-process and wire backends).
    pub update_bytes: u64,
}

impl UpdateStats {
    /// Snapshot of a [`CommStats`] collector that recorded one refresh
    /// exchange.
    pub fn from_comm(comm: &CommStats) -> Self {
        let (update_rounds, update_messages, update_bytes) = comm.snapshot();
        UpdateStats {
            update_rounds,
            update_messages,
            update_bytes,
        }
    }

    /// Folds another batch's counters into this aggregate.
    pub fn merge(&mut self, other: &UpdateStats) {
        self.update_rounds += other.update_rounds;
        self.update_messages += other.update_messages;
        self.update_bytes += other.update_bytes;
    }

    /// Whether the update shipped anything at all.
    pub fn is_zero(&self) -> bool {
        *self == UpdateStats::default()
    }
}

/// Thread-safe counters for the TCP master's failover machinery.
///
/// All three counters are **zero in a fault-free run** — the benchmark
/// regression gate (`bench_diff`) pins them there, so a code change that
/// silently starts retrying collectives or suspecting workers fails CI.
///
/// * `retries` — collectives re-attempted against the surviving replicas
///   after a worker failure.
/// * `suspects` — worker *transitions* into the suspect state (a worker
///   suspected once and never revived counts once).
/// * `resyncs` — suspect workers brought back by a successful rejoin
///   (each rejoin replays the buffered `SummaryDelta` backlog through the
///   returning worker; see `TcpTransport::rejoin_suspects`).
#[derive(Debug, Default)]
pub struct FailoverStats {
    retries: AtomicU64,
    suspects: AtomicU64,
    resyncs: AtomicU64,
}

impl FailoverStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one retried collective.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one worker transitioning into the suspect state.
    pub fn record_suspect(&self) {
        self.suspects.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one suspect worker rejoining the cluster.
    pub fn record_resync(&self) {
        self.resyncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Collectives retried after a worker failure so far.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Suspect transitions so far.
    pub fn suspects(&self) -> u64 {
        self.suspects.load(Ordering::Relaxed)
    }

    /// Rejoined (resynced) workers so far.
    pub fn resyncs(&self) -> u64 {
        self.resyncs.load(Ordering::Relaxed)
    }

    /// A plain-value copy of the counters.
    pub fn snapshot(&self) -> FailoverSnapshot {
        FailoverSnapshot {
            retries: self.retries(),
            suspects: self.suspects(),
            resyncs: self.resyncs(),
        }
    }
}

/// Plain-value snapshot of [`FailoverStats`] (what the service layer and
/// the benchmark reports expose).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailoverSnapshot {
    /// See [`FailoverStats::retries`].
    pub retries: u64,
    /// See [`FailoverStats::suspects`].
    pub suspects: u64,
    /// See [`FailoverStats::resyncs`].
    pub resyncs: u64,
}

impl FailoverSnapshot {
    /// Whether no failover activity happened at all (the required state of
    /// every fault-free benchmark run).
    pub fn is_zero(&self) -> bool {
        *self == FailoverSnapshot::default()
    }
}

/// Thread-safe hit/miss counters for a query-result cache.
///
/// The serving layer (`dsr-service`) keys a bounded LRU cache on normalized
/// query signatures; these counters surface its effectiveness alongside the
/// communication counters of [`CommStats`] so experiments can report cache
/// hit rates next to bytes shipped.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl CacheStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a cache hit.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a cache miss.
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an insertion of a freshly computed result.
    pub fn record_insertion(&self) {
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an LRU eviction.
    pub fn record_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a full cache invalidation (index swap).
    pub fn record_invalidation(&self) {
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of insertions so far.
    pub fn insertions(&self) -> u64 {
        self.insertions.load(Ordering::Relaxed)
    }

    /// Number of evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Number of full invalidations so far.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Hit rate in `[0, 1]`; `0` when no lookups have happened.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.insertions.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.invalidations.store(0, Ordering::Relaxed);
    }
}

/// Thread-safe counters for the batch-forming service front end.
///
/// The serving layer (`dsr-service`) fuses cache-missing queries from all
/// concurrent clients into shared protocol rounds; these counters surface
/// how well that fusion works:
///
/// * a **formed batch** is one drain of the submission queue (window
///   elapsed, size cap reached, or explicit flush) — its size is recorded
///   in a power-of-two histogram ([`BatchStats::histogram`]);
/// * **queued wait** is the time a query spent in the submission queue
///   before its batch formed (mean/max in microseconds);
/// * the **fusion ratio** ([`BatchStats::fusion_ratio`]) is queries per
///   communication round — the direct measure of the cross-client
///   multiplier (un-fused serving pays `1/3` query per round; a perfectly
///   fused 64-query batch pays `64/3`).
#[derive(Debug, Default)]
pub struct BatchStats {
    batches: AtomicU64,
    queries: AtomicU64,
    executed: AtomicU64,
    late_hits: AtomicU64,
    rounds: AtomicU64,
    wait_us_total: AtomicU64,
    wait_us_max: AtomicU64,
    histogram: [AtomicU64; Self::HISTOGRAM_BUCKETS],
}

impl BatchStats {
    /// Number of formed-batch size histogram buckets: power-of-two ranges
    /// `1, 2–3, 4–7, …, ≥128` (see [`BatchStats::BUCKET_LABELS`]).
    pub const HISTOGRAM_BUCKETS: usize = 8;

    /// Human-readable labels of the histogram buckets.
    pub const BUCKET_LABELS: [&'static str; Self::HISTOGRAM_BUCKETS] = [
        "1", "2-3", "4-7", "8-15", "16-31", "32-63", "64-127", "128+",
    ];

    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one formed batch of `size` drained queries.
    pub fn record_formed(&self, size: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.queries.fetch_add(size, Ordering::Relaxed);
        let bucket = (size.max(1).ilog2() as usize).min(Self::HISTOGRAM_BUCKETS - 1);
        self.histogram[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one query's queued wait before its batch formed.
    pub fn record_wait(&self, micros: u64) {
        self.wait_us_total.fetch_add(micros, Ordering::Relaxed);
        self.wait_us_max.fetch_max(micros, Ordering::Relaxed);
    }

    /// Records one fused execution of `executed` deduplicated queries
    /// costing `rounds` communication rounds.
    pub fn record_execution(&self, executed: u64, rounds: u64) {
        self.executed.fetch_add(executed, Ordering::Relaxed);
        self.rounds.fetch_add(rounds, Ordering::Relaxed);
    }

    /// Records a query resolved by the scheduler's cache re-probe (a
    /// concurrent execution answered it while it sat in the queue).
    pub fn record_late_hit(&self) {
        self.late_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of formed batches so far.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Number of queries drained into formed batches so far.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Number of deduplicated queries actually executed so far.
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// Number of queries resolved by the scheduler's cache re-probe.
    pub fn late_hits(&self) -> u64 {
        self.late_hits.load(Ordering::Relaxed)
    }

    /// Communication rounds of all fused executions so far.
    pub fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }

    /// Mean formed-batch size; `0` before the first batch.
    pub fn mean_batch_size(&self) -> f64 {
        let batches = self.batches();
        if batches == 0 {
            0.0
        } else {
            self.queries() as f64 / batches as f64
        }
    }

    /// Mean queued wait in microseconds; `0` before the first query.
    pub fn mean_wait_us(&self) -> f64 {
        let queries = self.queries();
        if queries == 0 {
            0.0
        } else {
            self.wait_us_total.load(Ordering::Relaxed) as f64 / queries as f64
        }
    }

    /// Maximum queued wait in microseconds.
    pub fn max_wait_us(&self) -> u64 {
        self.wait_us_max.load(Ordering::Relaxed)
    }

    /// Queries per communication round; `0` before the first execution.
    pub fn fusion_ratio(&self) -> f64 {
        let rounds = self.rounds();
        if rounds == 0 {
            0.0
        } else {
            self.queries() as f64 / rounds as f64
        }
    }

    /// Snapshot of the formed-batch size histogram (bucket `i` counts
    /// batches of size in `[2^i, 2^(i+1))`, last bucket unbounded).
    pub fn histogram(&self) -> [u64; Self::HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.histogram[i].load(Ordering::Relaxed))
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.batches.store(0, Ordering::Relaxed);
        self.queries.store(0, Ordering::Relaxed);
        self.executed.store(0, Ordering::Relaxed);
        self.late_hits.store(0, Ordering::Relaxed);
        self.rounds.store(0, Ordering::Relaxed);
        self.wait_us_total.store(0, Ordering::Relaxed);
        self.wait_us_max.store(0, Ordering::Relaxed);
        for bucket in &self.histogram {
            bucket.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsr_sync::Arc;

    #[test]
    fn counting() {
        let s = CommStats::new();
        s.record_round();
        s.record_message(100);
        s.record_messages(3, 300);
        assert_eq!(s.rounds(), 1);
        assert_eq!(s.messages(), 4);
        assert_eq!(s.bytes(), 400);
        assert!((s.kilobytes() - 400.0 / 1024.0).abs() < 1e-9);
        assert_eq!(s.snapshot(), (1, 4, 400));
        let aggregate = CommStats::new();
        aggregate.add(2, 2, 50);
        aggregate.merge(&s);
        assert_eq!(aggregate.snapshot(), (3, 6, 450));
        s.reset();
        assert_eq!(s.snapshot(), (0, 0, 0));
    }

    #[test]
    fn concurrent_counting() {
        let s = Arc::new(CommStats::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&s);
                dsr_sync::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_message(10);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.messages(), 8000);
        assert_eq!(s.bytes(), 80_000);
    }

    #[test]
    fn cache_stats_counting() {
        let c = CacheStats::new();
        assert_eq!(c.hit_rate(), 0.0);
        c.record_hit();
        c.record_hit();
        c.record_hit();
        c.record_miss();
        c.record_insertion();
        c.record_eviction();
        c.record_invalidation();
        assert_eq!(c.hits(), 3);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.insertions(), 1);
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.invalidations(), 1);
        assert!((c.hit_rate() - 0.75).abs() < 1e-9);
        c.reset();
        assert_eq!((c.hits(), c.misses(), c.insertions()), (0, 0, 0));
    }

    #[test]
    fn update_stats_snapshot_and_merge() {
        let comm = CommStats::new();
        assert!(UpdateStats::from_comm(&comm).is_zero());
        comm.record_round();
        comm.record_messages(4, 120);
        let batch = UpdateStats::from_comm(&comm);
        assert_eq!(
            batch,
            UpdateStats {
                update_rounds: 1,
                update_messages: 4,
                update_bytes: 120,
            }
        );
        let mut total = UpdateStats::default();
        total.merge(&batch);
        total.merge(&batch);
        assert_eq!(total.update_messages, 8);
        assert_eq!(total.update_bytes, 240);
        assert!(!total.is_zero());
    }

    #[test]
    fn batch_stats_counting() {
        let b = BatchStats::new();
        assert_eq!(b.fusion_ratio(), 0.0);
        assert_eq!(b.mean_batch_size(), 0.0);
        b.record_formed(1); // bucket 0
        b.record_formed(48); // bucket 5 (32-63)
        b.record_formed(300); // clamped into the last bucket
        b.record_wait(10);
        b.record_wait(30);
        b.record_execution(40, 3);
        b.record_execution(1, 3);
        b.record_late_hit();
        assert_eq!(b.batches(), 3);
        assert_eq!(b.queries(), 349);
        assert_eq!(b.executed(), 41);
        assert_eq!(b.late_hits(), 1);
        assert_eq!(b.rounds(), 6);
        let hist = b.histogram();
        assert_eq!(hist[0], 1);
        assert_eq!(hist[5], 1);
        assert_eq!(hist[7], 1);
        assert!((b.mean_batch_size() - 349.0 / 3.0).abs() < 1e-9);
        assert!((b.mean_wait_us() - 40.0 / 349.0).abs() < 1e-9);
        assert_eq!(b.max_wait_us(), 30);
        assert!((b.fusion_ratio() - 349.0 / 6.0).abs() < 1e-9);
        b.reset();
        assert_eq!((b.batches(), b.queries(), b.rounds()), (0, 0, 0));
        assert_eq!(b.histogram(), [0; BatchStats::HISTOGRAM_BUCKETS]);
    }

    #[test]
    fn clone_snapshots_values() {
        let s = CommStats::new();
        s.record_message(5);
        let c = s.clone();
        s.record_message(5);
        assert_eq!(c.messages(), 1);
        assert_eq!(s.messages(), 2);
    }
}
