//! Simulated compute cluster for the DSR reproduction.
//!
//! The paper evaluates on a 10-node cluster connected with MPI over a
//! 10 GBit LAN. The algorithms, however, only rely on a very small
//! master/slave contract:
//!
//! * every slave holds one graph partition and can run local computations
//!   in parallel with the other slaves,
//! * slaves exchange point-to-point messages (Step 2 of Algorithm 2), and
//! * the master scatters queries and gathers results.
//!
//! This crate provides exactly that contract: slaves are tasks on a
//! persistent worker pool ([`run_on_slaves`] / [`SlavePool`]), and the
//! scatter/exchange/gather collectives go through a pluggable
//! [`Transport`]:
//!
//! * [`InProcess`] moves owned values between in-process buffers (zero
//!   copies) while [`CommStats`] accounts their exact wire size through
//!   [`MessageSize`];
//! * [`WireTransport`] serializes every message into the compact framed
//!   byte format of [`wire`] (varint ids, delta-encoded sorted runs),
//!   ships it through real OS pipes, decodes it on the receiving side, and
//!   records the measured byte count;
//! * [`TcpTransport`] moves the same frames through
//!   **worker endpoints over TCP sockets** — self-hosted loopback workers
//!   (`DSR_TRANSPORT=tcp`) or external `dsr-node` processes described by a
//!   [`ClusterSpec`] — with a handshake, timeouts, and
//!   typed [`TransportError`]s instead of panics when a worker fails.
//!
//! All backends produce identical payloads and identical statistics (the
//! size accounting is debug-asserted against the codec on every message),
//! so round counts, message counts and byte volumes are faithful to the
//! algorithms being simulated — the quantities behind the
//! communication-cost plots of Figure 5 (b)(f)(j)(n) and Figure 8. The
//! `DSR_TRANSPORT` environment variable (see [`TransportKind::from_env`])
//! switches the whole test suite between backends.

// This crate stays at the workspace-level `deny(unsafe_code)` rather than
// `forbid`: `pool` needs one module-scoped `allow(unsafe_code)` for the
// lifetime erasure of pooled jobs (soundness argued at the site), and a
// crate-level `forbid` cannot be overridden locally. Every other workspace
// crate forbids unsafe code outright.
#![deny(unsafe_code)]

pub mod error;
pub mod fault;
pub mod message;
pub mod pool;
pub mod stats;
pub mod tcp;
pub mod topology;
pub mod transport;
pub mod wire;
pub mod worker;

pub use error::TransportError;
pub use fault::{Fault, FaultPhase, FaultPlan};
pub use message::MessageSize;
pub use pool::{global_pool, SlavePool};
pub use stats::{BatchStats, CacheStats, CommStats, FailoverSnapshot, FailoverStats, UpdateStats};
pub use tcp::{ClusterSpec, ClusterSpecBuilder, TcpTransport};
pub use topology::Topology;
pub use transport::{
    DynTransport, InProcess, ParseTransportError, Transport, TransportKind, WireMessage,
    WireTransport, TRANSPORT_ENV,
};
pub use wire::{Wire, WireError, WireReader};
pub use worker::run_on_slaves;
