//! Simulated compute cluster for the DSR reproduction.
//!
//! The paper evaluates on a 10-node cluster connected with MPI over a
//! 10 GBit LAN. The algorithms, however, only rely on a very small
//! master/slave contract:
//!
//! * every slave holds one graph partition and can run local computations
//!   in parallel with the other slaves,
//! * slaves exchange point-to-point messages (Step 2 of Algorithm 2), and
//! * the master scatters queries and gathers results.
//!
//! This crate provides exactly that contract in-process: slaves are worker
//! threads ([`run_on_slaves`]), message exchange is an all-to-all shuffle
//! with per-message size accounting ([`Network`]), and [`CommStats`]
//! records the number of rounds, messages and bytes — the quantities behind
//! the communication-cost plots of Figure 5 (b)(f)(j)(n) and Figure 8.
//!
//! Because the substrate is in-process, absolute wall-clock numbers differ
//! from the paper's cluster, but round counts, message counts and byte
//! volumes are faithful to the algorithms being simulated.

pub mod message;
pub mod network;
pub mod pool;
pub mod stats;
pub mod worker;

pub use message::MessageSize;
pub use network::Network;
pub use pool::{global_pool, SlavePool};
pub use stats::{CacheStats, CommStats};
pub use worker::run_on_slaves;
