//! Simulated network: scatter, gather and all-to-all exchange with
//! communication accounting.

use crate::message::MessageSize;
use crate::stats::CommStats;

/// A simulated network among `num_nodes` compute nodes.
///
/// The network does not copy payloads through sockets — messages are moved
/// between in-process buffers — but every transfer between *different*
/// nodes is counted in the attached [`CommStats`]. Transfers from a node to
/// itself are free, mirroring how MPI ranks short-circuit local sends (and
/// how Giraph++ treats intra-partition messages).
pub struct Network<'a> {
    num_nodes: usize,
    stats: &'a CommStats,
}

impl<'a> Network<'a> {
    /// Creates a network over `num_nodes` nodes recording into `stats`.
    pub fn new(num_nodes: usize, stats: &'a CommStats) -> Self {
        Network { num_nodes, stats }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// All-to-all exchange: `outgoing[src][dst]` is the (optional) message
    /// from `src` to `dst`. Returns `incoming` where `incoming[dst][src]`
    /// holds the message `src` sent to `dst`.
    ///
    /// Records one communication round plus one message per non-`None`
    /// cross-node payload.
    ///
    /// # Panics
    /// Panics if the outgoing matrix is not `num_nodes × num_nodes`.
    pub fn all_to_all<M: MessageSize>(&self, outgoing: Vec<Vec<Option<M>>>) -> Vec<Vec<Option<M>>> {
        assert_eq!(outgoing.len(), self.num_nodes, "outgoing rows");
        for row in &outgoing {
            assert_eq!(row.len(), self.num_nodes, "outgoing columns");
        }
        self.stats.record_round();
        // incoming[dst][src]
        let mut incoming: Vec<Vec<Option<M>>> = (0..self.num_nodes)
            .map(|_| (0..self.num_nodes).map(|_| None).collect())
            .collect();
        for (src, row) in outgoing.into_iter().enumerate() {
            for (dst, msg) in row.into_iter().enumerate() {
                if let Some(msg) = msg {
                    if src != dst {
                        self.stats.record_message(msg.byte_size());
                    }
                    incoming[dst][src] = Some(msg);
                }
            }
        }
        incoming
    }

    /// Gather: every slave sends one message to the master. Returns the
    /// messages in slave order and records one round plus one message per
    /// slave (the master is assumed to be a separate node, as in the
    /// paper's "5 slaves and 1 master" setup).
    pub fn gather<M: MessageSize>(&self, messages: Vec<M>) -> Vec<M> {
        self.stats.record_round();
        for msg in &messages {
            self.stats.record_message(msg.byte_size());
        }
        messages
    }

    /// Broadcast from the master to all slaves; records one round and
    /// `num_nodes` messages. Returns one clone per slave.
    pub fn broadcast<M: MessageSize + Clone>(&self, message: &M) -> Vec<M> {
        self.stats.record_round();
        (0..self.num_nodes)
            .map(|_| {
                self.stats.record_message(message.byte_size());
                message.clone()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_to_all_transposes_and_counts() {
        let stats = CommStats::new();
        let net = Network::new(3, &stats);
        // node i sends (i, j) to node j, skipping the diagonal for node 2.
        let outgoing: Vec<Vec<Option<Vec<u32>>>> = (0..3)
            .map(|i| {
                (0..3)
                    .map(|j| {
                        if i == 2 && j == 2 {
                            None
                        } else {
                            Some(vec![i as u32, j as u32])
                        }
                    })
                    .collect()
            })
            .collect();
        let incoming = net.all_to_all(outgoing);
        assert_eq!(incoming[1][0], Some(vec![0, 1]));
        assert_eq!(incoming[0][2], Some(vec![2, 0]));
        assert_eq!(incoming[2][2], None);
        assert_eq!(stats.rounds(), 1);
        // 8 messages total, 6 of them cross-node.
        assert_eq!(stats.messages(), 6);
        assert_eq!(stats.bytes(), 6 * (4 + 8));
    }

    #[test]
    fn gather_counts_each_slave() {
        let stats = CommStats::new();
        let net = Network::new(4, &stats);
        let gathered = net.gather(vec![1u32, 2, 3, 4]);
        assert_eq!(gathered, vec![1, 2, 3, 4]);
        assert_eq!(stats.messages(), 4);
        assert_eq!(stats.bytes(), 16);
        assert_eq!(stats.rounds(), 1);
    }

    #[test]
    fn broadcast_clones_to_everyone() {
        let stats = CommStats::new();
        let net = Network::new(3, &stats);
        let copies = net.broadcast(&vec![9u32, 8]);
        assert_eq!(copies.len(), 3);
        assert_eq!(stats.messages(), 3);
        assert_eq!(net.num_nodes(), 3);
    }

    #[test]
    #[should_panic(expected = "outgoing rows")]
    fn wrong_shape_panics() {
        let stats = CommStats::new();
        let net = Network::new(2, &stats);
        net.all_to_all(vec![vec![Some(1u32), None]]);
    }
}
