//! Compact framed wire encoding for cluster messages.
//!
//! Every message crossing the [`Transport`](crate::Transport) boundary is
//! encoded into a self-delimiting byte string:
//!
//! * **varints** — unsigned LEB128, so small vertex ids and lengths cost one
//!   byte instead of four,
//! * **delta-encoded sorted runs** — the protocol's id sets (sources,
//!   targets, class lists, boundary lists) are sorted and deduplicated, so
//!   they are shipped as a count, a first id and a run of gaps, each a
//!   varint ([`put_sorted_ids`] / [`get_sorted_ids`]),
//! * **length prefixes** — collections carry a varint element count; the
//!   transport frames each message with a varint byte length.
//!
//! The companion trait [`MessageSize`](crate::MessageSize) reports exactly
//! the number of bytes [`Wire::encode_into`] produces; the transports
//! debug-assert that invariant on every message they move, so the
//! communication-volume numbers reported by [`CommStats`](crate::CommStats)
//! are the measured wire bytes, not estimates.

use std::fmt;

/// Maximum number of bytes a varint-encoded `u64` occupies.
pub const MAX_VARINT_LEN: usize = 10;

/// Decoding failure. Encoding is infallible; decoding validates framing,
/// varint termination and id-run monotonicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended in the middle of a value.
    UnexpectedEof,
    /// [`decode_exact`] consumed the message but bytes were left over.
    TrailingBytes,
    /// A varint exceeded 64 bits or an id run overflowed `u32`.
    Overflow,
    /// A value was syntactically valid but semantically impossible.
    Invalid(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "unexpected end of wire message"),
            WireError::TrailingBytes => write!(f, "trailing bytes after wire message"),
            WireError::Overflow => write!(f, "varint or id run overflow"),
            WireError::Invalid(what) => write!(f, "invalid wire value: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Appends the LEB128 encoding of `value` to `buf`.
pub fn put_varint(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Number of bytes [`put_varint`] emits for `value`.
pub fn varint_size(value: u64) -> usize {
    // ceil(bits / 7), with zero still costing one byte.
    let bits = 64 - value.max(1).leading_zeros() as usize;
    bits.div_ceil(7)
}

/// Cursor over an encoded message.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let byte = *self.buf.get(self.pos).ok_or(WireError::UnexpectedEof)?;
        self.pos += 1;
        Ok(byte)
    }

    /// Reads one LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return Err(WireError::Overflow);
            }
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift >= 64 {
                return Err(WireError::Overflow);
            }
        }
    }

    /// Reads a varint and checks it fits a `u32`.
    pub fn varint_u32(&mut self) -> Result<u32, WireError> {
        u32::try_from(self.varint()?).map_err(|_| WireError::Overflow)
    }

    /// Reads a varint element count. Every encoded element occupies at
    /// least one byte, so a count exceeding the remaining bytes is a framing
    /// error — rejecting it here means callers can safely pass the returned
    /// length to `Vec::with_capacity` without a corrupt frame triggering a
    /// huge up-front allocation.
    pub fn length(&mut self) -> Result<usize, WireError> {
        let len = usize::try_from(self.varint()?).map_err(|_| WireError::Overflow)?;
        if len > self.remaining() {
            return Err(WireError::UnexpectedEof);
        }
        Ok(len)
    }
}

/// A message that can be serialized into / parsed from the framed wire
/// format. Implementations must produce exactly
/// [`MessageSize::byte_size`](crate::MessageSize::byte_size) bytes — the
/// transports debug-assert this.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode_into(&self, buf: &mut Vec<u8>);

    /// Parses one value from the reader.
    fn decode_from(reader: &mut WireReader<'_>) -> Result<Self, WireError>;
}

/// Encodes a message into a fresh buffer.
pub fn encode_to_vec<M: Wire>(message: &M) -> Vec<u8> {
    let mut buf = Vec::new();
    message.encode_into(&mut buf);
    buf
}

/// Decodes a message that must span the whole buffer.
pub fn decode_exact<M: Wire>(bytes: &[u8]) -> Result<M, WireError> {
    let mut reader = WireReader::new(bytes);
    let message = M::decode_from(&mut reader)?;
    if reader.is_empty() {
        Ok(message)
    } else {
        Err(WireError::TrailingBytes)
    }
}

impl Wire for u32 {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        put_varint(buf, u64::from(*self));
    }

    fn decode_from(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        reader.varint_u32()
    }
}

impl Wire for u64 {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        put_varint(buf, *self);
    }

    fn decode_from(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        reader.varint()
    }
}

impl Wire for bool {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }

    fn decode_from(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        match reader.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid("bool tag")),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        self.0.encode_into(buf);
        self.1.encode_into(buf);
    }

    fn decode_from(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode_from(reader)?, B::decode_from(reader)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        self.0.encode_into(buf);
        self.1.encode_into(buf);
        self.2.encode_into(buf);
    }

    fn decode_from(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((
            A::decode_from(reader)?,
            B::decode_from(reader)?,
            C::decode_from(reader)?,
        ))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.len() as u64);
        for item in self {
            item.encode_into(buf);
        }
    }

    fn decode_from(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = reader.length()?;
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode_from(reader)?);
        }
        Ok(items)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(value) => {
                buf.push(1);
                value.encode_into(buf);
            }
        }
    }

    fn decode_from(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        match reader.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode_from(reader)?)),
            _ => Err(WireError::Invalid("option tag")),
        }
    }
}

/// Appends the delta encoding of a strictly increasing id run: a varint
/// count, the first id, then the gap to each following id.
///
/// The protocol's id sets are sorted and deduplicated before they are
/// shipped, which is exactly the precondition (debug-asserted here).
pub fn put_sorted_ids(buf: &mut Vec<u8>, ids: &[u32]) {
    debug_assert!(
        ids.windows(2).all(|w| w[0] < w[1]),
        "sorted id run must be strictly increasing"
    );
    put_varint(buf, ids.len() as u64);
    let mut previous = 0u32;
    for (index, &id) in ids.iter().enumerate() {
        if index == 0 {
            put_varint(buf, u64::from(id));
        } else {
            put_varint(buf, u64::from(id - previous));
        }
        previous = id;
    }
}

/// Number of bytes [`put_sorted_ids`] emits for `ids`.
pub fn sorted_ids_size(ids: &[u32]) -> usize {
    let mut size = varint_size(ids.len() as u64);
    let mut previous = 0u32;
    for (index, &id) in ids.iter().enumerate() {
        size += if index == 0 {
            varint_size(u64::from(id))
        } else {
            varint_size(u64::from(id - previous))
        };
        previous = id;
    }
    size
}

/// Decodes a strictly increasing id run produced by [`put_sorted_ids`].
pub fn get_sorted_ids(reader: &mut WireReader<'_>) -> Result<Vec<u32>, WireError> {
    let len = reader.length()?;
    let mut ids = Vec::with_capacity(len);
    let mut previous = 0u64;
    for index in 0..len {
        let delta = reader.varint()?;
        let id = if index == 0 {
            delta
        } else {
            previous.checked_add(delta).ok_or(WireError::Overflow)?
        };
        if id > u64::from(u32::MAX) {
            return Err(WireError::Overflow);
        }
        if index > 0 && delta == 0 {
            return Err(WireError::Invalid("id run not strictly increasing"));
        }
        ids.push(id as u32);
        previous = id;
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<M: Wire + PartialEq + std::fmt::Debug>(message: &M) -> usize {
        let encoded = encode_to_vec(message);
        let decoded: M = decode_exact(&encoded).expect("decodes");
        assert_eq!(&decoded, message);
        encoded.len()
    }

    #[test]
    fn varint_boundaries() {
        for value in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, value);
            assert_eq!(buf.len(), varint_size(value), "size of {value}");
            assert!(buf.len() <= MAX_VARINT_LEN);
            let mut reader = WireReader::new(&buf);
            assert_eq!(reader.varint().unwrap(), value);
            assert!(reader.is_empty());
        }
    }

    #[test]
    fn varint_rejects_overflow_and_eof() {
        // 11 continuation bytes: more than 64 bits.
        let overflow = [0xFFu8; 11];
        assert_eq!(
            WireReader::new(&overflow).varint(),
            Err(WireError::Overflow)
        );
        // Continuation bit set on the last available byte.
        let eof = [0x80u8];
        assert_eq!(
            WireReader::new(&eof).varint(),
            Err(WireError::UnexpectedEof)
        );
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(&0u32);
        roundtrip(&u32::MAX);
        roundtrip(&u64::MAX);
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&(7u32, 9u64));
        roundtrip(&(1u32, 2u32, false));
        roundtrip(&Vec::<u32>::new());
        roundtrip(&vec![0u32, 5, 5, 2]);
        roundtrip(&None::<u32>);
        roundtrip(&Some(vec![(3u32, true)]));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut encoded = encode_to_vec(&5u32);
        encoded.push(0);
        assert_eq!(decode_exact::<u32>(&encoded), Err(WireError::TrailingBytes));
    }

    #[test]
    fn sorted_ids_roundtrip() {
        for ids in [
            vec![],
            vec![0],
            vec![u32::MAX],
            vec![0, 1, 2, 3],
            vec![0, u32::MAX],
            vec![5, 100, 1_000_000, u32::MAX - 1, u32::MAX],
        ] {
            let mut buf = Vec::new();
            put_sorted_ids(&mut buf, &ids);
            assert_eq!(buf.len(), sorted_ids_size(&ids), "size of {ids:?}");
            let mut reader = WireReader::new(&buf);
            assert_eq!(get_sorted_ids(&mut reader).unwrap(), ids);
            assert!(reader.is_empty());
        }
    }

    #[test]
    fn sorted_ids_delta_is_compact() {
        // A dense run of large ids: the delta encoding pays the big varint
        // once and one byte per subsequent id.
        let ids: Vec<u32> = (1_000_000..1_000_100).collect();
        assert_eq!(sorted_ids_size(&ids), 1 + 3 + 99);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// Round-trips plus the exact-size invariant the transports
        /// debug-assert.
        fn check<M: Wire + crate::MessageSize + PartialEq + std::fmt::Debug>(message: &M) {
            let encoded = encode_to_vec(message);
            prop_assert_eq!(encoded.len(), message.byte_size());
            let decoded: M = decode_exact(&encoded).expect("decodes");
            prop_assert_eq!(&decoded, message);
        }

        proptest! {
            #[test]
            fn u32_roundtrip(v in 0u32..=u32::MAX) {
                check(&v);
            }

            #[test]
            fn u64_roundtrip(v in 0u64..=u64::MAX) {
                check(&v);
            }

            #[test]
            fn vec_of_pairs_roundtrip(v in proptest::collection::vec((0u32..=u32::MAX, 0u32..2), 0..20)) {
                check(&v);
            }

            #[test]
            fn option_roundtrip(v in proptest::collection::vec(0u32..1000, 0..4)) {
                let some = Some(v);
                check(&some);
                check(&None::<Vec<u32>>);
            }

            #[test]
            fn nested_vec_roundtrip(v in proptest::collection::vec(proptest::collection::vec(0u32..=u32::MAX, 0..6), 0..6)) {
                check(&v);
            }

            #[test]
            fn sorted_run_roundtrip(mut ids in proptest::collection::vec(0u32..=u32::MAX, 0..40)) {
                ids.sort_unstable();
                ids.dedup();
                let mut buf = Vec::new();
                put_sorted_ids(&mut buf, &ids);
                prop_assert_eq!(buf.len(), sorted_ids_size(&ids));
                let mut reader = WireReader::new(&buf);
                prop_assert_eq!(get_sorted_ids(&mut reader).unwrap(), ids);
                prop_assert!(reader.is_empty());
            }
        }
    }

    #[test]
    fn sorted_ids_reject_duplicates_and_overflow() {
        // Hand-craft a run with a zero gap (duplicate id).
        let mut buf = Vec::new();
        put_varint(&mut buf, 2);
        put_varint(&mut buf, 7);
        put_varint(&mut buf, 0);
        assert_eq!(
            get_sorted_ids(&mut WireReader::new(&buf)),
            Err(WireError::Invalid("id run not strictly increasing"))
        );
        // A run whose cumulative sum exceeds u32::MAX.
        let mut buf = Vec::new();
        put_varint(&mut buf, 2);
        put_varint(&mut buf, u64::from(u32::MAX));
        put_varint(&mut buf, 1);
        assert_eq!(
            get_sorted_ids(&mut WireReader::new(&buf)),
            Err(WireError::Overflow)
        );
    }
}
