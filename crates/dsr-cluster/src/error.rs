//! Typed transport failures.
//!
//! The in-process and pipe backends run inside one OS process and cannot
//! meaningfully fail, but a TCP cluster can: workers die mid-exchange,
//! handshakes meet the wrong protocol, reads time out, a frame announces a
//! nonsensical length. [`TransportError`] is the single error type every
//! [`Transport`](crate::Transport) collective returns, so the engine and
//! the serving layer surface a worker failure as a value — never a panic,
//! never a hang.

use std::fmt;

use crate::wire::WireError;

/// Why a transport collective failed.
///
/// Every variant carries enough context (the peer, the phase) to act on the
/// failure: restart the named worker, fix the address in the cluster spec,
/// raise the timeout.
#[derive(Debug)]
pub enum TransportError {
    /// A payload failed to decode (or a frame was malformed).
    Wire(WireError),
    /// An I/O operation on a named peer failed; `context` says which phase
    /// of which collective.
    Io {
        /// What the transport was doing (e.g. `"connect to worker 2"`).
        context: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A peer closed its connection in the middle of a collective (worker
    /// crash, kill, or network partition).
    Disconnected {
        /// Human-readable peer name (e.g. `"worker 1 (127.0.0.1:7101)"`).
        peer: String,
        /// What the transport was doing when the connection dropped.
        context: String,
    },
    /// A read or write on a peer exceeded the configured I/O timeout.
    Timeout {
        /// Human-readable peer name.
        peer: String,
        /// What the transport was waiting for.
        context: String,
    },
    /// The connection handshake failed: wrong magic, wrong protocol
    /// version, or a peer that is not speaking the dsr-node protocol.
    Handshake {
        /// Human-readable peer name.
        peer: String,
        /// Why the handshake was rejected.
        reason: String,
    },
    /// A frame announced a length beyond the sanity limit
    /// ([`MAX_FRAME_LEN`](crate::tcp::MAX_FRAME_LEN)) — a corrupt stream or
    /// a non-protocol peer; rejected *before* allocating the buffer.
    OversizedFrame {
        /// The announced frame length.
        announced: u64,
        /// The configured maximum.
        limit: u64,
    },
    /// The peer violated the relay protocol (unexpected opcode, mismatched
    /// exchange header, wrong frame count).
    Protocol {
        /// Human-readable peer name.
        peer: String,
        /// What was expected vs what arrived.
        reason: String,
    },
    /// Every replica hosting `partition` is marked suspect: the routing
    /// table ([`Topology`](crate::Topology)) cannot place the collective.
    /// Raising the replication factor or rejoining a worker fixes it.
    NoReplica {
        /// The partition nobody can serve.
        partition: usize,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Wire(err) => write!(f, "wire decode failed: {err}"),
            TransportError::Io { context, source } => write!(f, "{context}: {source}"),
            TransportError::Disconnected { peer, context } => {
                write!(f, "{peer} disconnected during {context}")
            }
            TransportError::Timeout { peer, context } => {
                write!(f, "timed out waiting for {peer} during {context}")
            }
            TransportError::Handshake { peer, reason } => {
                write!(f, "handshake with {peer} failed: {reason}")
            }
            TransportError::OversizedFrame { announced, limit } => write!(
                f,
                "frame length {announced} exceeds the {limit}-byte limit (corrupt stream?)"
            ),
            TransportError::Protocol { peer, reason } => {
                write!(f, "protocol violation from {peer}: {reason}")
            }
            TransportError::NoReplica { partition } => write!(
                f,
                "no live replica hosts partition {partition} (every replica is suspect)"
            ),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Wire(err) => Some(err),
            TransportError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<WireError> for TransportError {
    fn from(err: WireError) -> Self {
        TransportError::Wire(err)
    }
}

impl TransportError {
    /// Classifies an I/O failure on `peer` during `context` into the
    /// [`Disconnected`](TransportError::Disconnected) /
    /// [`Timeout`](TransportError::Timeout) / [`Io`](TransportError::Io)
    /// variants based on the OS error kind.
    pub fn from_io(peer: &str, context: &str, source: std::io::Error) -> Self {
        use std::io::ErrorKind;
        match source.kind() {
            ErrorKind::UnexpectedEof
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe => TransportError::Disconnected {
                peer: peer.to_string(),
                context: context.to_string(),
            },
            ErrorKind::WouldBlock | ErrorKind::TimedOut => TransportError::Timeout {
                peer: peer.to_string(),
                context: context.to_string(),
            },
            _ => TransportError::Io {
                context: format!("{context} ({peer})"),
                source,
            },
        }
    }

    /// Whether this failure is the kind replica failover can route around:
    /// the peer is gone or unresponsive
    /// ([`Disconnected`](TransportError::Disconnected) /
    /// [`Timeout`](TransportError::Timeout) / [`Io`](TransportError::Io)),
    /// as opposed to speaking a broken protocol, which retrying elsewhere
    /// would not fix.
    pub fn is_connectivity_loss(&self) -> bool {
        matches!(
            self,
            TransportError::Disconnected { .. }
                | TransportError::Timeout { .. }
                | TransportError::Io { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_classification() {
        let err = TransportError::from_io(
            "worker 1",
            "exchange",
            std::io::Error::from(std::io::ErrorKind::BrokenPipe),
        );
        assert!(matches!(err, TransportError::Disconnected { .. }));
        assert!(err.to_string().contains("worker 1"));

        let err = TransportError::from_io(
            "worker 2",
            "gather",
            std::io::Error::from(std::io::ErrorKind::TimedOut),
        );
        assert!(matches!(err, TransportError::Timeout { .. }));

        let err = TransportError::from_io(
            "worker 0",
            "connect",
            std::io::Error::from(std::io::ErrorKind::AddrInUse),
        );
        assert!(matches!(err, TransportError::Io { .. }));
        assert!(err.to_string().contains("connect"));
    }

    #[test]
    fn display_is_actionable() {
        let err = TransportError::Handshake {
            peer: "worker 3 (127.0.0.1:7103)".to_string(),
            reason: "bad magic".to_string(),
        };
        let text = err.to_string();
        assert!(text.contains("127.0.0.1:7103"));
        assert!(text.contains("bad magic"));

        let err = TransportError::OversizedFrame {
            announced: 1 << 40,
            limit: 1 << 28,
        };
        assert!(err.to_string().contains("exceeds"));

        let wire: TransportError = WireError::UnexpectedEof.into();
        assert!(wire.to_string().contains("wire decode"));
        assert!(std::error::Error::source(&wire).is_some());
    }
}
