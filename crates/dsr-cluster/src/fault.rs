//! Deterministic fault injection for the TCP cluster.
//!
//! A [`FaultPlan`] describes worker failures to inject at precise points of
//! the protocol: *disconnect worker W before collective N, during phase P*.
//! The plan is armed on a [`TcpTransport`](crate::TcpTransport) with
//! [`inject_faults`](crate::TcpTransport::inject_faults); at the start of
//! every matching collective the transport severs the planned worker's
//! connection exactly as if the process had died, so the failure takes the
//! organic path — a read or write on the dead socket — rather than a
//! simulated shortcut. The same plan format drives unit tests (loopback
//! clusters in-process) and the multiprocess chaos suite (`dsr-node
//! master --chaos`).
//!
//! The historical `debug_disconnect_worker(w)` test hook is now sugar for
//! the one-fault plan `worker=w` (fire before the next collective, any
//! phase).

/// Which collective a [`Fault`] is allowed to fire in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FaultPhase {
    /// Fire in whichever collective comes first.
    #[default]
    Any,
    /// Only fire at the start of a scatter round.
    Scatter,
    /// Only fire at the start of a gather round.
    Gather,
    /// Only fire at the start of an all-to-all exchange.
    Exchange,
}

impl FaultPhase {
    /// Whether a fault restricted to `self` fires in `observed`.
    pub fn matches(self, observed: FaultPhase) -> bool {
        self == FaultPhase::Any || self == observed
    }
}

/// One planned failure: sever `worker`'s master link before the first
/// collective whose index is `>= after` and whose phase matches `phase`.
/// Collectives are counted from 0 across the transport's lifetime, each
/// scatter / gather / all-to-all incrementing the count once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Worker id to disconnect.
    pub worker: usize,
    /// Fire before the first collective with index `>= after` (0 = the
    /// next collective).
    pub after: u64,
    /// Restrict firing to one collective phase, or [`FaultPhase::Any`].
    pub phase: FaultPhase,
}

/// An ordered set of [`Fault`]s; see the [module docs](self). Built either
/// programmatically ([`FaultPlan::disconnect`] + [`FaultPlan::after`] /
/// [`FaultPlan::during`]) or parsed from the `--chaos` command-line form
/// ([`FaultPlan::parse`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Appends a fault disconnecting `worker` before the next collective of
    /// any phase. Refine it with [`FaultPlan::after`] / [`FaultPlan::during`].
    pub fn disconnect(mut self, worker: usize) -> Self {
        self.faults.push(Fault {
            worker,
            after: 0,
            phase: FaultPhase::Any,
        });
        self
    }

    /// Sets the collective threshold of the most recently added fault.
    ///
    /// # Panics
    /// Panics when the plan is empty.
    pub fn after(mut self, collective: u64) -> Self {
        self.faults
            .last_mut()
            .expect("after() needs a preceding disconnect()")
            .after = collective;
        self
    }

    /// Restricts the most recently added fault to one phase.
    ///
    /// # Panics
    /// Panics when the plan is empty.
    pub fn during(mut self, phase: FaultPhase) -> Self {
        self.faults
            .last_mut()
            .expect("during() needs a preceding disconnect()")
            .phase = phase;
        self
    }

    /// Parses the `--chaos` form: semicolon-separated faults, each a
    /// comma-separated list of `worker=N` (required), `after=N`, and
    /// `phase=scatter|gather|exchange|any`.
    ///
    /// ```text
    /// worker=1,after=2,phase=exchange;worker=0,after=5
    /// ```
    ///
    /// # Errors
    /// Returns a description naming the offending clause.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let mut worker: Option<usize> = None;
            let mut after = 0u64;
            let mut phase = FaultPhase::Any;
            for part in clause.split(',') {
                let (key, value) = part
                    .split_once('=')
                    .ok_or_else(|| format!("fault clause {part:?}: expected key=value"))?;
                match (key.trim(), value.trim()) {
                    ("worker", v) => {
                        worker = Some(v.parse().map_err(|_| {
                            format!("fault clause {clause:?}: worker must be an integer")
                        })?)
                    }
                    ("after", v) => {
                        after = v.parse().map_err(|_| {
                            format!("fault clause {clause:?}: after must be an integer")
                        })?
                    }
                    ("phase", v) => {
                        phase = match v.to_ascii_lowercase().as_str() {
                            "any" => FaultPhase::Any,
                            "scatter" => FaultPhase::Scatter,
                            "gather" => FaultPhase::Gather,
                            "exchange" => FaultPhase::Exchange,
                            other => {
                                return Err(format!(
                                    "fault clause {clause:?}: unknown phase {other:?} \
                                     (expected any, scatter, gather or exchange)"
                                ))
                            }
                        }
                    }
                    (other, _) => {
                        return Err(format!(
                            "fault clause {clause:?}: unknown key {other:?} \
                             (expected worker, after or phase)"
                        ))
                    }
                }
            }
            let worker =
                worker.ok_or_else(|| format!("fault clause {clause:?}: missing worker=N"))?;
            plan.faults.push(Fault {
                worker,
                after,
                phase,
            });
        }
        Ok(plan)
    }

    /// The planned faults, in arming order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes_faults() {
        let plan = FaultPlan::new()
            .disconnect(1)
            .after(2)
            .during(FaultPhase::Exchange)
            .disconnect(0);
        assert_eq!(
            plan.faults(),
            &[
                Fault {
                    worker: 1,
                    after: 2,
                    phase: FaultPhase::Exchange
                },
                Fault {
                    worker: 0,
                    after: 0,
                    phase: FaultPhase::Any
                },
            ]
        );
    }

    #[test]
    fn parses_the_chaos_form() {
        let plan = FaultPlan::parse("worker=1,after=2,phase=exchange; worker=0").expect("parses");
        assert_eq!(plan.faults().len(), 2);
        assert_eq!(plan.faults()[0].worker, 1);
        assert_eq!(plan.faults()[0].after, 2);
        assert_eq!(plan.faults()[0].phase, FaultPhase::Exchange);
        assert_eq!(
            plan.faults()[1],
            Fault {
                worker: 0,
                after: 0,
                phase: FaultPhase::Any
            }
        );
        assert!(FaultPlan::parse("").expect("empty is fine").is_empty());
    }

    #[test]
    fn rejects_malformed_clauses() {
        for bad in [
            "worker",
            "after=2",
            "worker=x",
            "worker=1,phase=udp",
            "worker=1,bogus=2",
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(!err.is_empty(), "{bad:?} must be rejected");
        }
    }
}
