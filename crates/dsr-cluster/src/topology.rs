//! Partition-addressed routing: which workers host which partitions.
//!
//! The collectives of [`Transport`](crate::Transport) are addressed by
//! **partition index**, not by worker index. A [`Topology`] is the routing
//! table that closes the gap: for every partition it holds an **ordered
//! replica set** of worker ids (the first entry is the primary), plus a
//! per-worker *suspect* flag the master flips when a worker stops
//! answering. Routing a partition means picking its first non-suspect
//! replica, which is exactly the failover rule: when the primary dies the
//! same logical messages are retried against the next replica.
//!
//! Topologies are **generation-numbered**: every suspect/live transition
//! bumps [`Topology::generation`], so callers holding a snapshot can tell
//! whether the routing they planned against is still current.
//!
//! The in-process and pipe backends use the [identity](Topology::identity)
//! topology (partition `p` lives on logical node `p`, replication 1) —
//! their behavior and [`CommStats`](crate::CommStats) accounting are
//! unchanged by the partition-addressing refactor. The TCP backend builds
//! its topology from the [`ClusterSpec`](crate::ClusterSpec): either
//! explicit per-worker partition assignments or the default
//! [round-robin](Topology::round_robin) layout, where partition `p` is
//! hosted by workers `p % W, (p+1) % W, …` up to the replication factor.

/// Partition → ordered replica set routing table with per-worker suspect
/// tracking. See the [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// `replicas[p]` = ordered worker ids hosting partition `p`; the first
    /// entry is the primary.
    replicas: Vec<Vec<usize>>,
    /// `suspect[w]` = worker `w` is currently considered unreachable.
    suspect: Vec<bool>,
    /// Bumped on every suspect/live transition.
    generation: u64,
}

impl Topology {
    /// The trivial topology: partition `p` is hosted by logical node `p`,
    /// replication 1. This is what the in-process and pipe backends
    /// report — worker ids and partition ids coincide.
    pub fn identity(num_partitions: usize) -> Self {
        Topology {
            replicas: (0..num_partitions).map(|p| vec![p]).collect(),
            suspect: vec![false; num_partitions],
            generation: 0,
        }
    }

    /// Round-robin replica placement: partition `p` is hosted by workers
    /// `p % W, (p+1) % W, …` — `replication` distinct workers (clamped to
    /// `W`). With `replication == 1` this is exactly the historical
    /// `partition % num_workers` routing, so a non-replicated cluster
    /// routes (and measures) identically to the pre-topology code.
    ///
    /// # Panics
    /// Panics if `num_workers` or `replication` is zero.
    pub fn round_robin(num_partitions: usize, num_workers: usize, replication: usize) -> Self {
        assert!(num_workers > 0, "a topology needs at least one worker");
        assert!(replication > 0, "replication factor must be at least 1");
        let r = replication.min(num_workers);
        Topology {
            replicas: (0..num_partitions)
                .map(|p| (0..r).map(|i| (p + i) % num_workers).collect())
                .collect(),
            suspect: vec![false; num_workers],
            generation: 0,
        }
    }

    /// Builds a topology from explicit per-worker partition lists:
    /// `worker_partitions[w]` holds the partitions hosted by worker `w`
    /// (the [`ClusterSpec`](crate::ClusterSpec) `assignments` form). Every
    /// partition in `0..num_partitions` must be hosted by at least one
    /// worker; replica order is ascending worker id. Partitions beyond
    /// `num_partitions` are ignored, so one assignment table can serve
    /// collectives of any smaller width.
    ///
    /// # Errors
    /// Returns a human-readable description of the first violation: a
    /// partition nobody hosts, or a worker listing the same partition
    /// twice.
    pub fn from_worker_partitions(
        num_partitions: usize,
        worker_partitions: &[Vec<usize>],
    ) -> Result<Self, String> {
        let mut replicas: Vec<Vec<usize>> = vec![Vec::new(); num_partitions];
        for (worker, partitions) in worker_partitions.iter().enumerate() {
            let mut seen = partitions.to_vec();
            seen.sort_unstable();
            if seen.windows(2).any(|w| w[0] == w[1]) {
                return Err(format!("worker {worker} lists a partition twice"));
            }
            for &p in partitions {
                if p < num_partitions {
                    replicas[p].push(worker);
                }
            }
        }
        if let Some(p) = replicas.iter().position(Vec::is_empty) {
            return Err(format!(
                "partition {p} is hosted by no worker (assignments must cover \
                 every partition in 0..{num_partitions})"
            ));
        }
        Ok(Topology {
            replicas,
            suspect: vec![false; worker_partitions.len()],
            generation: 0,
        })
    }

    /// Number of partitions this topology routes.
    pub fn num_partitions(&self) -> usize {
        self.replicas.len()
    }

    /// Number of workers in the cluster (including suspects).
    pub fn num_workers(&self) -> usize {
        self.suspect.len()
    }

    /// The smallest replica-set size across partitions (the effective
    /// replication factor).
    pub fn replication(&self) -> usize {
        self.replicas.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Monotonic routing-table version; bumped by [`Topology::mark_suspect`]
    /// and [`Topology::mark_live`].
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The ordered replica set of `partition` (first entry = primary).
    pub fn replicas(&self, partition: usize) -> &[usize] {
        &self.replicas[partition]
    }

    /// Routes `partition` to its first non-suspect replica, or `None` when
    /// every replica is suspect.
    pub fn route(&self, partition: usize) -> Option<usize> {
        self.replicas[partition]
            .iter()
            .copied()
            .find(|&w| !self.suspect[w])
    }

    /// Whether worker `w` is currently marked suspect.
    pub fn is_suspect(&self, worker: usize) -> bool {
        self.suspect.get(worker).copied().unwrap_or(false)
    }

    /// Worker ids currently marked suspect, ascending.
    pub fn suspects(&self) -> Vec<usize> {
        (0..self.suspect.len())
            .filter(|&w| self.suspect[w])
            .collect()
    }

    /// Marks `worker` suspect; returns `true` (and bumps the generation)
    /// when this is a transition, `false` when it was already suspect.
    pub fn mark_suspect(&mut self, worker: usize) -> bool {
        if worker >= self.suspect.len() || self.suspect[worker] {
            return false;
        }
        self.suspect[worker] = true;
        self.generation += 1;
        true
    }

    /// Clears `worker`'s suspect flag (a rejoin); returns `true` (and bumps
    /// the generation) when this is a transition.
    pub fn mark_live(&mut self, worker: usize) -> bool {
        if worker >= self.suspect.len() || !self.suspect[worker] {
            return false;
        }
        self.suspect[worker] = false;
        self.generation += 1;
        true
    }

    /// The first partition with no live replica, or `None` when every
    /// partition is routable.
    pub fn unroutable_partition(&self) -> Option<usize> {
        (0..self.replicas.len()).find(|&p| self.route(p).is_none())
    }

    /// Whether every partition still has at least one non-suspect replica.
    pub fn fully_routable(&self) -> bool {
        self.unroutable_partition().is_none()
    }

    /// Copies the suspect flags of `other` for the workers both topologies
    /// share (used when the routing table is rebuilt for a different
    /// collective width: suspicion outlives the rebuild). Carries the
    /// generation forward so it never moves backwards.
    pub fn inherit_suspects(&mut self, other: &Topology) {
        for w in 0..self.suspect.len().min(other.suspect.len()) {
            self.suspect[w] = other.suspect[w];
        }
        self.generation = self.generation.max(other.generation) + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_routes_partition_to_itself() {
        let topo = Topology::identity(4);
        assert_eq!(topo.num_partitions(), 4);
        assert_eq!(topo.num_workers(), 4);
        assert_eq!(topo.replication(), 1);
        for p in 0..4 {
            assert_eq!(topo.route(p), Some(p));
            assert_eq!(topo.replicas(p), &[p]);
        }
        assert!(topo.fully_routable());
    }

    #[test]
    fn round_robin_matches_modulo_routing_at_replication_one() {
        let topo = Topology::round_robin(7, 3, 1);
        for p in 0..7 {
            assert_eq!(topo.route(p), Some(p % 3), "partition {p}");
        }
    }

    #[test]
    fn round_robin_replicas_are_distinct_and_ordered() {
        let topo = Topology::round_robin(3, 3, 2);
        assert_eq!(topo.replicas(0), &[0, 1]);
        assert_eq!(topo.replicas(1), &[1, 2]);
        assert_eq!(topo.replicas(2), &[2, 0]);
        assert_eq!(topo.replication(), 2);
        // Replication clamps to the worker count.
        assert_eq!(Topology::round_robin(2, 2, 5).replication(), 2);
    }

    #[test]
    fn suspect_marks_fail_over_to_the_next_replica() {
        let mut topo = Topology::round_robin(3, 3, 2);
        let g0 = topo.generation();
        assert!(topo.mark_suspect(1));
        assert!(topo.generation() > g0);
        assert!(!topo.mark_suspect(1), "already suspect");
        assert_eq!(topo.route(0), Some(0));
        assert_eq!(topo.route(1), Some(2), "partition 1 fails over");
        assert!(topo.fully_routable());
        assert_eq!(topo.suspects(), vec![1]);
        // Killing the fallback too makes partition 1 unroutable.
        assert!(topo.mark_suspect(2));
        assert_eq!(topo.unroutable_partition(), Some(1));
        assert!(!topo.fully_routable());
        // A rejoin restores routing and bumps the generation again.
        let g = topo.generation();
        assert!(topo.mark_live(1));
        assert_eq!(topo.generation(), g + 1);
        assert_eq!(topo.route(1), Some(1));
        assert!(topo.fully_routable());
    }

    #[test]
    fn replication_one_is_unroutable_after_any_suspect() {
        let mut topo = Topology::round_robin(3, 3, 1);
        assert!(topo.mark_suspect(2));
        assert_eq!(topo.unroutable_partition(), Some(2));
    }

    #[test]
    fn explicit_assignments_invert_to_replica_sets() {
        let topo = Topology::from_worker_partitions(3, &[vec![0, 1], vec![1, 2], vec![2, 0]])
            .expect("valid assignments");
        assert_eq!(topo.replicas(0), &[0, 2]);
        assert_eq!(topo.replicas(1), &[0, 1]);
        assert_eq!(topo.replicas(2), &[1, 2]);
        assert_eq!(topo.num_workers(), 3);
        // Partitions outside the requested width are ignored.
        let narrow = Topology::from_worker_partitions(2, &[vec![0, 2], vec![1]])
            .expect("partition 2 ignored");
        assert_eq!(narrow.num_partitions(), 2);
    }

    #[test]
    fn invalid_assignments_are_rejected_with_a_reason() {
        let err = Topology::from_worker_partitions(3, &[vec![0], vec![1]]).unwrap_err();
        assert!(err.contains("partition 2"), "{err}");
        let err = Topology::from_worker_partitions(2, &[vec![0, 0], vec![1]]).unwrap_err();
        assert!(err.contains("twice"), "{err}");
    }

    #[test]
    fn inherit_suspects_survives_a_rebuild() {
        let mut old = Topology::round_robin(3, 3, 2);
        old.mark_suspect(1);
        let mut rebuilt = Topology::round_robin(5, 3, 2);
        rebuilt.inherit_suspects(&old);
        assert!(rebuilt.is_suspect(1));
        assert!(rebuilt.generation() > old.generation());
        assert_eq!(rebuilt.route(1), Some(2));
    }
}
