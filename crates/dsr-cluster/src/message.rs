//! Message size accounting.
//!
//! The paper reports communication cost in kilobytes (Figure 5(b)(f)(j)(n),
//! Figure 8). The simulated cluster does not serialize messages over a real
//! wire, so every message type implements [`MessageSize`] to report the
//! number of bytes an MPI implementation would have shipped (fixed-width
//! integers, length prefixes for collections).

/// Number of bytes a message would occupy on the wire.
pub trait MessageSize {
    /// Serialized size in bytes.
    fn byte_size(&self) -> usize;
}

impl MessageSize for u32 {
    fn byte_size(&self) -> usize {
        4
    }
}

impl MessageSize for u64 {
    fn byte_size(&self) -> usize {
        8
    }
}

impl MessageSize for bool {
    fn byte_size(&self) -> usize {
        1
    }
}

impl<A: MessageSize, B: MessageSize> MessageSize for (A, B) {
    fn byte_size(&self) -> usize {
        self.0.byte_size() + self.1.byte_size()
    }
}

impl<A: MessageSize, B: MessageSize, C: MessageSize> MessageSize for (A, B, C) {
    fn byte_size(&self) -> usize {
        self.0.byte_size() + self.1.byte_size() + self.2.byte_size()
    }
}

impl<T: MessageSize> MessageSize for Vec<T> {
    fn byte_size(&self) -> usize {
        // 4-byte length prefix plus the payload.
        4 + self.iter().map(MessageSize::byte_size).sum::<usize>()
    }
}

impl<T: MessageSize> MessageSize for Option<T> {
    fn byte_size(&self) -> usize {
        1 + self.as_ref().map_or(0, MessageSize::byte_size)
    }
}

impl<T: MessageSize> MessageSize for &T {
    fn byte_size(&self) -> usize {
        (*self).byte_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(7u32.byte_size(), 4);
        assert_eq!(7u64.byte_size(), 8);
        assert_eq!(true.byte_size(), 1);
    }

    #[test]
    fn composite_sizes() {
        assert_eq!((1u32, 2u32).byte_size(), 8);
        assert_eq!((1u32, 2u64, false).byte_size(), 13);
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(v.byte_size(), 4 + 12);
        let nested: Vec<(u32, Vec<u32>)> = vec![(1, vec![2, 3])];
        assert_eq!(nested.byte_size(), 4 + 4 + 4 + 8);
        assert_eq!(Some(5u32).byte_size(), 5);
        assert_eq!(None::<u32>.byte_size(), 1);
        let by_ref: &u32 = &7;
        assert_eq!(by_ref.byte_size(), 4);
    }
}
