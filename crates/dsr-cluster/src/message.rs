//! Message size accounting.
//!
//! The paper reports communication cost in kilobytes (Figure 5(b)(f)(j)(n),
//! Figure 8). Every message type implements [`MessageSize`] to report the
//! number of bytes its [`Wire`](crate::wire::Wire) encoding occupies —
//! **exactly**, not as an estimate: the transports debug-assert on every
//! shipped message that `byte_size()` equals the encoded length, and the
//! [`Wire`](crate::transport::WireTransport) backend records the measured
//! length of the bytes it actually moved.
//!
//! Keeping the size computation separate from the encoder lets the
//! zero-copy [`InProcess`](crate::transport::InProcess) backend account
//! communication volume without serializing anything.

use crate::wire::varint_size;

/// Number of bytes a message occupies on the wire (the exact length of its
/// [`Wire`](crate::wire::Wire) encoding).
pub trait MessageSize {
    /// Serialized size in bytes.
    fn byte_size(&self) -> usize;
}

impl MessageSize for u32 {
    fn byte_size(&self) -> usize {
        varint_size(u64::from(*self))
    }
}

impl MessageSize for u64 {
    fn byte_size(&self) -> usize {
        varint_size(*self)
    }
}

impl MessageSize for bool {
    fn byte_size(&self) -> usize {
        1
    }
}

impl<A: MessageSize, B: MessageSize> MessageSize for (A, B) {
    fn byte_size(&self) -> usize {
        self.0.byte_size() + self.1.byte_size()
    }
}

impl<A: MessageSize, B: MessageSize, C: MessageSize> MessageSize for (A, B, C) {
    fn byte_size(&self) -> usize {
        self.0.byte_size() + self.1.byte_size() + self.2.byte_size()
    }
}

impl<T: MessageSize> MessageSize for Vec<T> {
    fn byte_size(&self) -> usize {
        // Varint element-count prefix plus the payload.
        varint_size(self.len() as u64) + self.iter().map(MessageSize::byte_size).sum::<usize>()
    }
}

impl<T: MessageSize> MessageSize for Option<T> {
    fn byte_size(&self) -> usize {
        1 + self.as_ref().map_or(0, MessageSize::byte_size)
    }
}

impl<T: MessageSize> MessageSize for &T {
    fn byte_size(&self) -> usize {
        (*self).byte_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{encode_to_vec, Wire};

    /// The invariant the transports debug-assert: `byte_size` is the exact
    /// encoded length.
    fn assert_exact<M: Wire + MessageSize>(message: &M) {
        assert_eq!(encode_to_vec(message).len(), message.byte_size());
    }

    #[test]
    fn primitive_sizes() {
        assert_eq!(7u32.byte_size(), 1);
        assert_eq!(300u32.byte_size(), 2);
        assert_eq!(u32::MAX.byte_size(), 5);
        assert_eq!(7u64.byte_size(), 1);
        assert_eq!(u64::MAX.byte_size(), 10);
        assert_eq!(true.byte_size(), 1);
        assert_exact(&0u32);
        assert_exact(&u32::MAX);
        assert_exact(&u64::MAX);
        assert_exact(&false);
    }

    #[test]
    fn composite_sizes() {
        assert_eq!((1u32, 2u32).byte_size(), 2);
        assert_eq!((1u32, 2u64, false).byte_size(), 3);
        let v: Vec<u32> = vec![1, 2, 300];
        assert_eq!(v.byte_size(), 1 + 1 + 1 + 2);
        let nested: Vec<(u32, Vec<u32>)> = vec![(1, vec![2, 3])];
        assert_eq!(nested.byte_size(), 1 + 1 + 1 + 2);
        assert_eq!(Some(5u32).byte_size(), 2);
        assert_eq!(None::<u32>.byte_size(), 1);
        let by_ref: &u32 = &7;
        assert_eq!(by_ref.byte_size(), 1);
        assert_exact(&v);
        assert_exact(&nested);
        assert_exact(&Some(5u32));
        assert_exact(&None::<u32>);
    }
}
