//! Serving-layer path resolution: every property path of every query is
//! answered by **one** snapshot-isolated [`QueryService`] over a single
//! union index.
//!
//! [`DsrPathResolver`](crate::path::DsrPathResolver) builds one standalone
//! DSR index *per predicate* and queries each directly — fine for an
//! offline Table 6 run, but a live RDF tenant shares its serving
//! infrastructure: queries from many clients should fuse into shared
//! protocol rounds, answers should come out of the service cache, and a
//! long-running evaluation must not observe concurrent update batches.
//!
//! This module provides the serving-side equivalents:
//!
//! * [`UnionPathGraph`] interns `(predicate, term)` pairs into one dense
//!   vertex space, giving each predicate's subgraph a disjoint vertex
//!   range — so a **single** [`DsrIndex`] (and therefore a single
//!   [`QueryService`]) serves all path predicates at once, and
//!   reachability can never leak across predicates.
//! * [`ServicePathResolver`] implements [`PathResolver`] by translating
//!   each `p*` resolution into a set-reachability query routed through
//!   [`SnapshotRef::query_batch`] — fusing with concurrent traffic,
//!   filling the pinned generation's cache namespace, and never observing
//!   an update applied after the snapshot was pinned.
//! * [`RdfWorkload`] packages a store plus a set of named benchmark
//!   queries (`L1`–`L3` / `F1`–`F3`) as a [`Workload`]: one call
//!   evaluates every query against one pinned snapshot and reports a
//!   checksummed, reproducible [`WorkloadRun`].
//!
//! [`QueryService`]: dsr_service::QueryService

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

use dsr_core::{DsrIndex, SetQuery};
use dsr_graph::{DiGraph, VertexId};
use dsr_partition::{HashPartitioner, Partitioner, Partitioning};
use dsr_reach::LocalIndexKind;
use dsr_service::{checksum_pairs, ServiceError, SnapshotRef, Workload, WorkloadRun};

use crate::datasets::{named_query, path_predicates};
use crate::path::{reflexive_pairs, PathResolver};
use crate::query::{evaluate, Binding, Query};
use crate::store::{TermId, TripleStore};

/// The union of all path-predicate subgraphs in one dense vertex space.
///
/// Each `(predicate, term)` pair interns to its own vertex, so distinct
/// predicates occupy disjoint vertex ranges of the same graph: one DSR
/// index over the union answers `p*` for every `p`, and a path can never
/// cross from one predicate's subgraph into another's.
pub struct UnionPathGraph {
    graph: DiGraph,
    vertex_of: HashMap<(TermId, TermId), VertexId>,
    term_of: Vec<(TermId, TermId)>,
}

impl UnionPathGraph {
    /// Builds the union graph over the subgraphs of `predicates`.
    pub fn build(store: &TripleStore, predicates: &[TermId]) -> Self {
        let mut vertex_of: HashMap<(TermId, TermId), VertexId> = HashMap::new();
        let mut term_of: Vec<(TermId, TermId)> = Vec::new();
        let mut intern = |p: TermId, t: TermId, term_of: &mut Vec<(TermId, TermId)>| {
            *vertex_of.entry((p, t)).or_insert_with(|| {
                term_of.push((p, t));
                (term_of.len() - 1) as VertexId
            })
        };
        let mut edges = Vec::new();
        for &p in predicates {
            for &(s, o) in store.pairs_of(p) {
                let vs = intern(p, s, &mut term_of);
                let vo = intern(p, o, &mut term_of);
                edges.push((vs, vo));
            }
        }
        UnionPathGraph {
            graph: DiGraph::from_edges(term_of.len(), &edges),
            vertex_of,
            term_of,
        }
    }

    /// The union graph itself.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Total interned vertices across all predicate subgraphs.
    pub fn num_vertices(&self) -> usize {
        self.term_of.len()
    }

    /// The vertex of `term` within `predicate`'s subgraph, if interned.
    pub fn vertex(&self, predicate: TermId, term: TermId) -> Option<VertexId> {
        self.vertex_of.get(&(predicate, term)).copied()
    }

    /// The `(predicate, term)` pair a union vertex stands for.
    pub fn term(&self, vertex: VertexId) -> (TermId, TermId) {
        self.term_of[vertex as usize]
    }

    /// Builds the one [`DsrIndex`] that serves every predicate, split into
    /// `num_slaves` partitions — install it into a `QueryService` and the
    /// service answers all path predicates.
    pub fn build_index(&self, num_slaves: usize) -> DsrIndex {
        let partitioning = if self.graph.num_vertices() == 0 {
            Partitioning::single(0)
        } else if num_slaves <= 1 {
            Partitioning::single(self.graph.num_vertices())
        } else {
            HashPartitioner::default().partition(&self.graph, num_slaves)
        };
        DsrIndex::build(&self.graph, partitioning, LocalIndexKind::Dfs)
    }
}

/// A [`PathResolver`] that routes every resolution through a pinned
/// [`SnapshotRef`] of a `QueryService` serving a [`UnionPathGraph`] index.
///
/// The resolver is pinned to one generation: concurrent service updates
/// are invisible, repeated resolutions hit the generation's cache
/// namespace, and concurrently-running tenants fuse into shared protocol
/// rounds.
pub struct ServicePathResolver<'a, 's> {
    snapshot: &'a SnapshotRef<'s>,
    map: &'a UnionPathGraph,
    queries: Cell<u64>,
    error: RefCell<Option<ServiceError>>,
}

impl<'a, 's> ServicePathResolver<'a, 's> {
    /// A resolver over `snapshot`, translating terms through `map`.
    pub fn new(snapshot: &'a SnapshotRef<'s>, map: &'a UnionPathGraph) -> Self {
        ServicePathResolver {
            snapshot,
            map,
            queries: Cell::new(0),
            error: RefCell::new(None),
        }
    }

    /// Set-reachability queries issued through the snapshot so far.
    pub fn queries_issued(&self) -> u64 {
        self.queries.get()
    }

    /// Surfaces a transport failure recorded during resolution.
    ///
    /// The [`PathResolver`] trait is infallible, so a failed fused
    /// execution is parked here (and the resolution degrades to
    /// reflexive-only pairs); callers that care — [`RdfWorkload`] does —
    /// check after evaluating.
    ///
    /// # Errors
    /// The first [`ServiceError`] any resolution hit, if one did.
    pub fn take_error(&self) -> Result<(), ServiceError> {
        match self.error.borrow_mut().take() {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }
}

impl PathResolver for ServicePathResolver<'_, '_> {
    fn reachable_pairs(
        &self,
        predicate: TermId,
        sources: &[TermId],
        targets: &[TermId],
    ) -> Vec<(TermId, TermId)> {
        let mut out = reflexive_pairs(sources, targets);
        let src_vertices: Vec<VertexId> = sources
            .iter()
            .filter_map(|&t| self.map.vertex(predicate, t))
            .collect();
        let tgt_vertices: Vec<VertexId> = targets
            .iter()
            .filter_map(|&t| self.map.vertex(predicate, t))
            .collect();
        if !src_vertices.is_empty() && !tgt_vertices.is_empty() && self.error.borrow().is_none() {
            match self
                .snapshot
                .query_batch(&[SetQuery::new(src_vertices, tgt_vertices)])
            {
                Ok(reply) => {
                    self.queries.set(self.queries.get() + 1);
                    for &(a, b) in reply.results[0].iter() {
                        let (_, s) = self.map.term(a);
                        let (_, t) = self.map.term(b);
                        out.push((s, t));
                    }
                }
                Err(err) => {
                    *self.error.borrow_mut() = Some(err);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn name(&self) -> &'static str {
        "DSR-service"
    }
}

/// The RDF property-path benchmark as a pluggable service [`Workload`].
///
/// Wraps a [`TripleStore`] plus a list of named benchmark queries; each
/// [`run`](Workload::run) evaluates every query with a
/// [`ServicePathResolver`] over the given pinned snapshot and reports the
/// solution count plus an order-insensitive checksum of all solution
/// mappings. Install [`RdfWorkload::build_index`] into the service first —
/// the snapshot must serve this workload's [`UnionPathGraph`].
pub struct RdfWorkload {
    store: TripleStore,
    map: UnionPathGraph,
    queries: Vec<Query>,
}

impl RdfWorkload {
    /// A workload over `store` running the given named queries (unknown
    /// names are skipped; see [`crate::datasets::QUERY_NAMES`]).
    pub fn new(store: TripleStore, query_names: &[&str]) -> Self {
        let predicates = path_predicates(&store);
        let map = UnionPathGraph::build(&store, &predicates);
        let queries = query_names.iter().filter_map(|n| named_query(n)).collect();
        RdfWorkload {
            store,
            map,
            queries,
        }
    }

    /// The union-graph index this workload expects the service to serve.
    pub fn build_index(&self, num_slaves: usize) -> DsrIndex {
        self.map.build_index(num_slaves)
    }

    /// The underlying store.
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// The `(predicate, term)` interning shared with the service index.
    pub fn union_graph(&self) -> &UnionPathGraph {
        &self.map
    }
}

/// Order-independent digest of one solution mapping.
fn binding_digest(binding: &Binding) -> u64 {
    let mut entries: Vec<(&str, TermId)> = binding
        .iter()
        .map(|(var, &id)| (var.as_str(), id))
        .collect();
    entries.sort_unstable();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for (var, id) in entries {
        for byte in var.bytes().chain(id.to_le_bytes()) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

impl Workload for RdfWorkload {
    fn name(&self) -> &str {
        "rdf-paths"
    }

    fn run(&self, snapshot: &SnapshotRef<'_>) -> Result<WorkloadRun, ServiceError> {
        let resolver = ServicePathResolver::new(snapshot, &self.map);
        let mut digests: Vec<(u64, u64)> = Vec::new();
        for (qi, query) in self.queries.iter().enumerate() {
            let bindings = evaluate(&self.store, query, &resolver);
            resolver.take_error()?;
            digests.extend(bindings.iter().map(|b| (qi as u64, binding_digest(b))));
        }
        Ok(WorkloadRun {
            queries: resolver.queries_issued(),
            results: digests.len() as u64,
            checksum: checksum_pairs(digests),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{freebase_like_store, lubm_like_store, QUERY_NAMES};
    use crate::path::BfsPathResolver;
    use dsr_core::UpdateOp;
    use dsr_service::{QueryService, UpdateMode};
    use dsr_sync::Arc;

    fn lubm_service(store: &TripleStore) -> (UnionPathGraph, QueryService) {
        let predicates = path_predicates(store);
        let map = UnionPathGraph::build(store, &predicates);
        let index = map.build_index(3);
        (map, QueryService::new(Arc::new(index)))
    }

    #[test]
    fn union_graph_keeps_predicates_disjoint() {
        let mut store = TripleStore::new();
        store.add("a", "p", "b");
        store.add("b", "q", "c");
        let p = store.lookup("p").unwrap();
        let q = store.lookup("q").unwrap();
        let b = store.lookup("b").unwrap();
        let map = UnionPathGraph::build(&store, &[p, q]);
        // `b` occurs under both predicates: two distinct vertices.
        assert_ne!(map.vertex(p, b), map.vertex(q, b));
        assert_eq!(map.num_vertices(), 4);
        // No path from a (under p) to c (under q): disjoint subgraphs.
        let a = store.lookup("a").unwrap();
        let c = store.lookup("c").unwrap();
        let service = QueryService::new(Arc::new(map.build_index(2)));
        let snap = service.snapshot();
        let resolver = ServicePathResolver::new(&snap, &map);
        assert!(!resolver.reachable_pairs(p, &[a], &[c]).contains(&(a, c)));
        assert!(resolver.reachable_pairs(p, &[a], &[b]).contains(&(a, b)));
    }

    #[test]
    fn service_resolver_matches_bfs_on_all_benchmark_queries() {
        for (store, names) in [
            (lubm_like_store(3, 7), &["L1", "L2", "L3"]),
            (freebase_like_store(250, 7), &["F1", "F2", "F3"]),
        ] {
            let predicates = path_predicates(&store);
            let bfs = BfsPathResolver::new(&store, &predicates);
            let (map, service) = lubm_service(&store);
            let snap = service.snapshot();
            let resolver = ServicePathResolver::new(&snap, &map);
            for name in names {
                let q = named_query(name).unwrap();
                let with_service = evaluate(&store, &q, &resolver);
                let with_bfs = evaluate(&store, &q, &bfs);
                assert_eq!(
                    with_service.len(),
                    with_bfs.len(),
                    "{name}: service-backed resolver disagrees with BFS oracle"
                );
            }
            resolver.take_error().expect("in-process transport");
            assert!(
                resolver.queries_issued() > 0,
                "paths went through the service"
            );
        }
    }

    #[test]
    fn workload_is_reproducible_and_pinned_against_updates() {
        let store = lubm_like_store(3, 11);
        let workload = RdfWorkload::new(store, &QUERY_NAMES);
        let service = QueryService::new(Arc::new(workload.build_index(3)));

        let snap = service.snapshot();
        let first = workload.run(&snap).expect("in-process transport");
        assert!(first.results > 0, "benchmark queries have solutions");
        assert!(first.queries > 0, "paths resolved through the snapshot");

        // Sever one subOrganizationOf edge behind the pinned reader's back.
        let g = workload.union_graph().graph();
        let (u, v) = g
            .edge_vec()
            .first()
            .copied()
            .expect("union graph has edges");
        service
            .update(&[UpdateOp::Delete(u, v)], UpdateMode::Auto)
            .expect("auto forks around the pin");

        let again = workload.run(&snap).expect("in-process transport");
        assert_eq!(first, again, "pinned workload is immune to updates");

        drop(snap);
        let fresh = service.snapshot();
        let after = workload.run(&fresh).expect("in-process transport");
        assert!(
            after.results <= first.results,
            "severing an organization edge cannot add solutions"
        );
    }
}
