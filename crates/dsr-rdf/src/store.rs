//! Dictionary-encoded in-memory triple store.

use std::collections::HashMap;

/// Dense identifier of an RDF term (IRI or literal).
pub type TermId = u32;

/// A minimal triple store: terms are dictionary-encoded, triples are kept
/// in predicate-indexed adjacency lists (the access paths needed by the
/// basic-graph-pattern evaluator and the property-path engines).
#[derive(Debug, Default, Clone)]
pub struct TripleStore {
    term_of: Vec<String>,
    id_of: HashMap<String, TermId>,
    /// All triples as (subject, predicate, object).
    triples: Vec<(TermId, TermId, TermId)>,
    /// predicate -> list of (subject, object).
    by_predicate: HashMap<TermId, Vec<(TermId, TermId)>>,
}

impl TripleStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a term, returning its dense id.
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.id_of.get(term) {
            return id;
        }
        let id = self.term_of.len() as TermId;
        self.term_of.push(term.to_owned());
        self.id_of.insert(term.to_owned(), id);
        id
    }

    /// Looks up a term id without creating it.
    pub fn lookup(&self, term: &str) -> Option<TermId> {
        self.id_of.get(term).copied()
    }

    /// The string form of a term id.
    pub fn term(&self, id: TermId) -> &str {
        &self.term_of[id as usize]
    }

    /// Adds a triple given as strings.
    pub fn add(&mut self, subject: &str, predicate: &str, object: &str) {
        let s = self.intern(subject);
        let p = self.intern(predicate);
        let o = self.intern(object);
        self.add_ids(s, p, o);
    }

    /// Adds a triple given as term ids.
    pub fn add_ids(&mut self, s: TermId, p: TermId, o: TermId) {
        self.triples.push((s, p, o));
        self.by_predicate.entry(p).or_default().push((s, o));
    }

    /// Number of triples.
    pub fn num_triples(&self) -> usize {
        self.triples.len()
    }

    /// Number of distinct terms.
    pub fn num_terms(&self) -> usize {
        self.term_of.len()
    }

    /// All (subject, object) pairs of a predicate.
    pub fn pairs_of(&self, predicate: TermId) -> &[(TermId, TermId)] {
        self.by_predicate
            .get(&predicate)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Subjects `s` such that `(s, predicate, object)` is present.
    pub fn subjects_with(&self, predicate: TermId, object: TermId) -> Vec<TermId> {
        self.pairs_of(predicate)
            .iter()
            .filter(|&&(_, o)| o == object)
            .map(|&(s, _)| s)
            .collect()
    }

    /// Objects `o` such that `(subject, predicate, o)` is present.
    pub fn objects_of(&self, subject: TermId, predicate: TermId) -> Vec<TermId> {
        self.pairs_of(predicate)
            .iter()
            .filter(|&&(s, _)| s == subject)
            .map(|&(_, o)| o)
            .collect()
    }

    /// Whether the exact triple is present.
    pub fn contains(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.pairs_of(p).iter().any(|&(ts, to)| ts == s && to == o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TripleStore {
        let mut store = TripleStore::new();
        store.add("alice", "knows", "bob");
        store.add("bob", "knows", "carol");
        store.add("alice", "type", "Person");
        store.add("bob", "type", "Person");
        store
    }

    #[test]
    fn interning_is_stable() {
        let mut store = TripleStore::new();
        let a = store.intern("x");
        let b = store.intern("x");
        assert_eq!(a, b);
        assert_eq!(store.term(a), "x");
        assert_eq!(store.lookup("x"), Some(a));
        assert_eq!(store.lookup("y"), None);
    }

    #[test]
    fn predicate_index() {
        let store = sample();
        let knows = store.lookup("knows").unwrap();
        assert_eq!(store.pairs_of(knows).len(), 2);
        let ty = store.lookup("type").unwrap();
        let person = store.lookup("Person").unwrap();
        let people = store.subjects_with(ty, person);
        assert_eq!(people.len(), 2);
        let alice = store.lookup("alice").unwrap();
        assert_eq!(store.objects_of(alice, knows).len(), 1);
    }

    #[test]
    fn contains_and_counts() {
        let store = sample();
        let alice = store.lookup("alice").unwrap();
        let knows = store.lookup("knows").unwrap();
        let bob = store.lookup("bob").unwrap();
        assert!(store.contains(alice, knows, bob));
        assert!(!store.contains(bob, knows, alice));
        assert_eq!(store.num_triples(), 4);
        assert!(store.num_terms() >= 6);
    }

    #[test]
    fn unknown_predicate_is_empty() {
        let store = sample();
        assert!(store.pairs_of(9999).is_empty());
    }
}
