//! SPARQL 1.1 property paths over a minimal RDF store, evaluated with DSR.
//!
//! Section 4.5.A of the paper augments a distributed RDF engine with the
//! DSR index to process SPARQL 1.1 *property paths* (`p*` predicates):
//! since both endpoints of a path expression can be bound to many RDF
//! constants at query time, evaluating the path resolves to a
//! set-reachability query. The paper compares this against the Virtuoso
//! RDF store on LUBM and Freebase data (Table 6).
//!
//! This crate provides:
//!
//! * [`store::TripleStore`] — a dictionary-encoded, in-memory triple store
//!   with predicate-indexed access,
//! * [`query`] — a small basic-graph-pattern query model where predicates
//!   are either plain IRIs or transitive property paths (`p*`), and an
//!   evaluator that resolves plain patterns through index scans and path
//!   patterns through a pluggable [`path::PathResolver`],
//! * [`path`] — two path resolvers: [`path::DsrPathResolver`] (a DSR index
//!   over each predicate's subgraph, the paper's approach) and
//!   [`path::BfsPathResolver`] (per-source online BFS, standing in for the
//!   centralized Virtuoso comparison point),
//! * [`datasets`] — LUBM-like and Freebase-like synthetic stores and the
//!   six benchmark queries L1–L3 / F1–F3 of Appendix 8.3,
//! * [`service`] — the serving-side integration: a
//!   [`service::UnionPathGraph`] interning every predicate subgraph into
//!   one index, a [`service::ServicePathResolver`] routing `p*` through a
//!   pinned snapshot of a live `QueryService`, and the
//!   [`service::RdfWorkload`] plugging the whole benchmark into the
//!   service's `Workload` trait.

#![forbid(unsafe_code)]

pub mod datasets;
pub mod path;
pub mod query;
pub mod service;
pub mod store;

pub use datasets::{
    freebase_like_store, lubm_like_store, named_query, path_predicates, QUERY_NAMES,
};
pub use path::{BfsPathResolver, DsrPathResolver, PathResolver};
pub use query::{evaluate, Pattern, PredicateExpr, Query, Term};
pub use service::{RdfWorkload, ServicePathResolver, UnionPathGraph};
pub use store::TripleStore;
